"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` and friends
propagate unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class RegistryError(ConfigurationError):
    """A strategy name failed to resolve through :mod:`repro.core.registry`.

    Raised (with the valid choices listed) for unknown names, bad
    pattern parameters and malformed registrations.  Subclasses
    :class:`ConfigurationError` so existing callers that catch the
    broader class keep working.
    """


class JobError(ReproError):
    """A submitted job could not run to completion."""


class JobTimeoutError(JobError):
    """A job exceeded its per-job wall-clock budget and was abandoned."""


class JobCancelledError(JobError):
    """A job was cancelled before it produced a result."""


class ServiceError(ReproError):
    """The simulation service was used in an invalid state."""


class TopologyError(ReproError):
    """A topology or coordinate operation was invalid (bad dims, out of range)."""


class AllocationError(ReproError):
    """A process allocation could not be constructed (not enough nodes, ...)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class TerminationError(SimulationError):
    """Distributed termination detection failed (early or missed detection)."""


class StackError(ReproError):
    """Illegal operation on a work-stealing stack (e.g. stealing the private chunk)."""


class TraceError(ReproError):
    """A phase trace is malformed (unsorted, inconsistent transitions)."""
