"""Feedback-driven (adaptive) victim selection.

The static registry (``reference``/``rand``/``tofu``/...) fixes its
victim distribution before the run starts; this package adds selectors
that *learn during the run* from the ``notify(victim, success)``
feedback stream the workers already emit on every steal outcome
(ROADMAP item 2; the latency analysis of Gast/Khatiri/Trystram is the
motivation — failed-steal chains under latency are the signal worth
adapting on).

Importing this package registers the family beside the static
selectors; ``repro/__init__.py`` does so unconditionally, so the names
resolve everywhere a config string does — including ``repro.exec``
worker processes.
"""

from repro.select.adaptive import (
    AdaptiveStealPolicy,
    EpsilonGreedySelector,
    FailureBackoffSelector,
    SuccessRateSelector,
)

__all__ = [
    "AdaptiveStealPolicy",
    "EpsilonGreedySelector",
    "FailureBackoffSelector",
    "SuccessRateSelector",
]
