"""Adaptive victim selectors and the adaptive steal-amount policy.

Three selector families that learn from steal outcomes during the run
(SNIPPETS.md Snippet 1, dsdx ``AdaptiveWorker``, and Snippet 3's
Picasso victim bitsets are the idioms):

:class:`EpsilonGreedySelector` (``adapt-eps[<eps>]``)
    Bandit over Tofu *distance bands*: the other ranks are bucketed by
    Euclidean distance quartiles; with probability ``eps`` the thief
    explores uniformly, otherwise it exploits the band with the best
    observed steal-success rate (Laplace prior, nearest band wins
    ties) and picks a uniform member of it.

:class:`SuccessRateSelector` (``adapt-sr[<decay>]``)
    Per-victim success score with exponential decay
    (``s <- decay*s + (1-decay)*outcome``); victims are sampled with
    probability proportional to ``score + floor``, so repeatedly
    unproductive victims fade without ever reaching zero support.

:class:`FailureBackoffSelector` (``adapt-backoff[<fails>]``)
    Uniform over the others, but a victim that fails ``fails`` times in
    a row is demoted for a cooldown window of draws (the Picasso
    bitset idiom: mark starved victims, fall back to everyone when the
    whole set is marked).

:class:`AdaptiveStealPolicy` (``adaptive[<fails>]``)
    Steal-amount escalation: steal-one until a thief has failed
    ``fails`` consecutive times, then ask for half.  The policy object
    itself is **stateless** — one instance is shared by every worker
    in a process, so the failure streak lives on the thief
    (``Worker.consecutive_failed_steals``) and travels to the victim
    as ``StealRequest.escalated``.  That split is what keeps the
    sequential and sharded engines bit-identical.

Determinism contract (enforced by the differential and property test
suites): selector state is a pure function of ``(seed, rank)`` and the
sequence of ``next_victim``/``notify`` calls — no wall clock, no
global RNG — so both DES engines, which replay identical per-rank call
sequences, produce identical victim streams.  ``notify`` must accept
*any* rank (lifeline pushes report victims the selector never drew).

Every adaptive state exposes :meth:`sampling_weights` — the exact
distribution the next draw would use — for the hypothesis property
suite (finite, non-negative, self-weight zero, sums to one).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.registry import registry_for
from repro.core.steal_policy import StealPolicy
from repro.core.victim import SelectorFactory, VictimSelector, _rank_rng
from repro.errors import ConfigurationError

__all__ = [
    "AdaptiveVictimSelector",
    "EpsilonGreedySelector",
    "SuccessRateSelector",
    "FailureBackoffSelector",
    "AdaptiveStealPolicy",
]


class AdaptiveVictimSelector(VictimSelector):
    """Base for per-rank adaptive state: adds the weights introspection."""

    def sampling_weights(self) -> np.ndarray:
        """Distribution of the *next* draw over all ranks.

        Must be finite, non-negative, zero at the caller's own rank and
        sum to one; must not mutate the selector state.
        """
        raise NotImplementedError


# ----------------------------------------------------------------------
# Epsilon-greedy over distance bands
# ----------------------------------------------------------------------


class _EpsilonGreedyState(AdaptiveVictimSelector):
    def __init__(
        self,
        rank: int,
        nranks: int,
        distances: np.ndarray,
        eps: float,
        rng: np.random.Generator,
    ):
        self._rank = rank
        self._nranks = nranks
        self._eps = eps
        self._rng = rng
        self._others = np.array([r for r in range(nranks) if r != rank])
        d = np.asarray(distances, dtype=np.float64)[self._others]
        # Quartile edges over the caller's distance row; np.unique
        # collapses degenerate quartiles (small jobs, co-located ranks)
        # so bands are never empty.
        edges = np.unique(np.quantile(d, (0.25, 0.5, 0.75)))
        raw = np.searchsorted(edges, d, side="left")
        used = np.unique(raw)
        compact = np.searchsorted(used, raw)  # contiguous band ids
        self._nbands = int(used.size)
        self._members = [
            self._others[compact == b] for b in range(self._nbands)
        ]
        # band id per rank (self = -1), for O(1) notify.
        self._band_of = np.full(nranks, -1, dtype=np.int64)
        self._band_of[self._others] = compact
        # Laplace prior: one success in two attempts per band, so every
        # band starts at rate 0.5 and a single failure cannot zero it.
        self._succ = np.full(self._nbands, 1.0)
        self._att = np.full(self._nbands, 2.0)

    def _best_band(self) -> int:
        # argmax breaks ties toward the lowest index == nearest band
        # (bands are built in ascending distance order).
        return int(np.argmax(self._succ / self._att))

    def next_victim(self) -> int:
        explore = self._rng.random() < self._eps
        pool = self._others if explore else self._members[self._best_band()]
        return int(pool[self._rng.integers(0, pool.size)])

    def notify(self, victim: int, success: bool) -> None:
        if not 0 <= victim < self._nranks or victim == self._rank:
            return
        b = self._band_of[victim]
        self._succ[b] += 1.0 if success else 0.0
        self._att[b] += 1.0

    def sampling_weights(self) -> np.ndarray:
        w = np.zeros(self._nranks)
        w[self._others] = self._eps / self._others.size
        best = self._members[self._best_band()]
        w[best] += (1.0 - self._eps) / best.size
        return w


class EpsilonGreedySelector(SelectorFactory):
    """Epsilon-greedy bandit over Tofu distance bands."""

    needs_placement = True

    def __init__(self, eps: float = 0.1):
        if not 0.0 <= eps <= 1.0:
            raise ConfigurationError(f"eps must be in [0, 1], got {eps}")
        self.eps = float(eps)
        self.name = f"adapt-eps[{eps:g}]"

    def make(self, rank, nranks, placement=None, seed=0):
        self._check(rank, nranks, placement)
        assert placement is not None
        return _EpsilonGreedyState(
            rank,
            nranks,
            placement.euclidean.row(rank),
            self.eps,
            _rank_rng(seed, rank),
        )


# ----------------------------------------------------------------------
# Success-rate-weighted sampling with exponential decay
# ----------------------------------------------------------------------

#: Sampling floor added to every score: keeps support full so a victim
#: written off early can still be rediscovered once it has work.
_SR_FLOOR = 0.05


class _SuccessRateState(AdaptiveVictimSelector):
    def __init__(
        self, rank: int, nranks: int, decay: float, rng: np.random.Generator
    ):
        self._rank = rank
        self._nranks = nranks
        self._decay = decay
        self._rng = rng
        self._scores = np.full(nranks, 0.5)
        self._scores[rank] = 0.0
        self._cum: np.ndarray | None = None  # rebuilt when dirty

    def _weights(self) -> np.ndarray:
        w = self._scores + _SR_FLOOR
        w[self._rank] = 0.0
        return w

    def next_victim(self) -> int:
        if self._cum is None:
            cum = np.cumsum(self._weights())
            cum /= cum[-1]
            # Pin the top edge (draws live in [0, 1)); same fp guard as
            # the static _SkewedState.
            cum[-1] = 1.0
            self._cum = cum
        # searchsorted(side="right") can never land on the caller's own
        # zero-width bin: cum[rank] == cum[rank - 1].
        return int(
            np.searchsorted(self._cum, self._rng.random(), side="right")
        )

    def notify(self, victim: int, success: bool) -> None:
        if not 0 <= victim < self._nranks or victim == self._rank:
            return
        outcome = 1.0 if success else 0.0
        self._scores[victim] = (
            self._decay * self._scores[victim] + (1.0 - self._decay) * outcome
        )
        self._cum = None

    def sampling_weights(self) -> np.ndarray:
        w = self._weights()
        return w / w.sum()


class SuccessRateSelector(SelectorFactory):
    """Sample victims proportionally to decayed steal-success scores."""

    def __init__(self, decay: float = 0.9):
        if not 0.0 < decay < 1.0:
            raise ConfigurationError(f"decay must be in (0, 1), got {decay}")
        self.decay = float(decay)
        self.name = f"adapt-sr[{decay:g}]"

    def make(self, rank, nranks, placement=None, seed=0):
        self._check(rank, nranks, placement)
        return _SuccessRateState(rank, nranks, self.decay, _rank_rng(seed, rank))


# ----------------------------------------------------------------------
# Per-victim failure backoff
# ----------------------------------------------------------------------


class _FailureBackoffState(AdaptiveVictimSelector):
    def __init__(
        self, rank: int, nranks: int, fails: int, rng: np.random.Generator
    ):
        self._rank = rank
        self._nranks = nranks
        self._fails = fails
        # Long enough for a starved victim to regain work, short enough
        # that demotion is temporary on any job size.
        self._cooldown = max(4, nranks)
        self._rng = rng
        self._others = np.array([r for r in range(nranks) if r != rank])
        self._streak = np.zeros(nranks, dtype=np.int64)
        self._demoted_until = np.zeros(nranks, dtype=np.int64)
        self._draws = 0

    def _eligible(self, at_draw: int) -> np.ndarray:
        pool = self._others[self._demoted_until[self._others] <= at_draw]
        # Everyone demoted -> everyone eligible again (Picasso: when
        # the bitset fills up, clear it and fall back to uniform).
        return pool if pool.size else self._others

    def next_victim(self) -> int:
        self._draws += 1
        pool = self._eligible(self._draws)
        return int(pool[self._rng.integers(0, pool.size)])

    def notify(self, victim: int, success: bool) -> None:
        if not 0 <= victim < self._nranks or victim == self._rank:
            return
        if success:
            self._streak[victim] = 0
            self._demoted_until[victim] = 0  # fresh work: re-promote
            return
        self._streak[victim] += 1
        if self._streak[victim] >= self._fails:
            self._demoted_until[victim] = self._draws + self._cooldown
            self._streak[victim] = 0

    def sampling_weights(self) -> np.ndarray:
        pool = self._eligible(self._draws + 1)
        w = np.zeros(self._nranks)
        w[pool] = 1.0 / pool.size
        return w


class FailureBackoffSelector(SelectorFactory):
    """Uniform selection with temporary demotion of failing victims."""

    def __init__(self, fails: int = 2):
        if fails < 1:
            raise ConfigurationError(f"fails must be >= 1, got {fails}")
        self.fails = int(fails)
        self.name = f"adapt-backoff[{self.fails:g}]"

    def make(self, rank, nranks, placement=None, seed=0):
        self._check(rank, nranks, placement)
        return _FailureBackoffState(
            rank, nranks, self.fails, _rank_rng(seed, rank)
        )


# ----------------------------------------------------------------------
# Adaptive steal amount
# ----------------------------------------------------------------------


class AdaptiveStealPolicy(StealPolicy):
    """Steal one; escalate to half after ``escalate_after`` failures.

    Stateless by contract (see module docs): the worker tracks its own
    failure streak and marks requests escalated; this object only maps
    the flag to an amount, so sharing it across ranks and processes is
    safe.
    """

    def __init__(self, escalate_after: int = 3):
        if escalate_after < 1:
            raise ConfigurationError(
                f"escalate_after must be >= 1, got {escalate_after}"
            )
        self.escalate_after = int(escalate_after)
        self.name = f"adaptive[{self.escalate_after:g}]"

    def chunks_to_steal(self, stealable: int) -> int:
        self._check(stealable)
        return min(1, stealable)

    def chunks_for_request(self, stealable: int, escalated: bool = False) -> int:
        self._check(stealable)
        if escalated:
            return math.ceil(stealable / 2)
        return min(1, stealable)


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------


def _bracket_float(name: str, prefix: str) -> float | None:
    if not (name.startswith(prefix + "[") and name.endswith("]")):
        return None
    try:
        return float(name[len(prefix) + 1 : -1])
    except ValueError:
        raise ConfigurationError(
            f"bad {prefix} parameter in {name!r}"
        ) from None


def _parse_eps(name: str) -> SelectorFactory | None:
    eps = _bracket_float(name, "adapt-eps")
    return None if eps is None else EpsilonGreedySelector(eps)


def _parse_sr(name: str) -> SelectorFactory | None:
    decay = _bracket_float(name, "adapt-sr")
    return None if decay is None else SuccessRateSelector(decay)


def _parse_backoff(name: str) -> SelectorFactory | None:
    fails = _bracket_float(name, "adapt-backoff")
    if fails is None:
        return None
    if fails != int(fails):
        raise ConfigurationError(f"fails must be an integer in {name!r}")
    return FailureBackoffSelector(int(fails))


def _parse_adaptive(name: str) -> StealPolicy | None:
    k = _bracket_float(name, "adaptive")
    if k is None:
        return None
    if k != int(k):
        raise ConfigurationError(f"escalate_after must be an integer in {name!r}")
    return AdaptiveStealPolicy(int(k))


_SELECTORS = registry_for("selector")
_SELECTORS.register("adapt-eps", EpsilonGreedySelector)
_SELECTORS.register("adapt-sr", SuccessRateSelector)
_SELECTORS.register("adapt-backoff", FailureBackoffSelector)
_SELECTORS.register_pattern("adapt-eps[<eps>]", _parse_eps)
_SELECTORS.register_pattern("adapt-sr[<decay>]", _parse_sr)
_SELECTORS.register_pattern("adapt-backoff[<fails>]", _parse_backoff)

_POLICIES = registry_for("steal_policy")
_POLICIES.register("adaptive", AdaptiveStealPolicy)
_POLICIES.register_pattern("adaptive[<fails>]", _parse_adaptive)
