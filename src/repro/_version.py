"""Single source of the package version.

Kept in a leaf module (no repro imports) so subsystems that key on the
version — notably the :mod:`repro.exec` result cache, which invalidates
on version bumps — can read it without importing the full package.
"""

__version__ = "1.1.0"
