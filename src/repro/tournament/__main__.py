"""CLI for the strategy tournament harness.

Examples::

    python -m repro.tournament --list
    python -m repro.tournament --preset smoke --jobs 2
    python -m repro.tournament --preset adaptive --store /tmp/t-store
    python -m repro.tournament --preset smoke --require-cached

``--require-cached`` exits non-zero if any config had to be simulated
(CI uses it to prove the second run is fully store-served, which also
pins the leaderboard's cold/warm byte-identity).
"""

from __future__ import annotations

import argparse
import sys

from repro.tournament.harness import (
    DEFAULT_OUT_DIR,
    PRESETS,
    run_tournament,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tournament",
        description="Run a victim-selection tournament and write its leaderboard.",
    )
    parser.add_argument(
        "--preset",
        default="smoke",
        choices=sorted(PRESETS),
        help="named tournament grid (default: smoke)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list presets and exit"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (results are independent of this)",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="result store directory (default: benchmarks/_cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="run without a result store",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT_DIR,
        help=f"artifact directory (default: {DEFAULT_OUT_DIR})",
    )
    parser.add_argument(
        "--require-cached",
        action="store_true",
        help="fail if any config had to be simulated",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="route the batch through the simulation service",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(PRESETS):
            spec = PRESETS[name]
            grid = (
                len(spec.selectors)
                * len(spec.steal_policies)
                * len(spec.allocations)
            )
            print(
                f"{name}: {spec.tree} x{spec.nranks}, {grid} configs "
                f"({', '.join(spec.selectors)})"
            )
        return 0

    store = None if args.no_cache else (args.store or True)
    tournament = run_tournament(
        PRESETS[args.preset],
        jobs=args.jobs,
        store=store,
        use_service=args.service,
    )
    paths = tournament.write(args.out)
    print(tournament.leaderboard_markdown())
    print(
        f"executed {tournament.executed}, cached {tournament.cached}; "
        f"wrote {', '.join(paths)}"
    )
    if args.require_cached and tournament.executed > 0:
        print(
            f"--require-cached: {tournament.executed} configs were simulated",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
