"""Scenario tournament: rank strategies against each other.

A :class:`TournamentSpec` names a deterministic grid of configurations
— selector x steal-policy x allocation on one tree/rank count, under
the benchmark calibration — and :func:`run_tournament` executes it
through :func:`repro.exec.run_many` (cached, parallel,
service-compatible) and scores every cell on the paper's metrics:
makespan, speedup/efficiency, steal-success rate, mean search time and
the mid-occupancy scheduling latencies (SL/EL at 0.5).

Determinism contract: the leaderboard artifact is **byte-identical**
across repeated runs and worker counts.  Everything that feeds a row
survives the result-cache round-trip exactly — counters and the
activity trace are serialized losslessly by ``RunResult.to_dict``, so
a leaderboard rebuilt from cached results equals the cold one.  That
is why tournament configs set ``trace=True`` but never
``event_trace=True``: event streams are diagnostic-only and deliberately
dropped by the cache, so nothing here may score from them.  Run
bookkeeping that legitimately differs between cold and warm runs
(executed/cached counts) lives on the :class:`Tournament` object, not
in the artifact.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass

from repro.bench.experiments import experiment_config
from repro.core.config import WorkStealingConfig
from repro.exec.cache import ResultCache
from repro.exec.fingerprint import canonical_json
from repro.exec.pool import WorkerPool, run_many
from repro.protocol.variants import protocol_overrides, protocol_tag
from repro.ws.results import RunResult

__all__ = [
    "TournamentSpec",
    "Tournament",
    "run_tournament",
    "PRESETS",
    "DEFAULT_OUT_DIR",
]

#: Where ``write()`` and the CLI drop leaderboard artifacts.
DEFAULT_OUT_DIR = os.path.join("benchmarks", "_artifacts")

#: Occupancy level for the SL/EL columns.  The compressed calibration
#: tops out well below full occupancy (DESIGN.md: critical-path-bound
#: at scale), so the curves are read at 0.5 — reached by every
#: non-degenerate run — rather than the paper's 0.9.
_SL_OCCUPANCY = 0.5


@dataclass(frozen=True)
class TournamentSpec:
    """A deterministic strategy grid on one tree / rank count."""

    name: str
    tree: str
    nranks: int
    selectors: tuple[str, ...]
    steal_policies: tuple[str, ...] = ("one",)
    allocations: tuple[str, ...] = ("1/N",)
    #: Protocol-variant specs (:mod:`repro.protocol.variants` grammar:
    #: ``"steal"``, ``"forward[3]"``, ``"regions[8]+lifelines[2]"``...),
    #: the innermost grid axis.
    protocols: tuple[str, ...] = ("steal",)
    seed: int = 0
    #: Apply the benchmark :class:`~repro.bench.experiments.Calibration`
    #: (hierarchical latency, NIC cost); plain defaults otherwise.
    calibrated: bool = True

    def configs(self) -> list[WorkStealingConfig]:
        """The grid, in fixed selector-major order."""
        out = []
        for selector in self.selectors:
            for policy in self.steal_policies:
                for allocation in self.allocations:
                    for protocol in self.protocols:
                        extra = protocol_overrides(protocol)
                        if self.calibrated:
                            cfg = experiment_config(
                                self.tree,
                                self.nranks,
                                allocation=allocation,
                                selector=selector,
                                steal_policy=policy,
                                seed=self.seed,
                                trace=True,
                                **extra,
                            )
                        else:
                            cfg = WorkStealingConfig(
                                tree=self.tree,
                                nranks=self.nranks,
                                allocation=allocation,
                                selector=selector,
                                steal_policy=policy,
                                seed=self.seed,
                                trace=True,
                                **extra,
                            )
                        out.append(cfg)
        return out


def _score(cfg: WorkStealingConfig, result: RunResult) -> dict:
    """One leaderboard row; every field survives the cache bit-exactly."""
    attempts = result.successful_steals + result.failed_steals
    curve = result.occupancy_curve()
    sl = curve.starting_latency(_SL_OCCUPANCY)
    el = curve.ending_latency(_SL_OCCUPANCY)
    return {
        "label": result.label,
        "selector": result.selector,
        "steal_policy": result.steal_policy,
        "allocation": result.allocation,
        "protocol": protocol_tag(cfg),
        "tree": result.tree_name,
        "nranks": result.nranks,
        "makespan": result.total_time,
        "speedup": result.speedup,
        "efficiency": result.efficiency,
        "steal_success_rate": (
            result.successful_steals / attempts if attempts else None
        ),
        "steal_requests": result.steal_requests,
        "failed_steals": result.failed_steals,
        "mean_search_time": result.mean_search_time,
        "sl50": sl,
        "el50": el,
    }


_MD_COLUMNS = (
    ("rank", "rank"),
    ("selector", "selector"),
    ("steal_policy", "policy"),
    ("allocation", "alloc"),
    ("protocol", "protocol"),
    ("makespan", "makespan [s]"),
    ("efficiency", "efficiency"),
    ("steal_success_rate", "steal success"),
    ("failed_steals", "failed"),
    ("sl50", "SL(0.5)"),
    ("el50", "EL(0.5)"),
)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


@dataclass
class Tournament:
    """A finished tournament: spec, ranked rows, run bookkeeping."""

    spec: TournamentSpec
    #: Rows sorted by (makespan, label): the leaderboard order.
    rows: list[dict]
    #: Configs actually simulated this run (not served from the store).
    executed: int
    #: Configs served from the store without simulating.
    cached: int

    @property
    def winner(self) -> dict:
        return self.rows[0]

    def row_for(self, selector: str, steal_policy: str | None = None) -> dict:
        """First (best) row matching a selector (and optionally policy)."""
        for row in self.rows:
            if row["selector"] != selector:
                continue
            if steal_policy is not None and row["steal_policy"] != steal_policy:
                continue
            return row
        raise KeyError(f"no row for selector {selector!r}")

    # -- artifacts ------------------------------------------------------

    def leaderboard_json(self) -> str:
        """Canonical JSON artifact (sorted keys, compact, newline-final).

        Contains only run-independent content — see the module docs for
        why executed/cached stay out of it.
        """
        return (
            canonical_json({"spec": asdict(self.spec), "rows": self.rows})
            + "\n"
        )

    def leaderboard_markdown(self) -> str:
        lines = [
            f"# Tournament: {self.spec.name}",
            "",
            f"Tree {self.spec.tree}, {self.spec.nranks} ranks, "
            f"seed {self.spec.seed}; rows ranked by makespan.",
            "",
            "| " + " | ".join(title for _, title in _MD_COLUMNS) + " |",
            "|" + "|".join("---" for _ in _MD_COLUMNS) + "|",
        ]
        for i, row in enumerate(self.rows, start=1):
            cells = [
                _cell(i if key == "rank" else row[key])
                for key, _ in _MD_COLUMNS
            ]
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
        return "\n".join(lines)

    def write(self, out_dir: str | os.PathLike = DEFAULT_OUT_DIR) -> list[str]:
        """Write ``tournament_<name>.{json,md}``; returns the paths."""
        os.makedirs(out_dir, exist_ok=True)
        base = os.path.join(str(out_dir), f"tournament_{self.spec.name}")
        paths = []
        for suffix, payload in (
            (".json", self.leaderboard_json()),
            (".md", self.leaderboard_markdown()),
        ):
            path = base + suffix
            with open(path, "w") as fh:
                fh.write(payload)
            paths.append(path)
        return paths


def run_tournament(
    spec: TournamentSpec,
    *,
    jobs: int | None = 1,
    store: ResultCache | str | os.PathLike | bool | None = None,
    pool: WorkerPool | None = None,
    use_service: bool = False,
    progress=None,
) -> Tournament:
    """Execute a tournament grid and rank the results.

    ``jobs``/``store``/``pool`` are forwarded to
    :func:`repro.exec.run_many`; ``use_service=True`` routes the batch
    through a :class:`~repro.service.SimulationService` sweep instead
    (same store, plus the service's dedup/scheduling layers).  The
    returned leaderboard is independent of all of them.
    """
    configs = spec.configs()
    if store is True:
        store = ResultCache()
    elif isinstance(store, (str, os.PathLike)):
        store = ResultCache(store)
    elif store is False:
        store = None

    cached = 0
    if store is not None:
        cached = sum(
            1 for cfg in configs if store.get(cfg.fingerprint()) is not None
        )

    if use_service:
        from repro.service.service import run_service_sweep

        results = run_service_sweep(configs, workers=jobs, store=store)
        for slot in results:
            if not isinstance(slot, RunResult):
                raise getattr(slot, "error", RuntimeError(repr(slot)))
    else:
        results = run_many(
            configs, jobs=jobs, store=store, pool=pool, progress=progress
        )

    rows = [_score(cfg, res) for cfg, res in zip(configs, results)]
    rows.sort(key=lambda r: (r["makespan"], r["label"]))
    return Tournament(
        spec=spec,
        rows=rows,
        executed=len(configs) - cached,
        cached=cached,
    )


#: Named grids for the CLI, CI and the test suites.
PRESETS: dict[str, TournamentSpec] = {
    # Seconds-scale: CI smoke and the harness unit tests.
    "smoke": TournamentSpec(
        name="smoke",
        tree="T3XS",
        nranks=16,
        selectors=("rand", "tofu", "adapt-sr[0.9]"),
    ),
    # The golden preset (ISSUE 8): T3S, 64 ranks, 3 selectors.
    "small": TournamentSpec(
        name="small",
        tree="T3S",
        nranks=64,
        selectors=("rand", "tofu", "adapt-eps[0.1]"),
    ),
    # The acceptance grid: every adaptive family vs the static
    # baselines on the paper-calibrated large tree.
    "adaptive": TournamentSpec(
        name="adaptive",
        tree="T3L",
        nranks=64,
        selectors=(
            "rand",
            "tofu",
            "adapt-eps[0.1]",
            "adapt-sr[0.9]",
            "adapt-backoff[2]",
        ),
        steal_policies=("one", "adaptive[3]"),
    ),
    # The protocol axis (ISSUE 10): localized + cooperative stealing
    # vs the baseline on the paper-calibrated large tree.
    "protocol": TournamentSpec(
        name="protocol",
        tree="T3L",
        nranks=64,
        selectors=("rand", "tofu"),
        protocols=(
            "steal",
            "forward[3]",
            "regions[8]",
            "forward[3]+regions[8]",
            "lifelines[2:ring]",
            "forward[2]+regions[8]+lifelines[2:regtree]",
        ),
    ),
    # The full registry sweep (slow; bench/CLI territory).
    "full": TournamentSpec(
        name="full",
        tree="T3M",
        nranks=64,
        selectors=(
            "reference",
            "rand",
            "tofu",
            "hierarchical",
            "lastvictim",
            "skew[2]",
            "latskew[1]",
            "adapt-eps[0.1]",
            "adapt-sr[0.9]",
            "adapt-backoff[2]",
        ),
        steal_policies=("one", "half", "adaptive[3]"),
        allocations=("1/N", "8RR"),
    ),
}
