"""Strategy tournaments over the experiment engine.

``python -m repro.tournament --preset adaptive`` sweeps a named
selector x steal-policy x allocation grid through :mod:`repro.exec`
and writes a deterministic leaderboard (JSON + markdown) under
``benchmarks/_artifacts/``.  See :mod:`repro.tournament.harness`.
"""

from repro.tournament.harness import (
    PRESETS,
    Tournament,
    TournamentSpec,
    run_tournament,
)

__all__ = ["PRESETS", "Tournament", "TournamentSpec", "run_tournament"]
