"""Lifeline-based global load balancing (extension).

An implementation of the scheme of Saraswat et al., *Lifeline-based
global load balancing* (PPoPP 2011), which the paper's related-work
section contrasts with its own victim selection: "After the number of
steal attempts exceeds a threshold, idle worker wait for their
lifelines to provide work, thus limiting the lock and network
contention in the system."

Provided as a comparator for the ablation benchmarks:
:class:`~repro.lifeline.worker.LifelineWorker` extends the reference
worker with the quiesce-and-wait protocol over a cyclic-hypercube
lifeline graph.
"""

from repro.lifeline.worker import LifelineWorker, lifeline_partners

__all__ = ["LifelineWorker", "lifeline_partners"]
