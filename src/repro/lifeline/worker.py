"""Worker with lifeline-based work distribution (Saraswat et al.).

Protocol on top of the reference steal loop:

1. An idle rank steals randomly (through whatever victim selector is
   configured) like the reference implementation.
2. After ``threshold`` consecutive *failed* steals, instead of spinning
   further it **quiesces**: it arms its *lifelines* — a fixed set of
   partner ranks drawn from a configurable lifeline graph
   (:mod:`repro.protocol.graphs`; the cyclic hypercube by default) —
   with a :class:`~repro.sim.messages.LifelineRegister` message, and
   stops sending steal requests.
3. A partner that has stealable work at a poll boundary *pushes* a
   chunk allotment to each armed lifeline, waking it.
4. A woken rank disarms its remaining lifelines
   (:class:`~repro.sim.messages.LifelineDeregister`) and resumes
   normal operation.

Quiescent ranks are idle for the termination ring, so the token
algorithm is unchanged; lifeline pushes are work messages and blacken
the sender like steal responses do.

The state machine itself lives in
:class:`repro.protocol.StealProtocol` — every branch above is the
``lifelines`` axis of the protocol layer.  :class:`LifelineWorker` is
a configuration shell kept for its constructor surface and the
``isinstance`` checks in the engine tests: it builds a lifeline-enabled
:class:`~repro.protocol.ProtocolPlan` and exposes the lifeline state
the tests read as views onto the protocol.
"""

from __future__ import annotations

from repro.protocol.core import ProtocolPlan
from repro.protocol.graphs import hypercube_partners
from repro.sim.worker import Worker

__all__ = ["lifeline_partners", "LifelineWorker"]


def lifeline_partners(rank: int, nranks: int, count: int) -> list[int]:
    """Cyclic-hypercube lifeline graph (the original hard-coded scheme).

    Kept as the historical name;
    :func:`repro.protocol.graphs.hypercube_partners` is the registered
    builder behind it.
    """
    return hypercube_partners(rank, nranks, count)


class LifelineWorker(Worker):
    """Reference worker + quiesce-and-wait lifelines."""

    __slots__ = ()

    def __init__(
        self,
        *args,
        lifeline_count: int = 2,
        lifeline_threshold: int = 8,
        lifeline_graph: str = "hypercube",
        plan: ProtocolPlan | None = None,
        **kwargs,
    ):
        if plan is None:
            plan = ProtocolPlan(
                lifeline_count=lifeline_count,
                lifeline_threshold=lifeline_threshold,
                lifeline_graph=lifeline_graph,
            )
        super().__init__(*args, plan=plan, **kwargs)

    # ------------------------------------------------------------------
    # Lifeline-state views (read-only; the protocol owns the state)
    # ------------------------------------------------------------------

    @property
    def lifeline_threshold(self) -> int:
        return self.protocol.lifeline_threshold

    @property
    def partners(self) -> list[int]:
        return self.protocol.partners

    @property
    def waiters(self) -> list[int]:
        return self.protocol.waiters

    @property
    def lifeline_pushes(self) -> int:
        return self.protocol.lifeline_pushes

    @property
    def lifeline_wakeups(self) -> int:
        return self.protocol.lifeline_wakeups

    @property
    def quiesce_episodes(self) -> int:
        return self.protocol.quiesce_episodes

    @property
    def _quiescent(self) -> bool:
        return self.protocol._quiescent

    @property
    def _armed(self) -> bool:
        return self.protocol._armed
