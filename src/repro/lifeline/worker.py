"""Worker with lifeline-based work distribution (Saraswat et al.).

Protocol on top of the reference steal loop:

1. An idle rank steals randomly (through whatever victim selector is
   configured) like the reference implementation.
2. After ``threshold`` consecutive *failed* steals, instead of spinning
   further it **quiesces**: it arms its *lifelines* — a fixed set of
   partner ranks forming a cyclic hypercube over the job — with a
   :class:`~repro.sim.messages.LifelineRegister` message, and stops
   sending steal requests.
3. A partner that has stealable work at a poll boundary *pushes* a
   chunk allotment to each armed lifeline, waking it.
4. A woken rank disarms its remaining lifelines
   (:class:`~repro.sim.messages.LifelineDeregister`) and resumes
   normal operation.

Quiescent ranks are idle for the termination ring, so the token
algorithm is unchanged; lifeline pushes are work messages and blacken
the sender like steal responses do.
"""

from __future__ import annotations

from repro.sim.messages import (
    TAG_LIFELINE_DEREGISTER,
    TAG_LIFELINE_REGISTER,
    TAG_STEAL_RESPONSE,
    LifelineDeregister,
    LifelineRegister,
    StealResponse,
)
from repro.sim.worker import Worker, WorkerStatus
from repro.trace.events import (
    EV_LIFELINE_PUSH,
    EV_LIFELINE_QUIESCE,
    EV_LIFELINE_WAKE,
    EV_PUSH_RECV,
)

__all__ = ["lifeline_partners", "LifelineWorker"]


def lifeline_partners(rank: int, nranks: int, count: int) -> list[int]:
    """Cyclic-hypercube lifeline graph: partners at power-of-two offsets.

    Rank ``r`` links to ``(r + 2^i) mod N`` for ``i = 0, 1, ...`` —
    the outgoing edges of a cyclic hypercube, at most ``count`` of
    them.  Every rank is reachable from every other in ``O(log N)``
    lifeline hops, the property the original paper relies on for
    work to percolate to starving corners.
    """
    partners: list[int] = []
    offset = 1
    while len(partners) < count and offset < nranks:
        partner = (rank + offset) % nranks
        if partner != rank and partner not in partners:
            partners.append(partner)
        offset <<= 1
    return partners


class LifelineWorker(Worker):
    """Reference worker + quiesce-and-wait lifelines."""

    __slots__ = (
        "lifeline_threshold",
        "partners",
        "_quiescent",
        "_armed",
        "waiters",
        "lifeline_pushes",
        "lifeline_wakeups",
        "quiesce_episodes",
    )

    def __init__(
        self,
        *args,
        lifeline_count: int = 2,
        lifeline_threshold: int = 8,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.lifeline_threshold = lifeline_threshold
        self.partners = lifeline_partners(self.rank, self.nranks, lifeline_count)
        self._quiescent = False
        self._armed = False
        #: Ranks whose lifeline to us is currently armed.
        self.waiters: list[int] = []
        # Extension statistics.
        self.lifeline_pushes = 0
        self.lifeline_wakeups = 0
        self.quiesce_episodes = 0

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def on_message(self, now: float, msg: object) -> None:
        if self.status is WorkerStatus.DONE:
            return
        tag = getattr(msg, "tag", None)
        if tag == TAG_LIFELINE_REGISTER:
            if msg.thief not in self.waiters:
                self.waiters.append(msg.thief)
            return
        if tag == TAG_LIFELINE_DEREGISTER:
            if msg.thief in self.waiters:
                self.waiters.remove(msg.thief)
            return
        if (
            tag == TAG_STEAL_RESPONSE
            and msg.has_work
            and self.status is WorkerStatus.RUNNING
        ):
            # A lifeline push raced our own recovery: merge the work.
            self.stack.receive_chunks(msg.chunks)
            self.chunks_received += len(msg.chunks)
            self.nodes_received += msg.nodes
            if self.events is not None:
                self.events.append(now, EV_PUSH_RECV, msg.victim, msg.nodes)
            return
        super().on_message(now, msg)

    # ------------------------------------------------------------------
    # Quiescence
    # ------------------------------------------------------------------

    def _on_response(self, now: float, msg: StealResponse) -> None:
        if msg.has_work:
            if self._armed:
                self._disarm(now)
                self.lifeline_wakeups += 1
                if self.events is not None:
                    self.events.append(now, EV_LIFELINE_WAKE, msg.victim)
            super()._on_response(now, msg)
            return
        # Shares the base worker's failure accounting (counter, trace
        # event, selector notify); only the spin-vs-quiesce decision is
        # lifeline-specific.
        self._steal_failed(now, msg.victim)
        if self.consecutive_failed_steals >= self.lifeline_threshold:
            if not self._quiescent:
                self._quiesce(now)
            # Quiescent: no further requests; wait for a push or Finish.
        else:
            self._send_steal_request(now)

    def _quiesce(self, now: float) -> None:
        self._quiescent = True
        self._armed = True
        self.quiesce_episodes += 1
        if self.events is not None:
            self.events.append(now, EV_LIFELINE_QUIESCE)
        for partner in self.partners:
            self.transport.send(
                self.rank, partner, LifelineRegister(self.rank), now
            )

    def _disarm(self, now: float) -> None:
        self._armed = False
        self._quiescent = False
        self.consecutive_failed_steals = 0
        for partner in self.partners:
            self.transport.send(
                self.rank, partner, LifelineDeregister(self.rank), now
            )

    # ------------------------------------------------------------------
    # Pushing work to armed lifelines
    # ------------------------------------------------------------------

    def _serve_pending(self, now: float) -> float:
        t = super()._serve_pending(now)
        while self.waiters and self.stack.stealable_chunks > 0:
            thief = self.waiters.pop(0)
            # A quiesced waiter is starving by definition: grant it the
            # escalated amount (a no-op for static policies).
            take = self.policy.chunks_for_request(
                self.stack.stealable_chunks, escalated=True
            )
            if take == 0:
                break
            t += self.steal_service_time
            self.service_time += self.steal_service_time
            chunks = self.stack.steal_chunks(take)
            nodes = sum(c.size for c in chunks)
            self.chunks_sent += len(chunks)
            self.nodes_sent += nodes
            self.lifeline_pushes += 1
            if self.events is not None:
                self.events.append(t, EV_LIFELINE_PUSH, thief, nodes)
            self.transport.work_sent(self.rank)
            self.transport.send(
                self.rank, thief, StealResponse(self.rank, chunks), t
            )
        return t