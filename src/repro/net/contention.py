"""Optional per-node NIC serialisation.

When several MPI processes share a compute node they also share its
network interfaces.  The paper observes that "allocating several MPI
processes by compute node results in a worse performance than using a
single process per node" — part of that penalty is injection
serialisation: two ranks on one node cannot inject messages at the
same instant.

:class:`NicContention` is a minimal FIFO-service model: each compute
node has a single injection port that takes ``service_time`` seconds
per message.  A message handed to the NIC at time ``t`` leaves at
``max(t, port_free) + service_time``; the port is then busy until that
moment.  Disabled (``service_time = 0``) it is an exact no-op, which
tests verify.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["NicContention"]


class NicContention:
    """FIFO injection-port model, one port per compute node.

    Parameters
    ----------
    rank_nodes:
        ``rank_nodes[r]`` = compute node of rank ``r``.
    service_time:
        Seconds the port is occupied per injected message; 0 disables
        the model.
    """

    def __init__(self, rank_nodes: np.ndarray, service_time: float = 0.0):
        if service_time < 0:
            raise ConfigurationError(
                f"service_time must be >= 0, got {service_time}"
            )
        self._rank_nodes = np.asarray(rank_nodes, dtype=np.int64)
        self.service_time = float(service_time)
        n_nodes = int(self._rank_nodes.max()) + 1 if len(self._rank_nodes) else 0
        self._port_free = np.zeros(n_nodes, dtype=np.float64)

    @property
    def enabled(self) -> bool:
        return self.service_time > 0.0

    def inject(self, rank: int, now: float) -> float:
        """Account for rank ``rank`` injecting a message at time ``now``.

        Returns the time the message actually enters the network (the
        send timestamp to which wire latency is added).
        """
        if not self.enabled:
            return now
        node = self._rank_nodes[rank]
        start = max(now, self._port_free[node])
        depart = start + self.service_time
        self._port_free[node] = depart
        return depart

    def deliver(self, rank: int, now: float) -> float:
        """Account for rank ``rank`` receiving a message at time ``now``.

        Reception occupies the same node port as injection (the DMA
        engines are shared both ways); returns the time the message is
        actually handed to the rank.
        """
        return self.inject(rank, now)

    def reset(self) -> None:
        """Clear all port state (between simulation runs)."""
        self._port_free[:] = 0.0
