"""Latency models: topological distance -> communication time.

A :class:`LatencyModel` produces the one-way latency matrix between
*ranks* given their node placement.  The paper's mechanism lives here:
on the K Computer "communication between two MPI processes on the same
CPU, or on the same blade will potentially be faster than across racks
(more network hops are necessary)", and "a communication between two
processes can go through more than 10 hops".

Latency anchors (defaults of :class:`KComputerLatency`) are calibrated
to published Tofu numbers: ~1 us one-way MPI latency between adjacent
nodes, ~100 ns additional per hop, sub-microsecond shared-memory
transport within a node, and the intermediate blade/cube transports in
between.  The *shape* of the experiments depends on the ratio between
near and far latencies, not on the absolute values.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.registry import registry_for
from repro.errors import ConfigurationError
from repro.net.topology import TofuTopology, Topology

__all__ = [
    "LatencyModel",
    "UniformLatency",
    "HopLatency",
    "HierarchicalLatency",
    "KComputerLatency",
    "latency_model_from_spec",
]


class LatencyModel(ABC):
    """Interface: build a rank-pair latency matrix for a placement."""

    name: str = "abstract"

    @abstractmethod
    def matrix(self, topology: Topology, rank_nodes: np.ndarray) -> np.ndarray:
        """One-way latency in seconds for every rank pair.

        Parameters
        ----------
        topology:
            The node topology.
        rank_nodes:
            ``rank_nodes[r]`` is the compute node hosting rank ``r``.

        Returns
        -------
        ``(nranks, nranks)`` float array, symmetric, zero diagonal.
        """

    @staticmethod
    def _validate(latency: np.ndarray) -> np.ndarray:
        if np.any(latency < 0):
            raise ConfigurationError("negative latency produced")
        np.fill_diagonal(latency, 0.0)
        return latency

    @staticmethod
    def _validate_row(row: np.ndarray, i: int) -> np.ndarray:
        if np.any(row < 0):
            raise ConfigurationError("negative latency produced")
        row[i] = 0.0
        return row

    def row_builder(self, topology: Topology, rank_nodes: np.ndarray):
        """Return ``f(i) -> latency row for rank i`` (O(N) per call).

        The builder precomputes whatever per-job state the rows share;
        the built-in models override this with genuinely row-lazy
        implementations so paper-scale placements never hold an N x N
        array.  This default falls back to :meth:`matrix` (dense!) and
        only exists so custom third-party models keep working.
        """
        full = self.matrix(topology, rank_nodes)

        def row(i: int) -> np.ndarray:
            return full[i]

        return row

    def min_remote_latency(self) -> float:
        """Lower bound on the latency between ranks on *different* nodes.

        This is the conservative lookahead window of the sharded engine
        (:mod:`repro.sim.shard`): with node-aligned shards, any
        cross-shard message pays at least this much wire time, so a
        shard may advance that far past the global clock before a
        synchronisation point.  Must be a true lower bound (an
        overestimate would break bit-identity with the sequential
        engine); returning ``0.0`` — the conservative default for
        custom models — disables the sharded engine for that model.
        """
        return 0.0

    def min_any_latency(self) -> float:
        """Lower bound on the latency between any two *distinct* ranks.

        The fallback lookahead when a shard partition cannot be
        node-aligned (e.g. randomised allocations): still a valid
        conservative window, just narrower than
        :meth:`min_remote_latency`.
        """
        return 0.0

    def to_spec(self) -> dict:
        """Serializable description: ``{"kind": ..., <float params>}``.

        Round-trips through :func:`latency_model_from_spec`; the float
        parameters are exactly the constructor keywords, so any model
        whose constructor accepts its own ``vars()`` floats serializes
        for free.
        """
        spec: dict = {"kind": self.name}
        spec.update(
            (k, float(v))
            for k, v in vars(self).items()
            if isinstance(v, (int, float)) and not k.startswith("_")
        )
        return spec


class UniformLatency(LatencyModel):
    """Every distinct rank pair has the same latency (null model).

    Under this model all victims cost the same, so victim selection
    can only matter through failed-steal counts — the configuration
    most prior work implicitly assumed.
    """

    name = "uniform"

    def __init__(self, latency: float = 5e-6):
        if latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {latency}")
        self.latency = float(latency)

    def matrix(self, topology: Topology, rank_nodes: np.ndarray) -> np.ndarray:
        n = len(rank_nodes)
        out = np.full((n, n), self.latency, dtype=np.float64)
        return self._validate(out)

    def row_builder(self, topology: Topology, rank_nodes: np.ndarray):
        n = len(rank_nodes)
        latency = self.latency

        def row(i: int) -> np.ndarray:
            out = np.full(n, latency, dtype=np.float64)
            return self._validate_row(out, i)

        return row

    def min_remote_latency(self) -> float:
        return self.latency

    def min_any_latency(self) -> float:
        return self.latency


class HopLatency(LatencyModel):
    """``base + per_hop * hops`` with a shared-memory intra-node fast path."""

    name = "hop"

    def __init__(
        self,
        base: float = 1e-6,
        per_hop: float = 1e-7,
        intra_node: float = 4e-7,
    ):
        if min(base, per_hop, intra_node) < 0:
            raise ConfigurationError("latency components must be >= 0")
        self.base = float(base)
        self.per_hop = float(per_hop)
        self.intra_node = float(intra_node)

    def matrix(self, topology: Topology, rank_nodes: np.ndarray) -> np.ndarray:
        rank_nodes = np.asarray(rank_nodes, dtype=np.int64)
        hops = topology.hops_matrix(rank_nodes).astype(np.float64)
        out = self.base + self.per_hop * hops
        same_node = rank_nodes[:, None] == rank_nodes[None, :]
        out[same_node] = self.intra_node
        return self._validate(out)

    def row_builder(self, topology: Topology, rank_nodes: np.ndarray):
        rank_nodes = np.asarray(rank_nodes, dtype=np.int64)
        hops_row = topology.hops_rows(rank_nodes)
        base, per_hop, intra = self.base, self.per_hop, self.intra_node

        def row(i: int) -> np.ndarray:
            out = base + per_hop * hops_row(i).astype(np.float64)
            out[rank_nodes == rank_nodes[i]] = intra
            return self._validate_row(out, i)

        return row

    def min_remote_latency(self) -> float:
        # Distinct nodes are >= 0 hops apart, so base is the floor.
        return self.base

    def min_any_latency(self) -> float:
        return min(self.intra_node, self.base)


class HierarchicalLatency(LatencyModel):
    """Distinct transports per hierarchy level of a Tofu topology.

    Levels (first match wins): same compute node -> ``intra_node``;
    same blade -> ``blade``; same cube -> ``cube``; otherwise
    ``base + per_hop * hops`` across the cube torus.
    """

    name = "hierarchical"

    def __init__(
        self,
        intra_node: float = 4e-7,
        blade: float = 8e-7,
        cube: float = 1.2e-6,
        base: float = 1.5e-6,
        per_hop: float = 2e-7,
    ):
        if min(intra_node, blade, cube, base, per_hop) < 0:
            raise ConfigurationError("latency components must be >= 0")
        if not intra_node <= blade <= cube:
            raise ConfigurationError(
                "expected intra_node <= blade <= cube latency ordering"
            )
        self.intra_node = float(intra_node)
        self.blade = float(blade)
        self.cube = float(cube)
        self.base = float(base)
        self.per_hop = float(per_hop)

    def matrix(self, topology: Topology, rank_nodes: np.ndarray) -> np.ndarray:
        if not isinstance(topology, TofuTopology):
            raise ConfigurationError(
                "HierarchicalLatency requires a TofuTopology "
                f"(got {type(topology).__name__}); use HopLatency instead"
            )
        rank_nodes = np.asarray(rank_nodes, dtype=np.int64)
        coords = topology.space.coords_of_many(rank_nodes)
        cube_xyz = coords[:, :3]
        blade_id = coords[:, [0, 1, 2, 4]]  # (x, y, z, b)

        # Torus hop distance across the cube grid only (the long-haul
        # component); in-cube hops are folded into the level constants.
        dims = np.array(topology.cube_grid, dtype=np.int64)
        raw = np.abs(cube_xyz[:, None, :] - cube_xyz[None, :, :])
        hops = np.minimum(raw, dims[None, None, :] - raw).sum(axis=2)

        out = self.base + self.per_hop * hops.astype(np.float64)
        same_cube = (cube_xyz[:, None, :] == cube_xyz[None, :, :]).all(axis=2)
        same_blade = (blade_id[:, None, :] == blade_id[None, :, :]).all(axis=2)
        same_node = rank_nodes[:, None] == rank_nodes[None, :]
        out[same_cube] = self.cube
        out[same_blade] = self.blade
        out[same_node] = self.intra_node
        return self._validate(out)

    def row_builder(self, topology: Topology, rank_nodes: np.ndarray):
        if not isinstance(topology, TofuTopology):
            raise ConfigurationError(
                "HierarchicalLatency requires a TofuTopology "
                f"(got {type(topology).__name__}); use HopLatency instead"
            )
        rank_nodes = np.asarray(rank_nodes, dtype=np.int64)
        coords = topology.space.coords_of_many(rank_nodes)
        cube_xyz = coords[:, :3]
        blade_id = coords[:, [0, 1, 2, 4]]
        dims = np.array(topology.cube_grid, dtype=np.int64)

        def row(i: int) -> np.ndarray:
            raw = np.abs(cube_xyz - cube_xyz[i])
            hops = np.minimum(raw, dims[None, :] - raw).sum(axis=1)
            out = self.base + self.per_hop * hops.astype(np.float64)
            out[(cube_xyz == cube_xyz[i]).all(axis=1)] = self.cube
            out[(blade_id == blade_id[i]).all(axis=1)] = self.blade
            out[rank_nodes == rank_nodes[i]] = self.intra_node
            return self._validate_row(out, i)

        return row

    def min_remote_latency(self) -> float:
        # Off-node pairs pay blade, cube, or base + per_hop * hops with
        # hops >= 0 — blade <= cube by construction, base stands alone.
        return min(self.blade, self.base)

    def min_any_latency(self) -> float:
        return min(self.intra_node, self.base)


class KComputerLatency(HierarchicalLatency):
    """Default calibration standing in for the K Computer (see module docs)."""

    name = "kcomputer"

    def __init__(self) -> None:
        super().__init__(
            intra_node=4e-7,
            blade=8e-7,
            cube=1.2e-6,
            base=1.5e-6,
            per_hop=2e-7,
        )

    def to_spec(self) -> dict:
        # The calibration is fixed by the constructor; no params needed.
        return {"kind": self.name}


_LATENCIES = registry_for("latency_model")
_LATENCIES.register(UniformLatency.name, UniformLatency)
_LATENCIES.register(HopLatency.name, HopLatency)
_LATENCIES.register(HierarchicalLatency.name, HierarchicalLatency)
_LATENCIES.register(KComputerLatency.name, KComputerLatency)


def latency_model_from_spec(spec: dict | str) -> LatencyModel:
    """Rebuild a latency model from :meth:`LatencyModel.to_spec` output.

    Also accepts a bare kind string (``"kcomputer"``) meaning the
    model's default parameters.
    """
    if isinstance(spec, str):
        return _LATENCIES.resolve(spec)  # type: ignore[return-value]
    if not isinstance(spec, dict) or "kind" not in spec:
        raise ConfigurationError(
            f"latency spec must be a {{'kind': ...}} dict or a name, got {spec!r}"
        )
    params = {k: v for k, v in spec.items() if k != "kind"}
    return _LATENCIES.resolve(spec["kind"], **params)  # type: ignore[return-value]
