"""Process allocation: mapping MPI ranks onto compute nodes.

The paper compares three allocations (§II-B):

* ``1/N`` — one MPI process per compute node
  (:class:`OnePerNode`);
* ``8RR`` — 8 processes per node with *round-robin* numbering, so
  consecutive ranks land on different nodes
  (:class:`RoundRobinPacked` with ``per_node=8``);
* ``8G`` — 8 processes per node with *grouped* numbering, so ranks
  ``8k..8k+7`` share a node (:class:`GroupedPacked` with
  ``per_node=8``).

The interaction between numbering and the reference round-robin victim
selector is the paper's first finding: under 8RR, "the deterministic
round robin victim selection is in direct conflict with the MPI
process allocation".

:func:`build_placement` combines an allocation with a topology and a
latency model into a :class:`Placement`: the per-rank coordinates,
pairwise distances and pairwise latencies every other subsystem needs.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.registry import registry_for
from repro.errors import AllocationError, ConfigurationError
from repro.net.latency import KComputerLatency, LatencyModel
from repro.net.pairwise import PairwiseMetric
from repro.net.topology import TofuTopology, Topology

__all__ = [
    "ProcessAllocation",
    "OnePerNode",
    "RoundRobinPacked",
    "GroupedPacked",
    "RandomAllocation",
    "DilatedAllocation",
    "Placement",
    "build_placement",
    "allocation_by_name",
    "aligned_block_bounds",
]


def aligned_block_bounds(
    nranks: int, nblocks: int, rank_nodes
) -> tuple[list[int], bool]:
    """Contiguous rank-block boundaries, snapped to node boundaries.

    Returns ``(bounds, aligned)`` with ``bounds[s]..bounds[s+1]`` the
    rank range of block ``s``.  Each ideal cut ``s * nranks / nblocks``
    is moved down to the nearest index where the hosting node changes,
    so no compute node spans two blocks and cross-block traffic is
    guaranteed cross-node.  If a cut cannot be node-aligned (e.g. a
    randomised allocation interleaves nodes arbitrarily), the ideal
    cuts are kept and ``aligned`` is False.

    Both the sharded engine (:func:`repro.sim.shard.shard_bounds`) and
    the locality regions of the steal-protocol layer
    (:class:`repro.protocol.regions.RegionMap`) partition the rank
    space through this one function, which is what keeps protocol
    regions aligned with the allocation's node blocks.
    """
    nblocks = max(1, min(nblocks, nranks))
    ideal = [(s * nranks) // nblocks for s in range(nblocks + 1)]
    if nblocks == 1:
        return ideal, True
    snapped = [0]
    for cut in ideal[1:-1]:
        j = cut
        while j > snapped[-1] and rank_nodes[j] == rank_nodes[j - 1]:
            j -= 1
        if j > snapped[-1]:
            snapped.append(j)
    snapped.append(nranks)
    if len(snapped) == nblocks + 1:
        # A run boundary is not enough: interleaved allocations (e.g.
        # round-robin [0,1,0,1,...]) change node at every rank while
        # every node still spans every block.  Alignment requires each
        # node's ranks to land entirely inside one block.
        shard_of: dict = {}
        s = 0
        aligned = True
        for r in range(nranks):
            while r >= snapped[s + 1]:
                s += 1
            node = rank_nodes[r]
            prev = shard_of.setdefault(node, s)
            if prev != s:
                aligned = False
                break
        if aligned:
            return snapped, True
    return ideal, False


class ProcessAllocation(ABC):
    """Interface: decide how many nodes a job needs and place ranks."""

    name: str = "abstract"

    @abstractmethod
    def nodes_needed(self, nranks: int) -> int:
        """Number of compute nodes required for ``nranks`` processes."""

    @abstractmethod
    def rank_nodes(self, nranks: int) -> np.ndarray:
        """``rank_nodes[r]`` = index (0-based, within the job's node
        set) of the node hosting rank ``r``."""

    def _check(self, nranks: int) -> None:
        if nranks < 1:
            raise AllocationError(f"need at least 1 rank, got {nranks}")


class OnePerNode(ProcessAllocation):
    """The paper's ``1/N``: one process per compute node."""

    name = "1/N"

    def nodes_needed(self, nranks: int) -> int:
        self._check(nranks)
        return nranks

    def rank_nodes(self, nranks: int) -> np.ndarray:
        self._check(nranks)
        return np.arange(nranks, dtype=np.int64)


class RoundRobinPacked(ProcessAllocation):
    """``kRR``: k processes per node, round-robin rank numbering.

    Ranks ``i, i + M, i + 2M, ...`` (``M`` = number of nodes) share a
    node, so *consecutive* ranks are on *different* nodes.
    """

    def __init__(self, per_node: int = 8):
        if per_node < 1:
            raise AllocationError(f"per_node must be >= 1, got {per_node}")
        self.per_node = int(per_node)
        self.name = f"{per_node}RR"

    def nodes_needed(self, nranks: int) -> int:
        self._check(nranks)
        return math.ceil(nranks / self.per_node)

    def rank_nodes(self, nranks: int) -> np.ndarray:
        self._check(nranks)
        nodes = self.nodes_needed(nranks)
        return np.arange(nranks, dtype=np.int64) % nodes


class GroupedPacked(ProcessAllocation):
    """``kG``: k processes per node, grouped rank numbering.

    Ranks ``k*j .. k*j + k - 1`` share node ``j``, so consecutive
    ranks are (mostly) on the *same* node.
    """

    def __init__(self, per_node: int = 8):
        if per_node < 1:
            raise AllocationError(f"per_node must be >= 1, got {per_node}")
        self.per_node = int(per_node)
        self.name = f"{per_node}G"

    def nodes_needed(self, nranks: int) -> int:
        self._check(nranks)
        return math.ceil(nranks / self.per_node)

    def rank_nodes(self, nranks: int) -> np.ndarray:
        self._check(nranks)
        return np.arange(nranks, dtype=np.int64) // self.per_node


class RandomAllocation(ProcessAllocation):
    """k processes per node, randomly permuted rank numbering.

    A worst-case-agnostic control: no systematic relation between rank
    distance and physical distance.
    """

    def __init__(self, per_node: int = 1, seed: int = 0):
        if per_node < 1:
            raise AllocationError(f"per_node must be >= 1, got {per_node}")
        self.per_node = int(per_node)
        self.seed = int(seed)
        self.name = f"{per_node}RAND"

    def nodes_needed(self, nranks: int) -> int:
        self._check(nranks)
        return math.ceil(nranks / self.per_node)

    def rank_nodes(self, nranks: int) -> np.ndarray:
        self._check(nranks)
        grouped = np.arange(nranks, dtype=np.int64) // self.per_node
        rng = np.random.default_rng(self.seed)
        return grouped[rng.permutation(nranks)]


class DilatedAllocation(ProcessAllocation):
    """Spread a base allocation over a ``dilation``-times larger machine.

    The reproduction simulates far fewer ranks than the paper's 8192
    nodes.  To keep *physical distances* at paper scale, a dilated
    allocation books ``dilation`` times as many nodes as the base
    allocation needs and hosts the job on every ``dilation``-th node —
    the inter-rank hop/latency spread of the full-size machine with a
    scaled-down process count.  ``DilatedAllocation(OnePerNode(), 16)``
    with 512 ranks books the 8192-node box of the paper's largest jobs.
    """

    def __init__(self, base: ProcessAllocation, dilation: int):
        if dilation < 1:
            raise AllocationError(f"dilation must be >= 1, got {dilation}")
        self.base = base
        self.dilation = int(dilation)
        self.name = f"{base.name}@x{dilation}"

    def nodes_needed(self, nranks: int) -> int:
        return self.base.nodes_needed(nranks) * self.dilation

    def rank_nodes(self, nranks: int) -> np.ndarray:
        return self.base.rank_nodes(nranks) * self.dilation


_ALLOCATIONS = registry_for("allocation")
_ALLOCATIONS.register("1/N", OnePerNode)
_ALLOCATIONS.register("8RR", lambda: RoundRobinPacked(8))
_ALLOCATIONS.register("8G", lambda: GroupedPacked(8))
_ALLOCATIONS.register("4RR", lambda: RoundRobinPacked(4))
_ALLOCATIONS.register("4G", lambda: GroupedPacked(4))


def _parse_dilated(name: str) -> ProcessAllocation | None:
    base_name, sep, dilation_part = name.partition("@x")
    if not sep:
        return None
    base = _ALLOCATIONS.resolve(base_name)
    try:
        dilation = int(dilation_part)
    except ValueError:
        raise ConfigurationError(
            f"bad dilation in allocation name {name!r}"
        ) from None
    return DilatedAllocation(base, dilation)  # type: ignore[arg-type]


_ALLOCATIONS.register_pattern("<base>@x<dilation>", _parse_dilated)


def allocation_by_name(name: str) -> ProcessAllocation:
    """Instantiate a named allocation.

    Accepts the paper's names (``"1/N"``, ``"8RR"``, ``"8G"``, ...)
    plus a ``"<base>@x<dilation>"`` suffix for dilated placements,
    e.g. ``"1/N@x16"``; thin wrapper over
    ``registry.resolve("allocation", name)``.
    """
    return _ALLOCATIONS.resolve(name)  # type: ignore[return-value]


@dataclass(frozen=True)
class Placement:
    """A fully-resolved job placement.

    Attributes
    ----------
    nranks:
        Number of MPI processes.
    rank_nodes:
        ``rank_nodes[r]`` = topology node id hosting rank ``r``.
    topology:
        The node topology the job runs on.
    latency:
        :class:`~repro.net.pairwise.PairwiseMetric` of one-way message
        latencies (seconds) between ranks — row-lazy, so paper-scale
        jobs never hold the dense N x N matrix.  Plain ndarrays are
        accepted and wrapped for backwards compatibility.
    euclidean:
        Pairwise Euclidean distances between rank positions — the
        quantity the paper's skewed victim selection weights by.
    hops:
        Pairwise network hop counts.
    allocation_name, latency_name:
        Provenance, for reports.
    """

    nranks: int
    rank_nodes: np.ndarray
    topology: Topology
    latency: PairwiseMetric
    euclidean: PairwiseMetric
    hops: PairwiseMetric
    allocation_name: str = "?"
    latency_name: str = "?"

    def __post_init__(self) -> None:
        n = self.nranks
        for name in ("latency", "euclidean", "hops"):
            metric = getattr(self, name)
            if isinstance(metric, np.ndarray):
                metric = PairwiseMetric.from_dense(metric, name=name)
                object.__setattr__(self, name, metric)
            if metric.shape != (n, n):
                raise ConfigurationError(
                    f"{name} matrix shape {metric.shape} != ({n}, {n})"
                )
        if len(self.rank_nodes) != n:
            raise ConfigurationError(
                f"rank_nodes length {len(self.rank_nodes)} != nranks {n}"
            )

    @property
    def num_nodes_used(self) -> int:
        return int(len(np.unique(self.rank_nodes)))

    def ranks_on_node(self, node: int) -> np.ndarray:
        return np.nonzero(self.rank_nodes == node)[0]


def build_placement(
    nranks: int,
    allocation: ProcessAllocation | str = "1/N",
    latency_model: LatencyModel | None = None,
    topology_factory: Callable[[int], Topology] | str | None = None,
) -> Placement:
    """Allocate ``nranks`` processes and precompute all pairwise data.

    Parameters
    ----------
    nranks:
        Number of MPI processes in the job.
    allocation:
        A :class:`ProcessAllocation` or one of the paper's names
        (``"1/N"``, ``"8RR"``, ``"8G"``).
    latency_model:
        Defaults to :class:`~repro.net.latency.KComputerLatency`.
    topology_factory:
        ``f(n_nodes) -> Topology`` or a registered topology name
        (``"tofu"``, ``"torus3d"``, ``"flat"``); defaults to
        :meth:`TofuTopology.for_nodes` (compact-box placement, like the
        K Computer's scheduler).
    """
    if isinstance(allocation, str):
        allocation = allocation_by_name(allocation)
    if latency_model is None:
        latency_model = KComputerLatency()
    if topology_factory is None:
        topology_factory = TofuTopology.for_nodes
    elif isinstance(topology_factory, str):
        topology_factory = registry_for("topology").resolve(topology_factory)

    n_nodes = allocation.nodes_needed(nranks)
    topology = topology_factory(n_nodes)
    if topology.num_nodes < n_nodes:
        raise AllocationError(
            f"topology has {topology.num_nodes} nodes, job needs {n_nodes}"
        )
    rank_nodes = allocation.rank_nodes(nranks)
    if rank_nodes.max() >= topology.num_nodes:
        raise AllocationError("allocation placed a rank outside the topology")

    # Row-lazy metrics: nothing N x N is allocated here — rows are
    # computed on demand (LRU-cached), and the dense escape hatch only
    # materialises if a consumer explicitly asks (small-N numpy code).
    latency = PairwiseMetric(
        nranks, latency_model.row_builder(topology, rank_nodes), name="latency"
    )
    euclidean = PairwiseMetric(
        nranks, topology.euclidean_rows(rank_nodes), name="euclidean"
    )
    hops = PairwiseMetric(nranks, topology.hops_rows(rank_nodes), name="hops")
    return Placement(
        nranks=nranks,
        rank_nodes=rank_nodes,
        topology=topology,
        latency=latency,
        euclidean=euclidean,
        hops=hops,
        allocation_name=allocation.name,
        latency_name=latency_model.name,
    )
