"""Mixed-radix coordinate spaces with optional per-dimension wrap-around.

A :class:`CoordSpace` describes a grid of ``prod(dims)`` points.  Node
ids are linearised row-major (first dimension slowest).  Each dimension
is either a *torus* dimension (distances wrap around) or a *mesh*
dimension (they do not) — the Tofu interconnect mixes both.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopologyError

__all__ = ["CoordSpace"]


class CoordSpace:
    """A mixed-radix, optionally-wrapping coordinate space.

    Parameters
    ----------
    dims:
        Extent of each dimension (all >= 1).
    wraps:
        For each dimension, whether distance wraps around (torus).
        Defaults to no wrapping anywhere.
    """

    def __init__(self, dims: tuple[int, ...], wraps: tuple[bool, ...] | None = None):
        if not dims:
            raise TopologyError("dims must be non-empty")
        if any(d < 1 for d in dims):
            raise TopologyError(f"all dims must be >= 1, got {dims}")
        if wraps is None:
            wraps = tuple(False for _ in dims)
        if len(wraps) != len(dims):
            raise TopologyError(
                f"wraps length {len(wraps)} != dims length {len(dims)}"
            )
        self.dims = tuple(int(d) for d in dims)
        self.wraps = tuple(bool(w) for w in wraps)
        self.ndim = len(dims)
        self.size = int(np.prod(self.dims))
        # Row-major strides for id <-> coordinate conversion.
        strides = [1] * self.ndim
        for k in range(self.ndim - 2, -1, -1):
            strides[k] = strides[k + 1] * self.dims[k + 1]
        self._strides = np.array(strides, dtype=np.int64)
        self._dims_arr = np.array(self.dims, dtype=np.int64)
        self._wrap_arr = np.array(self.wraps, dtype=bool)

    # ------------------------------------------------------------------
    # id <-> coords
    # ------------------------------------------------------------------

    def coords_of(self, node: int) -> np.ndarray:
        """Coordinate vector of a node id."""
        if not 0 <= node < self.size:
            raise TopologyError(f"node {node} out of range [0, {self.size})")
        return (node // self._strides) % self._dims_arr

    def coords_of_many(self, nodes: np.ndarray) -> np.ndarray:
        """Coordinates of an array of node ids, shape ``(len(nodes), ndim)``."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.size):
            raise TopologyError("node id out of range")
        return (nodes[:, None] // self._strides[None, :]) % self._dims_arr[None, :]

    def id_of(self, coords: np.ndarray) -> int:
        """Node id of a coordinate vector."""
        coords = np.asarray(coords, dtype=np.int64)
        if coords.shape != (self.ndim,):
            raise TopologyError(
                f"coords shape {coords.shape} != ({self.ndim},)"
            )
        if np.any(coords < 0) or np.any(coords >= self._dims_arr):
            raise TopologyError(f"coords {coords.tolist()} out of range {self.dims}")
        return int((coords * self._strides).sum())

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------

    def delta(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Per-dimension separation, respecting wrap-around (min-image)."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        raw = np.abs(a - b)
        wrapped = np.minimum(raw, self._dims_arr - raw)
        return np.where(self._wrap_arr, wrapped, raw)

    def manhattan(self, a: np.ndarray, b: np.ndarray) -> int:
        """Hop count between two coordinate vectors (Manhattan, min-image)."""
        return int(self.delta(a, b).sum())

    def euclidean(self, a: np.ndarray, b: np.ndarray) -> float:
        """Euclidean distance between two coordinate vectors (min-image)."""
        d = self.delta(a, b).astype(np.float64)
        return float(np.sqrt((d * d).sum()))

    def delta_from(self, coords: np.ndarray, ref: np.ndarray) -> np.ndarray:
        """Per-dimension separations of many coords from one reference.

        The one-row counterpart of :meth:`delta_matrix`: for ``(n,
        ndim)`` coords and a single ``(ndim,)`` reference it returns an
        ``(n, ndim)`` int array using ``O(n)`` memory, which is what
        lets placements stay row-lazy at paper scale.
        """
        coords = np.asarray(coords, dtype=np.int64)
        ref = np.asarray(ref, dtype=np.int64)
        raw = np.abs(coords - ref[None, :])
        wrapped = np.minimum(raw, self._dims_arr[None, :] - raw)
        return np.where(self._wrap_arr[None, :], wrapped, raw)

    def delta_matrix(self, coords: np.ndarray) -> np.ndarray:
        """Pairwise per-dimension separations for ``(n, ndim)`` coords.

        Returns an ``(n, n, ndim)`` int array; memory is ``n^2 * ndim``
        which for the simulated scales (n <= a few thousand) is fine.
        """
        coords = np.asarray(coords, dtype=np.int64)
        raw = np.abs(coords[:, None, :] - coords[None, :, :])
        wrapped = np.minimum(raw, self._dims_arr[None, None, :] - raw)
        return np.where(self._wrap_arr[None, None, :], wrapped, raw)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoordSpace(dims={self.dims}, wraps={self.wraps})"
