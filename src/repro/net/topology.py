"""Node topologies: who is physically where.

A :class:`Topology` assigns every compute node a coordinate vector and
derives distances from it.  The flagship model is
:class:`TofuTopology`, a software reconstruction of the K Computer's
Tofu interconnect as the paper describes it (§IV-B):

    "compute nodes are in groups of four on a blade [...] 3 blades are
    joined together, forming a 2x3x2 cube.  This cube represent 3 of
    the 6 dimensions of the Tofu network.  Finally, these cube are
    joined in a 3D mesh torus, with one dimension for the rack (8
    cubes are in the same rack), and two across racks."

Node coordinates are 6-vectors ``(x, y, z, a, b, c)``: ``(x, y, z)``
locate the cube in a 3-D torus; ``(a, b, c) in 2x3x2`` locate the node
inside its cube; ``b`` is the blade index (4 nodes per blade share
``(x, y, z, b)``).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.core.registry import registry_for
from repro.errors import TopologyError
from repro.net.coords import CoordSpace

__all__ = [
    "Topology",
    "TofuTopology",
    "Torus3D",
    "FlatTopology",
    "FatTreeTopology",
    "topology_factory_by_name",
]


class Topology(ABC):
    """Interface of a node topology."""

    #: Short identifier for configs and reports.
    name: str = "abstract"

    #: Total number of compute nodes.
    num_nodes: int

    @abstractmethod
    def coords(self, node: int) -> np.ndarray:
        """Coordinate vector of ``node``."""

    @abstractmethod
    def coords_all(self) -> np.ndarray:
        """``(num_nodes, ndim)`` coordinates of every node."""

    @abstractmethod
    def hops(self, a: int, b: int) -> int:
        """Network hop count between nodes ``a`` and ``b``."""

    @abstractmethod
    def euclidean(self, a: int, b: int) -> float:
        """Euclidean distance between nodes ``a`` and ``b``."""

    def hops_matrix(self, nodes: np.ndarray) -> np.ndarray:
        """Pairwise hop counts for the given node ids (default: loops)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        n = len(nodes)
        out = np.zeros((n, n), dtype=np.int64)
        for i in range(n):
            for j in range(i + 1, n):
                h = self.hops(int(nodes[i]), int(nodes[j]))
                out[i, j] = out[j, i] = h
        return out

    def euclidean_matrix(self, nodes: np.ndarray) -> np.ndarray:
        """Pairwise Euclidean distances for the given node ids."""
        nodes = np.asarray(nodes, dtype=np.int64)
        n = len(nodes)
        out = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i + 1, n):
                d = self.euclidean(int(nodes[i]), int(nodes[j]))
                out[i, j] = out[j, i] = d
        return out

    # ------------------------------------------------------------------
    # Row builders: O(N)-memory access for paper-scale placements.
    # A builder precomputes whatever per-job state the rows share (the
    # coordinate table, typically) and returns ``f(i) -> row``; see
    # :class:`repro.net.pairwise.PairwiseMetric`.
    # ------------------------------------------------------------------

    def hops_rows(self, nodes: np.ndarray):
        """``f(i) -> hop counts from rank i to every rank`` (default: loops)."""
        nodes = np.asarray(nodes, dtype=np.int64)

        def row(i: int) -> np.ndarray:
            a = int(nodes[i])
            return np.array(
                [self.hops(a, int(b)) for b in nodes], dtype=np.int64
            )

        return row

    def euclidean_rows(self, nodes: np.ndarray):
        """``f(i) -> Euclidean distances from rank i`` (default: loops)."""
        nodes = np.asarray(nodes, dtype=np.int64)

        def row(i: int) -> np.ndarray:
            a = int(nodes[i])
            return np.array(
                [self.euclidean(a, int(b)) for b in nodes], dtype=np.float64
            )

        return row

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise TopologyError(
                f"node {node} out of range [0, {self.num_nodes})"
            )


class _GridTopology(Topology):
    """Shared implementation for coordinate-space topologies."""

    def __init__(self, space: CoordSpace):
        self._space = space
        self.num_nodes = space.size

    @property
    def space(self) -> CoordSpace:
        return self._space

    def coords(self, node: int) -> np.ndarray:
        self._check_node(node)
        return self._space.coords_of(node)

    def coords_all(self) -> np.ndarray:
        return self._space.coords_of_many(np.arange(self.num_nodes))

    def hops(self, a: int, b: int) -> int:
        self._check_node(a)
        self._check_node(b)
        return self._space.manhattan(self._space.coords_of(a), self._space.coords_of(b))

    def euclidean(self, a: int, b: int) -> float:
        self._check_node(a)
        self._check_node(b)
        return self._space.euclidean(self._space.coords_of(a), self._space.coords_of(b))

    def hops_matrix(self, nodes: np.ndarray) -> np.ndarray:
        coords = self._space.coords_of_many(np.asarray(nodes, dtype=np.int64))
        return self._space.delta_matrix(coords).sum(axis=2)

    def euclidean_matrix(self, nodes: np.ndarray) -> np.ndarray:
        coords = self._space.coords_of_many(np.asarray(nodes, dtype=np.int64))
        d = self._space.delta_matrix(coords).astype(np.float64)
        return np.sqrt((d * d).sum(axis=2))

    def hops_rows(self, nodes: np.ndarray):
        space = self._space
        coords = space.coords_of_many(np.asarray(nodes, dtype=np.int64))

        def row(i: int) -> np.ndarray:
            return space.delta_from(coords, coords[i]).sum(axis=1)

        return row

    def euclidean_rows(self, nodes: np.ndarray):
        space = self._space
        coords = space.coords_of_many(np.asarray(nodes, dtype=np.int64))

        def row(i: int) -> np.ndarray:
            d = space.delta_from(coords, coords[i]).astype(np.float64)
            return np.sqrt((d * d).sum(axis=1))

        return row


class TofuTopology(_GridTopology):
    """Software model of the Tofu 6-D mesh/torus.

    Parameters
    ----------
    cube_grid:
        Extent ``(X, Y, Z)`` of the 3-D torus of cubes.  Each cube
        holds ``2 * 3 * 2 = 12`` nodes, so ``num_nodes = 12 * X*Y*Z``.
    """

    name = "tofu"

    #: In-cube dimensions (a, b, c): b is the blade, (a, c) the slot.
    CUBE_DIMS = (2, 3, 2)
    NODES_PER_CUBE = 12
    NODES_PER_BLADE = 4
    #: Cubes per rack on the K Computer (one torus dimension is the rack).
    CUBES_PER_RACK = 8

    def __init__(self, cube_grid: tuple[int, int, int]):
        if len(cube_grid) != 3:
            raise TopologyError(f"cube_grid must have 3 dims, got {cube_grid}")
        x, y, z = cube_grid
        space = CoordSpace(
            dims=(x, y, z, *self.CUBE_DIMS),
            # The 3-D cube grid is a torus; in-cube links do not wrap.
            wraps=(True, True, True, False, False, False),
        )
        super().__init__(space)
        self.cube_grid = (int(x), int(y), int(z))

    @classmethod
    def for_nodes(cls, n_nodes: int) -> "TofuTopology":
        """Smallest near-cubic cube grid holding ``n_nodes`` nodes.

        Mirrors the K Computer job scheduler, which "tends to
        distribute nodes in a 3D rectangle minimizing the average
        number of hops between processes".
        """
        if n_nodes < 1:
            raise TopologyError(f"need at least 1 node, got {n_nodes}")
        cubes = math.ceil(n_nodes / cls.NODES_PER_CUBE)
        # Near-cubic box x <= y <= z with x*y*z >= cubes, preferring the
        # most compact (smallest spread, then smallest volume) box.
        best: tuple[tuple[int, int], tuple[int, int, int]] | None = None
        for cx in range(1, int(round(cubes ** (1 / 3))) + 2):
            rem = math.ceil(cubes / cx)
            for cy in range(cx, int(math.isqrt(rem)) + 2):
                cz = max(cy, math.ceil(rem / cy))
                if cx * cy * cz >= cubes:
                    key = (cx * cy * cz, cz - cx)
                    if best is None or key < best[0]:
                        best = (key, (cx, cy, cz))
        assert best is not None
        return cls(best[1])

    # ------------------------------------------------------------------
    # Hierarchy queries used by the hierarchical latency model
    # ------------------------------------------------------------------

    def cube_of(self, node: int) -> tuple[int, int, int]:
        c = self.coords(node)
        return (int(c[0]), int(c[1]), int(c[2]))

    def blade_of(self, node: int) -> tuple[int, int, int, int]:
        c = self.coords(node)
        return (int(c[0]), int(c[1]), int(c[2]), int(c[4]))

    def rack_of(self, node: int) -> tuple[int, int, int]:
        """Rack id: the x dimension runs within a rack (8 cubes/rack),
        y and z enumerate racks."""
        x, y, z = self.cube_of(node)
        return (x // self.CUBES_PER_RACK, y, z)

    def same_blade(self, a: int, b: int) -> bool:
        return self.blade_of(a) == self.blade_of(b)

    def same_cube(self, a: int, b: int) -> bool:
        return self.cube_of(a) == self.cube_of(b)


class Torus3D(_GridTopology):
    """Plain 3-D torus (one node per grid point) — a simpler comparator."""

    name = "torus3d"

    def __init__(self, dims: tuple[int, int, int]):
        if len(dims) != 3:
            raise TopologyError(f"dims must have 3 entries, got {dims}")
        super().__init__(CoordSpace(tuple(dims), wraps=(True, True, True)))
        self.dims = tuple(int(d) for d in dims)

    @classmethod
    def for_nodes(cls, n_nodes: int) -> "Torus3D":
        if n_nodes < 1:
            raise TopologyError(f"need at least 1 node, got {n_nodes}")
        side = max(1, round(n_nodes ** (1 / 3)))
        while side**3 < n_nodes:
            side += 1
        return cls((side, side, side))


class FlatTopology(Topology):
    """Null model: every pair of distinct nodes is equidistant.

    This is the implicit assumption of most work-stealing theory
    ("all participating processes are equidistant from each other") —
    under it, distance-skewed selection degenerates to uniform random,
    which the ablation benchmarks verify.
    """

    name = "flat"

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise TopologyError(f"need at least 1 node, got {num_nodes}")
        self.num_nodes = int(num_nodes)

    def coords(self, node: int) -> np.ndarray:
        self._check_node(node)
        return np.array([node], dtype=np.int64)

    def coords_all(self) -> np.ndarray:
        return np.arange(self.num_nodes, dtype=np.int64)[:, None]

    def hops(self, a: int, b: int) -> int:
        self._check_node(a)
        self._check_node(b)
        return 0 if a == b else 1

    def euclidean(self, a: int, b: int) -> float:
        return float(self.hops(a, b))

    def hops_matrix(self, nodes: np.ndarray) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        eq = nodes[:, None] == nodes[None, :]
        return np.where(eq, 0, 1).astype(np.int64)

    def euclidean_matrix(self, nodes: np.ndarray) -> np.ndarray:
        return self.hops_matrix(nodes).astype(np.float64)

    def hops_rows(self, nodes: np.ndarray):
        nodes = np.asarray(nodes, dtype=np.int64)

        def row(i: int) -> np.ndarray:
            return np.where(nodes == nodes[i], 0, 1).astype(np.int64)

        return row

    def euclidean_rows(self, nodes: np.ndarray):
        hops_row = self.hops_rows(nodes)

        def row(i: int) -> np.ndarray:
            return hops_row(i).astype(np.float64)

        return row


class FatTreeTopology(Topology):
    """Two-level switched tree: nodes grouped under leaf switches.

    Models commodity clusters: one hop inside a switch group, three
    hops (up-core-down) across groups.  Euclidean distance is defined
    as the hop count, giving the skewed selector a two-level weight
    profile — the structure hierarchical work stealing papers assume.
    """

    name = "fattree"

    def __init__(self, num_groups: int, nodes_per_group: int):
        if num_groups < 1 or nodes_per_group < 1:
            raise TopologyError(
                f"groups/nodes_per_group must be >= 1, got "
                f"{num_groups}/{nodes_per_group}"
            )
        self.num_groups = int(num_groups)
        self.nodes_per_group = int(nodes_per_group)
        self.num_nodes = self.num_groups * self.nodes_per_group

    def group_of(self, node: int) -> int:
        self._check_node(node)
        return node // self.nodes_per_group

    def coords(self, node: int) -> np.ndarray:
        self._check_node(node)
        return np.array(
            [node // self.nodes_per_group, node % self.nodes_per_group],
            dtype=np.int64,
        )

    def coords_all(self) -> np.ndarray:
        nodes = np.arange(self.num_nodes, dtype=np.int64)
        return np.stack(
            [nodes // self.nodes_per_group, nodes % self.nodes_per_group], axis=1
        )

    def hops(self, a: int, b: int) -> int:
        self._check_node(a)
        self._check_node(b)
        if a == b:
            return 0
        return 1 if self.group_of(a) == self.group_of(b) else 3

    def euclidean(self, a: int, b: int) -> float:
        return float(self.hops(a, b))

    def hops_matrix(self, nodes: np.ndarray) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        groups = nodes // self.nodes_per_group
        same_node = nodes[:, None] == nodes[None, :]
        same_group = groups[:, None] == groups[None, :]
        return np.where(same_node, 0, np.where(same_group, 1, 3)).astype(np.int64)

    def euclidean_matrix(self, nodes: np.ndarray) -> np.ndarray:
        return self.hops_matrix(nodes).astype(np.float64)

    def hops_rows(self, nodes: np.ndarray):
        nodes = np.asarray(nodes, dtype=np.int64)
        groups = nodes // self.nodes_per_group

        def row(i: int) -> np.ndarray:
            same_node = nodes == nodes[i]
            same_group = groups == groups[i]
            return np.where(same_node, 0, np.where(same_group, 1, 3)).astype(
                np.int64
            )

        return row

    def euclidean_rows(self, nodes: np.ndarray):
        hops_row = self.hops_rows(nodes)

        def row(i: int) -> np.ndarray:
            return hops_row(i).astype(np.float64)

        return row


# ----------------------------------------------------------------------
# Named topology factories
# ----------------------------------------------------------------------
#
# A topology *factory* is ``f(n_nodes) -> Topology``; configs may name
# one by string so runs stay serializable (see repro.exec).  The
# registry entries therefore resolve to the factory callable itself.

_TOPOLOGIES = registry_for("topology")
_TOPOLOGIES.register("tofu", lambda: TofuTopology.for_nodes)
_TOPOLOGIES.register("torus3d", lambda: Torus3D.for_nodes)
_TOPOLOGIES.register("flat", lambda: FlatTopology)


def topology_factory_by_name(name: str):
    """Resolve a named topology factory (``"tofu"``, ``"flat"``, ...).

    Thin wrapper over ``registry.resolve("topology", name)``.
    """
    return _TOPOLOGIES.resolve(name)
