"""Lazy pairwise rank metrics: O(N) memory instead of dense N x N.

The paper's headline experiments run at 1024--8192 ranks.  Holding the
three rank-pair matrices (latency, Euclidean distance, hop count) as
dense arrays costs ``3 * N^2 * 8`` bytes -- about 1.6 GB at 8192 ranks
-- although almost every consumer only ever looks at one *row* at a
time: a victim selector weights the caller's row, the cluster transport
reads single ``(src, dst)`` values, the finish broadcast walks row 0.

:class:`PairwiseMetric` is the row-oriented replacement.  It computes
rows on demand from a ``row_fn`` (usually a closure over the rank
coordinates) and keeps a bounded LRU cache of recently used rows, so
peak memory is ``O(cache_rows * N)`` regardless of scale.  For small
jobs, and for numpy-style consumers (boolean masks, ``np.allclose``),
:meth:`dense` materialises the full matrix as an escape hatch --
:attr:`dense_calls` counts how often that happened so tests can assert
the large-N code path never does.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PairwiseMetric", "DEFAULT_ROW_CACHE"]

#: Default LRU row-cache capacity.  At 8192 ranks a float64 row is
#: 64 KiB, so the default cache tops out around 8 MiB per metric.
DEFAULT_ROW_CACHE = 128


class PairwiseMetric:
    """A symmetric ``(n, n)`` rank-pair metric stored as lazy rows.

    Parameters
    ----------
    n:
        Number of ranks (the metric is conceptually ``n x n``).
    row_fn:
        ``row_fn(i) -> ndarray`` of length ``n``: the metric's row for
        rank ``i``.  Called at most once per row while the row stays in
        cache; must be pure (same ``i`` -> same values).
    name:
        Label used in error messages and repr.
    cache_rows:
        LRU capacity in rows (>= 1).

    Indexing mirrors the dense-array API the rest of the code grew up
    with: ``m[i]`` is a *copy* of row ``i``, ``m[i, j]`` a float, and
    any other key (masks, slices, fancy indexing) transparently falls
    back to the materialised dense matrix -- fine for small jobs, and
    counted in :attr:`dense_calls` so the paper-scale path can prove it
    never paid for it.
    """

    __slots__ = (
        "n",
        "name",
        "_row_fn",
        "_cache",
        "_capacity",
        "_dense",
        "dense_calls",
    )

    def __init__(
        self,
        n: int,
        row_fn: Callable[[int], np.ndarray],
        name: str = "metric",
        cache_rows: int = DEFAULT_ROW_CACHE,
    ):
        if n < 1:
            raise ConfigurationError(f"metric needs n >= 1, got {n}")
        if cache_rows < 1:
            raise ConfigurationError(
                f"cache_rows must be >= 1, got {cache_rows}"
            )
        self.n = int(n)
        self.name = name
        self._row_fn = row_fn
        self._cache: OrderedDict[int, np.ndarray] = OrderedDict()
        self._capacity = int(cache_rows)
        self._dense: np.ndarray | None = None
        #: Number of times the dense escape hatch was taken.
        self.dense_calls = 0

    @classmethod
    def from_dense(cls, matrix: np.ndarray, name: str = "metric") -> "PairwiseMetric":
        """Wrap an already-materialised dense matrix (small-N path)."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ConfigurationError(
                f"{name} matrix must be square, got shape {matrix.shape}"
            )
        metric = cls(matrix.shape[0], lambda i: matrix[i], name=name)
        metric._dense = matrix
        return metric

    # ------------------------------------------------------------------
    # Core API
    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)

    @property
    def materialised(self) -> bool:
        """Whether the full dense matrix currently exists in memory."""
        return self._dense is not None

    def row(self, i: int) -> np.ndarray:
        """Row ``i`` as a **read-only** array (shared with the cache).

        Callers that mutate must copy (``m[i]`` does that for them).
        """
        cache = self._cache
        r = cache.get(i)
        if r is not None:
            cache.move_to_end(i)
            return r
        if not 0 <= i < self.n:
            raise ConfigurationError(
                f"{self.name} row {i} out of range [0, {self.n})"
            )
        if self._dense is not None:
            r = self._dense[i]
        else:
            r = np.asarray(self._row_fn(i))
            if r.shape != (self.n,):
                raise ConfigurationError(
                    f"{self.name} row_fn({i}) returned shape {r.shape}, "
                    f"expected ({self.n},)"
                )
        r = r.view()
        r.flags.writeable = False
        cache[i] = r
        if len(cache) > self._capacity:
            cache.popitem(last=False)
        return r

    def value(self, i: int, j: int) -> float:
        """Scalar ``metric[i, j]`` (row-cache backed)."""
        return float(self.row(i)[j])

    def dense(self) -> np.ndarray:
        """Materialise (and memoise) the full matrix -- the escape hatch.

        O(N^2) memory: meant for small jobs, plots and tests.  The
        result is read-only because it is shared with later calls.
        """
        self.dense_calls += 1
        if self._dense is None:
            out = np.stack([np.asarray(self._row_fn(i)) for i in range(self.n)])
            out.flags.writeable = False
            self._dense = out
        return self._dense

    # ------------------------------------------------------------------
    # numpy-compatible sugar
    # ------------------------------------------------------------------

    def __getitem__(self, key):
        if isinstance(key, (int, np.integer)):
            return self.row(int(key)).copy()
        if (
            isinstance(key, tuple)
            and len(key) == 2
            and isinstance(key[0], (int, np.integer))
            and isinstance(key[1], (int, np.integer))
        ):
            return self.value(int(key[0]), int(key[1]))
        return self.dense()[key]

    def __array__(self, dtype=None, copy=None):
        out = self.dense()
        return out.astype(dtype) if dtype is not None else out

    def max(self):
        """Maximum over the whole matrix (materialises; small-N sugar)."""
        return self.dense().max()

    def min(self):
        """Minimum over the whole matrix (materialises; small-N sugar)."""
        return self.dense().min()

    def mean(self):
        """Mean over the whole matrix (materialises; small-N sugar)."""
        return self.dense().mean()

    @property
    def T(self) -> np.ndarray:
        """Transpose of the dense matrix (symmetry checks in tests)."""
        return self.dense().T

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dense" if self.materialised else f"lazy, {len(self._cache)} rows cached"
        return f"PairwiseMetric({self.name}, n={self.n}, {state})"
