"""Network substrate: topology, latency and process placement models.

The paper's central observation is that steal requests between
*physically distant* nodes cost more than between close ones, and that
victim selection should account for it.  This subpackage provides what
the K Computer provided the authors:

* :mod:`repro.net.coords` — mixed-radix coordinate math with torus
  wrap-around;
* :mod:`repro.net.topology` — node topologies, chiefly
  :class:`~repro.net.topology.TofuTopology`, a software model of the
  Tofu 6-D mesh/torus (4-node blades, 2x3x2 cubes of 3 blades, cubes in
  a 3-D torus);
* :mod:`repro.net.latency` — latency models turning topological
  distance into seconds;
* :mod:`repro.net.allocation` — rank-to-node placements (the paper's
  1/N, 8RR and 8G schemes) and the :class:`~repro.net.allocation.Placement`
  object exposing per-rank-pair distances and latencies;
* :mod:`repro.net.pairwise` — the row-lazy
  :class:`~repro.net.pairwise.PairwiseMetric` backing those pairwise
  quantities with O(N) memory at paper scale;
* :mod:`repro.net.contention` — optional per-node NIC serialisation.
"""

from repro.net.coords import CoordSpace
from repro.net.pairwise import PairwiseMetric
from repro.net.topology import (
    Topology,
    TofuTopology,
    Torus3D,
    FlatTopology,
    FatTreeTopology,
)
from repro.net.latency import (
    LatencyModel,
    UniformLatency,
    HopLatency,
    HierarchicalLatency,
    KComputerLatency,
)
from repro.net.allocation import (
    ProcessAllocation,
    OnePerNode,
    RoundRobinPacked,
    GroupedPacked,
    RandomAllocation,
    DilatedAllocation,
    Placement,
    build_placement,
    allocation_by_name,
)
from repro.net.contention import NicContention

__all__ = [
    "CoordSpace",
    "PairwiseMetric",
    "Topology",
    "TofuTopology",
    "Torus3D",
    "FlatTopology",
    "FatTreeTopology",
    "LatencyModel",
    "UniformLatency",
    "HopLatency",
    "HierarchicalLatency",
    "KComputerLatency",
    "ProcessAllocation",
    "OnePerNode",
    "RoundRobinPacked",
    "GroupedPacked",
    "RandomAllocation",
    "DilatedAllocation",
    "Placement",
    "build_placement",
    "allocation_by_name",
    "NicContention",
]
