"""Packed binary codec for cross-shard event traffic.

``shard_workers > 1`` ships staged outbox entries between OS
processes every lookahead window.  Pickling the raw ``(key, dst,
payload)`` tuples is the dominant transport cost: a single
``StealResponse`` drags whole :class:`~repro.uts.stack.Chunk` objects
— Python lists of ints — through ``pickle``, and the per-object
overhead dwarfs the simulation work inside a window.  This codec
flattens a whole outbox into one contiguous byte string:

* one :data:`MSG_DT` structured record per entry — the global event
  key ``(time, src, seq)``, the destination rank, the message tag and
  two integer argument slots;
* one :data:`CHUNK_DT` record per shipped chunk (``size``,
  ``capacity``), with every chunk's node states and depths
  concatenated into two raw buffers (``<u8`` states, ``<i4`` depths);
* a pickled escape list for payload types without a compact encoding
  (tag :data:`TAG_RAW`), so custom message classes keep working.

Decoding rebuilds exactly the entry tuples the shard heaps hold;
``encode → decode`` is bit-identical (float64 times and uint64 node
states round-trip untouched), which the hypothesis suite in
``tests/sim/test_shardcodec.py`` pins down.  The coordinator never
decodes: blobs are routed opaquely by the ``(target, min_key, count)``
metadata computed at encode time.

Wire format (little-endian throughout)::

    magic  b"SHC1"
    5 x <u8   byte lengths: msgs, chunks, states, depths, extra
    msgs   n x MSG_DT
    chunks m x CHUNK_DT
    states <u8 concatenation of all chunk states
    depths <i4 concatenation of all chunk depths
    extra  pickle of the raw-payload list (empty section if none)
"""

from __future__ import annotations

import pickle
import struct

import numpy as np

from repro.errors import SimulationError
from repro.sim.engine import EVT_MSG
from repro.sim.messages import (
    TAG_FINISH,
    TAG_LIFELINE_DEREGISTER,
    TAG_LIFELINE_REGISTER,
    TAG_STEAL_FORWARD,
    TAG_STEAL_REQUEST,
    TAG_STEAL_RESPONSE,
    TAG_TOKEN,
    Finish,
    LifelineDeregister,
    LifelineRegister,
    StealForward,
    StealRequest,
    StealResponse,
    Token,
)
from repro.uts.stack import Chunk

__all__ = [
    "MSG_DT",
    "CHUNK_DT",
    "TAG_RAW",
    "encode_entries",
    "decode_entries",
    "min_entry_key",
]

#: Escape tag for payloads the codec has no compact encoding for;
#: the payload itself rides in the pickled ``extra`` section and the
#: ``a`` slot holds its index there.
TAG_RAW = 255

#: One record per staged entry.  ``a``/``b`` are tag-specific integer
#: slots: thief (+ ``b`` = escalated) for steal requests, victim
#: (+ ``b`` = has-work flag) for responses, color for tokens, thief
#: for lifeline (de)registrations, extra-list index for TAG_RAW.
MSG_DT = np.dtype(
    [
        ("time", "<f8"),
        ("src", "<i8"),
        ("seq", "<i8"),
        ("dst", "<i8"),
        ("tag", "<i2"),
        ("a", "<i8"),
        ("b", "<i8"),
        ("nchunks", "<i4"),
    ]
)

#: One record per shipped chunk; the node payload lives in the shared
#: states/depths buffers, sliced by the running ``size`` offsets.
CHUNK_DT = np.dtype([("size", "<i4"), ("capacity", "<i4")])

_MAGIC = b"SHC1"
_HEADER = struct.Struct("<4s5Q")

_EMPTY_EXTRA = pickle.dumps([])


def min_entry_key(entries: list) -> tuple[float, int, int]:
    """Smallest global event key ``(time, src, seq)`` in an outbox."""
    t, src, seq = entries[0][:3]
    best = (t, src, seq)
    for entry in entries:
        key = (entry[0], entry[1], entry[2])
        if key < best:
            best = key
    return best


def encode_entries(entries: list) -> bytes:
    """Flatten staged outbox entries into one codec blob.

    Every entry is ``(time, src, seq, EVT_MSG, dst, payload)`` — only
    messages are ever staged cross-shard (EXEC events are always
    local), which the encoder asserts.
    """
    n = len(entries)
    rows = []
    chunk_rows: list[tuple[int, int]] = []
    states: list[int] = []
    depths: list[int] = []
    extra: list = []
    for t, src, seq, kind, dst, payload in entries:
        if kind != EVT_MSG:  # pragma: no cover - staging invariant
            raise SimulationError(
                f"cross-shard entry with non-message kind {kind}"
            )
        tag = getattr(payload, "tag", None)
        a = b = 0
        nchunks = 0
        if tag == TAG_STEAL_REQUEST:
            a = payload.thief
            b = 1 if payload.escalated else 0
        elif tag == TAG_STEAL_RESPONSE:
            a = payload.victim
            chunks = payload.chunks
            if chunks is not None:
                b = 1
                nchunks = len(chunks)
                for chunk in chunks:
                    chunk_rows.append((chunk.size, chunk.capacity))
                    states += chunk.states
                    depths += chunk.depths
        elif tag == TAG_TOKEN:
            a = payload.color
        elif tag == TAG_FINISH:
            pass
        elif tag == TAG_LIFELINE_REGISTER or tag == TAG_LIFELINE_DEREGISTER:
            a = payload.thief
        elif tag == TAG_STEAL_FORWARD:
            # ttl and the escalated bit pack into ``b``; the visited
            # tuple rides the pickled extra section, indexed through
            # ``nchunks`` (which only steal responses use for chunk
            # consumption, so the reuse is unambiguous).
            a = payload.thief
            b = (payload.ttl << 1) | (1 if payload.escalated else 0)
            nchunks = len(extra)
            extra.append(list(payload.visited))
        else:
            tag = TAG_RAW
            a = len(extra)
            extra.append(payload)
        rows.append((t, src, seq, dst, tag, a, b, nchunks))

    msgs = np.array(rows, dtype=MSG_DT) if rows else np.empty(0, MSG_DT)
    chunk_arr = (
        np.array(chunk_rows, dtype=CHUNK_DT)
        if chunk_rows
        else np.empty(0, CHUNK_DT)
    )
    states_arr = np.array(states, dtype=np.uint64)
    depths_arr = np.array(depths, dtype=np.int32)
    extra_bytes = pickle.dumps(extra) if extra else _EMPTY_EXTRA

    sections = (
        msgs.tobytes(),
        chunk_arr.tobytes(),
        states_arr.tobytes(),
        depths_arr.tobytes(),
        extra_bytes,
    )
    header = _HEADER.pack(_MAGIC, *(len(s) for s in sections))
    return header + b"".join(sections)


def decode_entries(blob: bytes) -> list:
    """Rebuild the staged entry tuples from :func:`encode_entries`."""
    magic, n_msgs, n_chunks, n_states, n_depths, n_extra = _HEADER.unpack_from(
        blob, 0
    )
    if magic != _MAGIC:
        raise SimulationError(
            f"bad shard codec magic {magic!r} (corrupt blob?)"
        )
    off = _HEADER.size
    msgs = np.frombuffer(blob, MSG_DT, count=n_msgs // MSG_DT.itemsize, offset=off)
    off += n_msgs
    chunk_meta = np.frombuffer(
        blob, CHUNK_DT, count=n_chunks // CHUNK_DT.itemsize, offset=off
    )
    off += n_chunks
    states_all = np.frombuffer(
        blob, np.uint64, count=n_states // 8, offset=off
    ).tolist()
    off += n_states
    depths_all = np.frombuffer(
        blob, np.int32, count=n_depths // 4, offset=off
    ).tolist()
    off += n_depths
    extra = pickle.loads(blob[off : off + n_extra]) if n_extra else []

    chunk_rows = chunk_meta.tolist()
    entries = []
    ci = 0  # next chunk row
    no = 0  # node offset into the shared buffers
    for t, src, seq, dst, tag, a, b, nchunks in msgs.tolist():
        if tag == TAG_STEAL_REQUEST:
            payload: object = StealRequest(a, bool(b))
        elif tag == TAG_STEAL_RESPONSE:
            if b:
                chunks = []
                for _ in range(nchunks):
                    size, capacity = chunk_rows[ci]
                    ci += 1
                    chunks.append(
                        Chunk.from_lists(
                            states_all[no : no + size],
                            depths_all[no : no + size],
                            capacity,
                        )
                    )
                    no += size
                payload = StealResponse(a, chunks)
            else:
                payload = StealResponse(a, None)
        elif tag == TAG_TOKEN:
            payload = Token(a)
        elif tag == TAG_FINISH:
            payload = Finish()
        elif tag == TAG_LIFELINE_REGISTER:
            payload = LifelineRegister(a)
        elif tag == TAG_LIFELINE_DEREGISTER:
            payload = LifelineDeregister(a)
        elif tag == TAG_STEAL_FORWARD:
            payload = StealForward(a, bool(b & 1), b >> 1, tuple(extra[nchunks]))
        elif tag == TAG_RAW:
            payload = extra[a]
        else:  # pragma: no cover - wire guard
            raise SimulationError(f"unknown shard codec tag {tag}")
        entries.append((t, src, seq, EVT_MSG, dst, payload))
    return entries
