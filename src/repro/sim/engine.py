"""Event queue and loop primitives of the cluster simulator.

Two event kinds exist:

* ``EVT_EXEC`` — a rank reached a poll boundary (end of a work
  quantum) and runs its scheduler step;
* ``EVT_MSG`` — a message arrives at a rank.

Ordering: events are keyed by ``(time, pusher, seq)`` where ``pusher``
is the rank that scheduled the event and ``seq`` a per-pusher counter.
Among equal timestamps this delivers in pusher order, then in each
pusher's insertion order — a total order that is computable *locally*
by whichever shard hosts the pusher, which is what lets the sharded
engine (:mod:`repro.sim.shard`) merge cross-shard event streams into
exactly the same global order the single queue produces.  A rank only
ever pushes while one of its own events is being processed, so in any
engine the per-pusher counters evolve identically and the key space is
globally unique.
"""

from __future__ import annotations

import heapq
from typing import Any

from repro.errors import SimulationError

__all__ = ["EVT_EXEC", "EVT_MSG", "EventQueue"]

EVT_EXEC = 0
EVT_MSG = 1

#: Default runaway guard for one simulation.
DEFAULT_MAX_EVENTS = 100_000_000


class EventQueue:
    """Priority queue of timestamped simulation events.

    Entries are ``(time, pusher, seq, kind, rank, payload)`` tuples;
    ``(pusher, seq)`` makes the ordering total, deterministic, and
    FIFO among a single pusher's equal-timestamp events.
    """

    __slots__ = ("_heap", "_rank_seq", "_processed", "_max_events", "now")

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS):
        if max_events < 1:
            raise SimulationError(f"max_events must be >= 1, got {max_events}")
        self._heap: list[tuple[float, int, int, int, int, Any]] = []
        #: Per-pusher monotonic counters (the shard-local key source).
        self._rank_seq: dict[int, int] = {}
        self._processed = 0
        self._max_events = max_events
        self.now = 0.0

    def push(
        self,
        time: float,
        kind: int,
        rank: int,
        payload: Any = None,
        pusher: int | None = None,
    ) -> None:
        """Schedule an event; scheduling into the past is an error.

        ``pusher`` defaults to the destination rank (self-scheduled
        EXEC events); message sends pass the sending rank.
        """
        if time < self.now:
            raise SimulationError(
                f"event scheduled at {time} before current time {self.now}"
            )
        if pusher is None:
            pusher = rank
        rs = self._rank_seq
        seq = rs.get(pusher, 0)
        rs[pusher] = seq + 1
        heapq.heappush(self._heap, (time, pusher, seq, kind, rank, payload))

    def push_entry(self, entry: tuple[float, int, int, int, int, Any]) -> None:
        """Insert a pre-keyed entry (cross-shard staging path).

        The entry's ``(pusher, seq)`` was assigned by the pusher's home
        queue, so no counter is consumed here; time validation still
        applies.
        """
        if entry[0] < self.now:
            raise SimulationError(
                f"event scheduled at {entry[0]} before current time {self.now}"
            )
        heapq.heappush(self._heap, entry)

    def pop(self) -> tuple[float, int, int, Any]:
        """Remove and return the next ``(time, kind, rank, payload)``.

        Advances :attr:`now`; enforces the event budget.
        """
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        time, _pusher, _seq, kind, rank, payload = heapq.heappop(self._heap)
        self.now = time
        self._processed += 1
        if self._processed > self._max_events:
            raise SimulationError(
                f"simulation exceeded {self._max_events} events "
                "(livelock or runaway configuration?)"
            )
        return time, kind, rank, payload

    def head_key(self) -> tuple[float, int, int] | None:
        """``(time, pusher, seq)`` of the next event, or None if empty."""
        if not self._heap:
            return None
        head = self._heap[0]
        return (head[0], head[1], head[2])

    @property
    def empty(self) -> bool:
        return not self._heap

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events delivered so far."""
        return self._processed

    def clear(self) -> int:
        """Drop all pending events (post-termination); return the count."""
        n = len(self._heap)
        self._heap.clear()
        return n
