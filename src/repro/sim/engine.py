"""Event queue and loop primitives of the cluster simulator.

Two event kinds exist:

* ``EVT_EXEC`` — a rank reached a poll boundary (end of a work
  quantum) and runs its scheduler step;
* ``EVT_MSG`` — a message arrives at a rank.

Events at equal timestamps are delivered in insertion order (a
monotonic sequence number breaks ties), which keeps runs perfectly
deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any

from repro.errors import SimulationError

__all__ = ["EVT_EXEC", "EVT_MSG", "EventQueue"]

EVT_EXEC = 0
EVT_MSG = 1

#: Default runaway guard for one simulation.
DEFAULT_MAX_EVENTS = 100_000_000


class EventQueue:
    """Priority queue of timestamped simulation events.

    Entries are ``(time, seq, kind, rank, payload)`` tuples; ``seq``
    makes the ordering total and FIFO among equal timestamps.
    """

    __slots__ = ("_heap", "_seq", "_processed", "_max_events", "now")

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS):
        if max_events < 1:
            raise SimulationError(f"max_events must be >= 1, got {max_events}")
        self._heap: list[tuple[float, int, int, int, Any]] = []
        self._seq = 0
        self._processed = 0
        self._max_events = max_events
        self.now = 0.0

    def push(self, time: float, kind: int, rank: int, payload: Any = None) -> None:
        """Schedule an event; scheduling into the past is an error."""
        if time < self.now:
            raise SimulationError(
                f"event scheduled at {time} before current time {self.now}"
            )
        heapq.heappush(self._heap, (time, self._seq, kind, rank, payload))
        self._seq += 1

    def pop(self) -> tuple[float, int, int, Any]:
        """Remove and return the next ``(time, kind, rank, payload)``.

        Advances :attr:`now`; enforces the event budget.
        """
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        time, _seq, kind, rank, payload = heapq.heappop(self._heap)
        self.now = time
        self._processed += 1
        if self._processed > self._max_events:
            raise SimulationError(
                f"simulation exceeded {self._max_events} events "
                "(livelock or runaway configuration?)"
            )
        return time, kind, rank, payload

    @property
    def empty(self) -> bool:
        return not self._heap

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events delivered so far."""
        return self._processed

    def clear(self) -> int:
        """Drop all pending events (post-termination); return the count."""
        n = len(self._heap)
        self._heap.clear()
        return n
