"""Sharded conservative-lookahead simulation engine.

The single-queue :class:`~repro.sim.cluster.Cluster` processes every
event of the job through one heap and one shared latency-row cache; at
1024+ ranks the cache (128 rows) thrashes and each message send pays an
O(N) row rebuild — the profile shows 73% of wall time there at 512
ranks.  :class:`ShardedCluster` splits the rank space into contiguous,
node-aligned *shards*, each with its own event heap, its own
termination-detector slice, and its own latency-row cache sized to the
shard's senders, so every send is a cache hit regardless of job scale.

Correctness rests on the classic conservative-synchronisation argument
(Chandy–Misra–Bryant), specialised to our fixed latency models:

* every cross-shard message is cross-node (shards are node-aligned),
  so it pays at least ``L = latency_model.min_remote_latency()`` of
  wire time;
* therefore, if ``W`` is the earliest pending event time anywhere, no
  shard can receive a new message before ``W + L`` — each shard may
  process all its events with ``time < W + L`` *locally*, in any
  inter-shard interleaving, before the next exchange.

Bit-identity with the sequential engine (not just statistical
equivalence) follows from the event key design in
:mod:`repro.sim.engine`: events are ordered by ``(time, pusher,
per-pusher seq)``, a globally unique key computable by the pusher's
home shard alone.  Both engines deliver each rank's events in exactly
the same order, so every float is computed by the same operations in
the same sequence.  ``tests/sim/test_sharded.py`` asserts this across
the whole selector × steal-policy registry, byte-for-byte on the
canonical trace encoding.

Termination needs one refinement: Dijkstra-ring termination fires at
rank 0 and atomically drops every in-flight message, so the triggering
event must be processed when it is the *global* minimum and no shard
has advanced past it.  The only events that can trigger it
("candidates") are a token arriving at rank 0 and an EXEC at rank 0
with an empty stack; shard 0 stops its window early at a candidate and
reports its key, which caps how far the other shards may advance.
When the candidate becomes the global minimum it is processed alone.

Three window-level optimisations ride on that argument (each behind a
module flag so the differential suite can exercise every combination):

* **Burst execution** (:data:`USE_BURST`).  The event heap is split
  into a message heap and an EXEC heap.  When the popped event is an
  EXEC for a plain worker with no pending requests and a non-empty
  stack, the shard lets the worker run *chained* compute quanta
  (:meth:`~repro.sim.worker.Worker.run_quanta`) up to the earliest of
  the window horizon, the candidate cap and the head of either heap.
  Because the burst stops at the first instant any other local event
  exists, it is literally the sequential event order — idle
  transitions, steal serving and every send stay on the ordered path,
  and the next EXEC is materialised back into the heap with the exact
  seq the sequential engine would have assigned (one seq per quantum;
  a pure-compute quantum pushes nothing else).

* **Window extension** (:data:`USE_WINDOW_EXTENSION`) — the sound
  replacement for naive "grant k windows per barrier".  No shard can
  *receive* before the earliest possible *send* plus ``L``.  A shard's
  earliest send is bounded below by ``E = min(message-heap head; per
  EXEC entry: t if the worker has pending requests or serves lifeline
  work, else t + stack_size * per_node_time)`` — a worker drains its
  stack before it can go idle and emit a steal request, and a burst
  emits nothing at all.  The window may therefore run to
  ``E + L >= gmin + L`` instead of ``gmin + L``; during pure-compute
  phases this collapses thousands of barrier rounds into one.

* **Probe overlap** (:data:`USE_OVERLAP`, multiprocess only).  The
  old protocol serialised every round: probe shard 0 for a candidate
  key, wait, then window everyone else with that cap.  A candidate at
  shard 0 can only arise from shard 0's *own* state (cross-shard
  traffic is next-round by CMB), so when ``min(shard 0's send bound,
  arrival times of in-flight traffic to shard 0) >= horizon`` no
  candidate can appear inside the window and all children step in one
  fused round-trip.  Shard 0 still runs with candidate stops as a
  self-check; a candidate inside an overlapped window raises.

``shard_workers > 1`` distributes shards over OS processes.  Staged
outboxes cross the process boundary as packed numpy blobs
(:mod:`repro.sim.shardcodec`, flag :data:`WIRE_CODEC`) that the
coordinator routes opaquely by ``(target, min_key, count)`` metadata;
``shard_transport="shm"`` moves the blob bytes through
``multiprocessing.shared_memory`` scratch segments (single-writer by
the request-reply discipline) with a clean per-payload and
per-platform fallback to pipes.  The coordinator batches absorb +
window + head-report into one ``step`` round-trip, skips children
whose shards have nothing under the horizon, and accounts in-flight
blobs dropped by a termination broadcast exactly like shard-local
drops.  (The :mod:`repro.exec` ``WorkerPool`` is not reused here: its
executor does not pin tasks to processes, and the barrier loop needs
resident per-process shard state.)
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import time
from bisect import bisect_right

from repro.core.config import WorkStealingConfig
from repro.core.tracing import TraceRecorder
from repro.errors import ConfigurationError, SimulationError, TerminationError
from repro.net.allocation import aligned_block_bounds, build_placement
from repro.net.pairwise import PairwiseMetric
from repro.protocol.factory import build_plan, make_worker
from repro.sim.clock import ClockSkewModel
from repro.sim.cluster import SimOutcome
from repro.sim.engine import DEFAULT_MAX_EVENTS, EVT_EXEC, EVT_MSG
from repro.sim.messages import TAG_STEAL_RESPONSE, TAG_TOKEN, Finish, Token
from repro.sim.shardcodec import decode_entries, encode_entries, min_entry_key
from repro.sim.termination import DijkstraTermination, TokenAction
from repro.sim.worker import Worker, WorkerStatus
from repro.trace.events import EV_TOKEN, EventRecorder
from repro.uts.tree import TreeGenerator

__all__ = [
    "ShardedCluster",
    "auto_shards",
    "auto_shard_workers",
    "shard_bounds",
]

_INF = float("inf")

#: Fuse chained pure-compute quanta into one worker call (layer 4).
USE_BURST = True
#: Extend windows to the earliest-send bound + lookahead (layer 2).
USE_WINDOW_EXTENSION = True
#: Overlap the shard-0 candidate probe with the other windows (layer 2,
#: multiprocess protocol only).
USE_OVERLAP = True
#: Ship cross-shard outboxes as packed numpy blobs instead of pickled
#: entry lists (layer 1, multiprocess transport only).
WIRE_CODEC = True

#: Scratch bytes per direction per child for ``shard_transport="shm"``.
#: Blobs that do not fit ride the pipe inline instead.
SHM_SEGMENT_SIZE = 1 << 20

#: ``step`` cap sentinel asking shard 0 to probe for a candidate key.
_PROBE = "probe"


def auto_shards(nranks: int) -> int:
    """Default shard count: one shard per ~512 ranks, capped at 16."""
    return max(1, min(16, nranks // 512))


def auto_shard_workers() -> int:
    """Default process count for ``shard_workers=0``: one per core.

    The coordinator round-trips once or twice per lookahead window, so
    oversubscribing cores only adds scheduling noise; the effective
    count is additionally capped at the shard count by
    :class:`ShardedCluster`.
    """
    return max(1, os.cpu_count() or 1)


def shard_bounds(
    nranks: int, nshards: int, rank_nodes
) -> tuple[list[int], bool]:
    """Contiguous rank-block boundaries, snapped to node boundaries.

    Returns ``(bounds, aligned)`` with ``bounds[s]..bounds[s+1]`` the
    rank range of shard ``s``.  Each ideal cut ``s * nranks / nshards``
    is moved down to the nearest index where the hosting node changes,
    so no compute node spans two shards and cross-shard traffic is
    guaranteed cross-node.  If a cut cannot be node-aligned (e.g. a
    randomised allocation interleaves nodes arbitrarily), the ideal
    cuts are kept and ``aligned`` is False — the caller must then use
    the narrower any-pair latency bound as its lookahead.

    The partition itself is :func:`repro.net.allocation.
    aligned_block_bounds` — the same geometry the protocol layer's
    locality regions use, kept in one place so "one region" and "one
    shard" can mean the same rank block.
    """
    return aligned_block_bounds(nranks, nshards, rank_nodes)


class _WorkerSnapshot:
    """Picklable stand-in for a :class:`Worker` shipped across processes.

    Carries exactly the attributes :class:`SimOutcome` consumers
    (``repro.ws.results``, the cluster post-checks) read from workers.
    """

    __slots__ = (
        "rank",
        "status",
        "sessions",
        "nodes_processed",
        "steal_requests_sent",
        "failed_steals",
        "successful_steals",
        "requests_served",
        "requests_denied",
        "requests_forwarded",
        "forwards_served",
        "chunks_sent",
        "nodes_sent",
        "chunks_received",
        "nodes_received",
        "service_time",
        "finish_time",
        "search_time",
        "stack_empty",
    )

    def __init__(self, worker: Worker):
        self.rank = worker.rank
        self.status = worker.status
        self.sessions = worker.sessions
        self.nodes_processed = worker.nodes_processed
        self.steal_requests_sent = worker.steal_requests_sent
        self.failed_steals = worker.failed_steals
        self.successful_steals = worker.successful_steals
        self.requests_served = worker.requests_served
        self.requests_denied = worker.requests_denied
        self.requests_forwarded = worker.requests_forwarded
        self.forwards_served = worker.forwards_served
        self.chunks_sent = worker.chunks_sent
        self.nodes_sent = worker.nodes_sent
        self.chunks_received = worker.chunks_received
        self.nodes_received = worker.nodes_received
        self.service_time = worker.service_time
        self.finish_time = worker.finish_time
        self.search_time = worker.search_time
        self.stack_empty = worker.stack.is_empty

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)


class _Shard:
    """One rank block: local heaps, workers, detector slice, transport.

    Implements the worker :class:`~repro.sim.worker.Transport`
    protocol.  Sends to local ranks push straight into the local
    message heap; cross-shard sends are staged, pre-keyed, into
    per-target outboxes and merged at the next exchange — heap order
    is fully determined by the globally unique keys, so merge order
    cannot matter.

    Events live in two heaps: ``_msg_heap`` (message deliveries,
    including everything absorbed from other shards) and ``_exec_heap``
    (each RUNNING rank's single outstanding EXEC).  The split is what
    makes burst eligibility and the earliest-send bound O(running
    ranks) instead of O(heap) — comparisons across the two heads
    reproduce the single-heap order exactly because event keys are
    globally unique (the tuple compare never reaches the kind field).
    """

    def __init__(
        self,
        index: int,
        bounds: list[int],
        config: WorkStealingConfig,
        placement,
        clock: ClockSkewModel,
        generator: TreeGenerator,
        max_events: int,
        recorders: list[TraceRecorder] | None,
        event_recorders: list[EventRecorder] | None,
    ):
        self.index = index
        self.bounds = bounds
        self.lo = bounds[index]
        self.hi = bounds[index + 1]
        self.nranks = config.nranks
        self.config = config
        self.placement = placement
        self.clock = clock
        self.detector = DijkstraTermination(config.nranks)

        # The structural perf win: a shard-private latency metric whose
        # row cache covers every local sender (plus row 0 for the
        # finish broadcast), so sends never rebuild a row after warmup.
        # Memory: (hi - lo + 1) rows of N float64 per shard.
        model = config.latency_model
        self._latency = PairwiseMetric(
            config.nranks,
            model.row_builder(placement.topology, placement.rank_nodes),
            name=f"latency/shard{index}",
            cache_rows=self.hi - self.lo + 1,
        )
        self._latency_value = self._latency.value

        self._msg_heap: list = []
        self._exec_heap: list = []
        self._rank_seq: dict[int, int] = {}
        self.now = 0.0
        self.processed = 0
        self._max_events = max_events
        self._outbox: list[list] = [[] for _ in range(len(bounds) - 1)]
        self._finishing = False
        self.messages_dropped = 0
        self.nodes_total = 0
        self._node_budget = config.node_cap
        #: Set by ``_local_finish`` (shard 0 only): ``(when, c0)``.
        self.finish_info: tuple[float, int] | None = None
        self._transfer_time_per_node = config.transfer_time_per_node
        self._per_node_time = config.per_node_time

        self.recorders = recorders
        self.event_recorders = event_recorders
        # Same factory (and thus the same ProtocolPlan values) as the
        # sequential engine — the construction half of bit-identity.
        plan = build_plan(config, placement)
        self.workers: list[Worker] = [
            make_worker(
                rank,
                config,
                placement,
                plan,
                generator,
                transport=self,
                trace=recorders[rank] if recorders else None,
                events=event_recorders[rank] if event_recorders else None,
            )
            for rank in range(self.lo, self.hi)
        ]

    # ------------------------------------------------------------------
    # Transport interface (used by workers)
    # ------------------------------------------------------------------

    def send(self, src: int, dst: int, payload: object, when: float) -> None:
        if self._finishing:
            self.messages_dropped += 1
            return
        wire = self._latency_value(src, dst)
        if (
            getattr(payload, "tag", None) == TAG_STEAL_RESPONSE
            and payload.chunks is not None
        ):
            wire += payload.nodes * self._transfer_time_per_node
        arrival = when + wire
        rs = self._rank_seq
        seq = rs.get(src, 0)
        rs[src] = seq + 1
        entry = (arrival, src, seq, EVT_MSG, dst, payload)
        if self.lo <= dst < self.hi:
            if arrival < self.now:
                raise SimulationError(
                    f"event scheduled at {arrival} before current time "
                    f"{self.now}"
                )
            heapq.heappush(self._msg_heap, entry)
        else:
            self._outbox[bisect_right(self.bounds, dst) - 1].append(entry)

    def schedule_exec(self, rank: int, when: float) -> None:
        if when < self.now:
            raise SimulationError(
                f"event scheduled at {when} before current time {self.now}"
            )
        rs = self._rank_seq
        seq = rs.get(rank, 0)
        rs[rank] = seq + 1
        heapq.heappush(
            self._exec_heap, (when, rank, seq, EVT_EXEC, rank, None)
        )

    def rank_became_idle(self, rank: int, when: float) -> None:
        self._dispatch_token_action(rank, self.detector.rank_idle(rank), when)

    def work_sent(self, rank: int) -> None:
        self.detector.work_sent(rank)

    def nodes_executed(self, n: int) -> None:
        self.nodes_total += n
        if self.nodes_total > self._node_budget:
            raise SimulationError(
                f"run exceeded node cap {self._node_budget}"
            )

    def local_time(self, rank: int, true_time: float) -> float:
        return self.clock.local_time(rank, true_time)

    # ------------------------------------------------------------------
    # Coordinator interface
    # ------------------------------------------------------------------

    def start_workers(self) -> None:
        for worker in self.workers:
            worker.start(0.0)

    def absorb(self, entries: list) -> None:
        # Cross-shard entries are always messages (EXECs are local).
        heap = self._msg_heap
        push = heapq.heappush
        for entry in entries:
            push(heap, entry)

    def take_outboxes(self, encode: bool) -> list:
        """Drain staged cross-shard traffic as ``(target, data,
        min_key, count)`` — ``data`` is a codec blob when ``encode``
        else the raw entry list; the metadata lets the coordinator
        route and bound without ever decoding."""
        out = []
        for target, box in enumerate(self._outbox):
            if box:
                key = min_entry_key(box)
                out.append(
                    (
                        target,
                        encode_entries(box) if encode else box,
                        key,
                        len(box),
                    )
                )
                self._outbox[target] = []
        return out

    def _head(self):
        mh = self._msg_heap
        eh = self._exec_heap
        if not mh:
            return eh[0] if eh else None
        if not eh or mh[0] < eh[0]:
            return mh[0]
        return eh[0]

    def head_key(self) -> tuple[float, int, int] | None:
        head = self._head()
        if head is None:
            return None
        return (head[0], head[1], head[2])

    def head_is_candidate(self) -> bool:
        """Whether the head event could trigger global termination.

        Only meaningful on shard 0: a token arriving at rank 0, or an
        EXEC at rank 0 whose stack is empty at event start (serving
        pending steals can never empty a non-empty stack — thieves only
        take whole bottom chunks, the private top chunk stays — so
        head-time emptiness equals idle-decision emptiness).
        """
        head = self._head()
        if head is None or head[4] != 0:
            return False
        if head[3] == EVT_EXEC:
            return not self.workers[0].stack._chunks
        return getattr(head[5], "tag", None) == TAG_TOKEN

    def send_bound(self) -> float:
        """Earliest true time at which this shard could emit any send.

        Two sources of sends exist: delivering a pending message (a
        steal request answered at arrival, a token forwarded, work
        received triggering lifeline pushes) — bounded by the message
        heap head — and a rank's EXEC chain.  A plain RUNNING worker
        with no pending requests cannot send before it drains its
        stack and goes idle, which takes at least ``stack_size *
        per_node_time`` from its next EXEC (children only add nodes, so
        this is a lower bound); a worker with queued requests, or a
        lifeline worker (whose serve hook pushes spontaneously), may
        send at the EXEC itself.  No send can therefore happen before
        the returned bound, so no *arrival* anywhere can happen before
        it plus the cross-shard lookahead — the window-extension
        horizon.  Always ``>= head_key().time``.
        """
        mh = self._msg_heap
        bound = mh[0][0] if mh else _INF
        pnt = self._per_node_time
        lo = self.lo
        workers = self.workers
        for entry in self._exec_heap:
            t = entry[0]
            if t >= bound:
                continue
            w = workers[entry[1] - lo]
            if w.pending or not w._plain_serve:
                b = t
            else:
                b = t + w.stack.size * pnt
            if b < bound:
                bound = b
        return bound

    def send_bound_quick(self) -> float:
        """Message-heap half of :meth:`send_bound` (cheap gate)."""
        mh = self._msg_heap
        return mh[0][0] if mh else _INF

    def process_one(self) -> None:
        """Pop and dispatch exactly the head event (the candidate path)."""
        mh = self._msg_heap
        eh = self._exec_heap
        if mh and (not eh or mh[0] < eh[0]):
            self._dispatch(heapq.heappop(mh))
        else:
            self._dispatch(heapq.heappop(eh))

    def process_window(
        self,
        horizon: float,
        key_cap: tuple[float, int, int] | None = None,
        stop_candidates: bool = False,
    ) -> tuple[float, int, int] | None:
        """Process local events with ``time < horizon`` in key order.

        ``key_cap`` additionally stops at the first event with key >=
        cap (the candidate key reported by shard 0).  With
        ``stop_candidates`` (shard 0), stops *before* a candidate and
        returns its key.  Newly generated local events that fall inside
        the window are picked up in the same pass.

        With :data:`USE_BURST`, an EXEC for a plain no-pending worker
        with work runs chained quanta up to the earliest of the
        horizon, the cap and either heap head — below that stop there
        is provably no other local event, so the burst *is* the
        sequential order (see the worker's ``run_quanta``).  Each
        quantum consumes exactly one event and one seq of the rank
        (the rescheduled EXEC), which the epilogue accounts before
        materialising the next EXEC; a burst ending with an empty
        stack leaves the idle transition as an ordered heap event.
        """
        mheap = self._msg_heap
        eheap = self._exec_heap
        pop = heapq.heappop
        push = heapq.heappush
        workers = self.workers
        lo = self.lo
        detector = self.detector
        event_recorders = self.event_recorders
        max_events = self._max_events
        processed = self.processed
        use_burst = USE_BURST
        cap_t = key_cap[0] if key_cap is not None else None
        rs = self._rank_seq
        try:
            while mheap or eheap:
                if not eheap or (mheap and mheap[0] < eheap[0]):
                    head = mheap[0]
                    heap = mheap
                else:
                    head = eheap[0]
                    heap = eheap
                t = head[0]
                if t >= horizon:
                    break
                if key_cap is not None and (
                    (t, head[1], head[2]) >= key_cap
                ):
                    break
                kind = head[3]
                rank = head[4]
                if stop_candidates and rank == 0:
                    if (
                        kind == EVT_EXEC
                        and not workers[0].stack._chunks
                    ) or (
                        kind == EVT_MSG
                        and getattr(head[5], "tag", None) == TAG_TOKEN
                    ):
                        return (t, head[1], head[2])
                pop(heap)
                self.now = t
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events "
                        "(livelock or runaway configuration?)"
                    )
                payload = head[5]
                if kind == EVT_EXEC:
                    worker = workers[rank - lo]
                    if (
                        use_burst
                        and worker._plain_serve
                        and not worker.pending
                        and worker.stack._chunks
                    ):
                        t_stop = horizon
                        if cap_t is not None and cap_t < t_stop:
                            t_stop = cap_t
                        if mheap and mheap[0][0] < t_stop:
                            t_stop = mheap[0][0]
                        if eheap and eheap[0][0] < t_stop:
                            t_stop = eheap[0][0]
                        if t_stop > t:
                            t_end, nq = worker.run_quanta(t, t_stop)
                            self.now = t_end
                            processed += nq - 1
                            if processed > max_events:
                                raise SimulationError(
                                    f"simulation exceeded {max_events} "
                                    "events (livelock or runaway "
                                    "configuration?)"
                                )
                            seq0 = rs.get(rank, 0)
                            rs[rank] = seq0 + nq
                            push(
                                eheap,
                                (
                                    t_end,
                                    rank,
                                    seq0 + nq - 1,
                                    EVT_EXEC,
                                    rank,
                                    None,
                                ),
                            )
                            continue
                    worker.on_exec(t)
                elif payload.tag == TAG_TOKEN:
                    worker = workers[rank - lo]
                    if event_recorders is not None:
                        event_recorders[rank].append(
                            t, EV_TOKEN, payload.color
                        )
                    action = detector.token_arrived(
                        rank,
                        payload.color,
                        worker.status is WorkerStatus.WAITING,
                    )
                    self._dispatch_token_action(rank, action, t)
                else:
                    workers[rank - lo].on_message(t, payload)
        finally:
            self.processed = processed
        return None

    def _dispatch(self, entry) -> None:
        """Deliver one popped event (the non-inlined single-event path)."""
        t = entry[0]
        kind = entry[3]
        rank = entry[4]
        payload = entry[5]
        self.now = t
        self.processed += 1
        if self.processed > self._max_events:
            raise SimulationError(
                f"simulation exceeded {self._max_events} events "
                "(livelock or runaway configuration?)"
            )
        if kind == EVT_EXEC:
            self.workers[rank - self.lo].on_exec(t)
        elif payload.tag == TAG_TOKEN:
            worker = self.workers[rank - self.lo]
            if self.event_recorders is not None:
                self.event_recorders[rank].append(t, EV_TOKEN, payload.color)
            action = self.detector.token_arrived(
                rank, payload.color, worker.status is WorkerStatus.WAITING
            )
            self._dispatch_token_action(rank, action, t)
        else:
            self.workers[rank - self.lo].on_message(t, payload)

    # ------------------------------------------------------------------
    # Termination plumbing
    # ------------------------------------------------------------------

    def _dispatch_token_action(
        self, src: int, action: TokenAction, when: float
    ) -> None:
        if action.terminated:
            if self.index != 0:
                raise TerminationError(
                    "termination detected off shard 0 (protocol bug)"
                )
            self._local_finish(when)
        elif action.sends:
            assert action.send_color is not None and action.send_to is not None
            self.send(src, action.send_to, Token(action.send_color), when)

    def _local_finish(self, when: float) -> None:
        """Shard 0 proved termination mid-event: finish locally, flag
        the coordinator to finish the other shards before they advance.

        Mirrors ``Cluster._broadcast_finish``: every pending event —
        including messages staged this very event — is dropped, rank 0
        gets Finish synchronously (uncounted, like the sequential
        direct call), and Finish events for the other ranks are keyed
        with pusher 0 continuing its counter, exactly the sequence the
        sequential engine's pushes produce.
        """
        dropped = len(self._msg_heap) + len(self._exec_heap)
        self._msg_heap.clear()
        self._exec_heap.clear()
        for box in self._outbox:
            dropped += len(box)
            box.clear()
        self.messages_dropped += dropped
        self._finishing = True
        c0 = self._rank_seq.get(0, 0)
        self.finish_info = (when, c0)
        self.workers[0].on_message(when, Finish())
        row0 = self._latency.row(0)
        for rank in range(max(self.lo, 1), self.hi):
            heapq.heappush(
                self._msg_heap,
                (when + row0[rank], 0, c0 + rank - 1, EVT_MSG, rank, Finish()),
            )
        self._rank_seq[0] = c0 + (self.nranks - 1)

    def finish_remote(self, when: float, c0: int) -> None:
        """Another shard's view of the finish broadcast."""
        dropped = len(self._msg_heap) + len(self._exec_heap)
        self._msg_heap.clear()
        self._exec_heap.clear()
        for box in self._outbox:
            dropped += len(box)
            box.clear()
        self.messages_dropped += dropped
        self._finishing = True
        row0 = self._latency.row(0)
        for rank in range(self.lo, self.hi):
            heapq.heappush(
                self._msg_heap,
                (when + row0[rank], 0, c0 + rank - 1, EVT_MSG, rank, Finish()),
            )

    # ------------------------------------------------------------------
    # Post-run
    # ------------------------------------------------------------------

    def check_done(self) -> None:
        for worker in self.workers:
            if worker.status is not WorkerStatus.DONE:
                raise TerminationError(
                    f"rank {worker.rank} never received Finish"
                )
            if not worker.stack.is_empty:
                raise TerminationError(
                    f"rank {worker.rank} terminated holding "
                    f"{worker.stack.size} nodes"
                )

    def snapshots(self) -> list[_WorkerSnapshot]:
        return [_WorkerSnapshot(w) for w in self.workers]


class ShardedCluster:
    """Drop-in for :class:`~repro.sim.cluster.Cluster` running the
    sharded engine; ``run()`` returns a bit-identical
    :class:`SimOutcome`.

    After a ``shard_workers > 1`` run, :attr:`parallel_stats` holds the
    transport/protocol accounting (rounds, round-trips, coordinator
    wait vs per-child busy time, bytes shipped) that
    ``repro.perf.sharded --parallel`` turns into the BENCH_5 Amdahl
    split.
    """

    def __init__(self, config: WorkStealingConfig, max_events: int | None = None):
        if config.nic_service_time > 0:
            raise ConfigurationError(
                "sharded engine requires nic_service_time=0 "
                "(NIC contention is a global order-sensitive queue)"
            )
        self.config = config
        assert not isinstance(config.allocation, str)
        self.placement = build_placement(
            config.nranks,
            config.allocation,
            latency_model=config.latency_model,
            topology_factory=config.topology_factory,
        )
        nshards = config.shards if config.shards > 0 else auto_shards(config.nranks)
        self.bounds, self.aligned = shard_bounds(
            config.nranks, nshards, self.placement.rank_nodes
        )
        self.nshards = len(self.bounds) - 1
        model = config.latency_model
        self.lookahead = (
            model.min_remote_latency()
            if self.aligned
            else model.min_any_latency()
        )
        if self.lookahead <= 0.0:
            raise ConfigurationError(
                f"latency model {model.name!r} reports no positive "
                "lookahead window; the sharded engine needs a lower "
                "bound > 0 on cross-shard latency "
                "(implement min_remote_latency/min_any_latency)"
            )
        self._max_events = (
            max_events if max_events is not None else DEFAULT_MAX_EVENTS
        )
        if self._max_events < 1:
            raise SimulationError(
                f"max_events must be >= 1, got {self._max_events}"
            )
        self.clock = ClockSkewModel(
            config.nranks, std=config.clock_skew_std, seed=config.seed
        )
        self.recorders = (
            [TraceRecorder() for _ in range(config.nranks)]
            if config.trace
            else None
        )
        self.event_recorders = (
            [
                EventRecorder(config.event_trace_capacity)
                for _ in range(config.nranks)
            ]
            if config.event_trace
            else None
        )
        requested = (
            config.shard_workers
            if config.shard_workers > 0
            else auto_shard_workers()
        )
        self._nworkers = max(1, min(requested, self.nshards))
        #: Transport/protocol accounting of the last multiprocess run.
        self.parallel_stats: dict | None = None

    # ------------------------------------------------------------------

    def run(self) -> SimOutcome:
        if self._nworkers > 1:
            return self._run_multiprocess()
        return self._run_inprocess()

    # ------------------------------------------------------------------
    # In-process driver
    # ------------------------------------------------------------------

    def _run_inprocess(self) -> SimOutcome:
        config = self.config
        assert not isinstance(config.rng_backend, str)
        generator = TreeGenerator(config.tree, config.rng_backend)
        shards = [
            _Shard(
                i,
                self.bounds,
                config,
                self.placement,
                self.clock,
                generator,
                self._max_events,
                self.recorders,
                self.event_recorders,
            )
            for i in range(self.nshards)
        ]
        for shard in shards:  # shard order == rank order
            shard.start_workers()
        self._exchange(shards)

        s0 = shards[0]
        rest = shards[1:]
        lookahead = self.lookahead
        max_events = self._max_events
        node_budget = config.node_cap
        finished = False
        while True:
            gmin = None
            for shard in shards:
                key = shard.head_key()
                if key is not None and (gmin is None or key < gmin):
                    gmin = key
            if gmin is None:
                break
            if s0.head_key() == gmin and s0.head_is_candidate():
                s0.process_one()
                if s0.finish_info is not None and not finished:
                    finished = True
                    for shard in rest:
                        shard.finish_remote(*s0.finish_info)
                self._exchange(shards)
                continue
            horizon = gmin[0] + lookahead
            if USE_WINDOW_EXTENSION:
                # Cheap gate first: the full bound needs an exec-heap
                # scan, worthless when a message already pins E = gmin.
                quick = min(s.send_bound_quick() for s in shards)
                if quick > gmin[0]:
                    bound = min(s.send_bound() for s in shards)
                    if bound > gmin[0]:
                        horizon = bound + lookahead
            k0 = s0.process_window(horizon, stop_candidates=True)
            for shard in rest:
                shard.process_window(horizon, key_cap=k0)
            self._exchange(shards)
            if sum(s.processed for s in shards) > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events "
                    "(livelock or runaway configuration?)"
                )
            if sum(s.nodes_total for s in shards) > node_budget:
                raise SimulationError(
                    f"run exceeded node cap {node_budget}"
                )

        workers: list[Worker] = []
        for shard in shards:
            workers.extend(shard.workers)
        return self._finalize(
            workers=workers,
            events_processed=sum(s.processed for s in shards),
            messages_dropped=sum(s.messages_dropped for s in shards),
            probes_started=s0.detector.probes_started,
            terminated=s0.detector.terminated,
            recorders=self.recorders,
            event_recorders=self.event_recorders,
        )

    @staticmethod
    def _exchange(shards: list[_Shard]) -> None:
        push = heapq.heappush
        for shard in shards:
            boxes = shard._outbox
            for target, box in enumerate(boxes):
                if box:
                    heap = shards[target]._msg_heap
                    for entry in box:
                        push(heap, entry)
                    box.clear()

    # ------------------------------------------------------------------
    # Multi-process driver
    # ------------------------------------------------------------------

    def _run_multiprocess(self) -> SimOutcome:
        nworkers = self._nworkers
        nshards = self.nshards
        # Contiguous shard blocks per child; child 0 always owns shard 0.
        assignment: list[list[int]] = [[] for _ in range(nworkers)]
        for s in range(nshards):
            assignment[(s * nworkers) // nshards].append(s)
        owner = {}
        for child, shard_list in enumerate(assignment):
            for s in shard_list:
                owner[s] = child

        t_wall0 = time.perf_counter()
        lookahead = self.lookahead
        use_overlap = USE_OVERLAP
        use_extension = USE_WINDOW_EXTENSION

        with _ChildPool(
            self.config, self.bounds, assignment, self._max_events
        ) as pool:
            channels = pool.channels

            #: Per target shard: ``(min_key, count, data)`` blobs taken
            #: from some child but not yet delivered.  ``data`` stays
            #: opaque (codec blob or raw entry list).
            inflight: list[list] = [[] for _ in range(nshards)]
            heads: dict[int, tuple | None] = {}
            send_bounds = [_INF] * nworkers
            processed_by = [0] * nworkers
            nodes_by = [0] * nworkers
            cand0 = False
            cand_bound = _INF
            dropped_inflight = 0
            finished = False
            rounds = 0
            trips = 0
            skipped_steps = 0

            def ingest(child: int, reply: dict) -> None:
                nonlocal cand0, cand_bound
                heads.update(reply["heads"])
                send_bounds[child] = reply["send_bound"]
                processed_by[child] = reply["processed"]
                nodes_by[child] = reply["nodes"]
                if child == 0:
                    cand0 = reply["cand"]
                    cb = reply["cand_bound"]
                    cand_bound = _INF if cb is None else cb
                for target, data, key, count in reply["out"]:
                    inflight[target].append((key, count, data))

            for ch in channels:
                ch.send(("start",))
            for child, ch in enumerate(channels):
                ingest(child, ch.recv())
            trips += 1

            while True:
                gmin = None
                for key in heads.values():
                    if key is not None and (gmin is None or key < gmin):
                        gmin = key
                inflight_min = _INF
                cand_in = _INF
                for target, box in enumerate(inflight):
                    for key, _count, _data in box:
                        if gmin is None or key < gmin:
                            gmin = key
                        if key[0] < inflight_min:
                            inflight_min = key[0]
                        if target == 0 and key[0] < cand_in:
                            cand_in = key[0]
                if gmin is None:
                    break
                rounds += 1

                if cand0 and heads.get(0) == gmin:
                    # Candidate at the global minimum: shard 0 alone
                    # processes it (keys are globally unique, so head
                    # equality proves nothing smaller is in flight).
                    channels[0].send(("one",))
                    reply = channels[0].recv()
                    ingest(0, reply)
                    trips += 1
                    if reply["finish"] is not None and not finished:
                        finished = True
                        when, c0 = reply["finish"]
                        others = list(range(1, nworkers))
                        for child in others:
                            channels[child].send(("finish", when, c0))
                        for child in others:
                            ingest(child, channels[child].recv())
                        if others:
                            trips += 1
                        # The broadcast atomically drops in-flight
                        # traffic too; account it exactly like the
                        # shard-local drops for sequential parity.
                        for box in inflight:
                            for _key, count, _data in box:
                                dropped_inflight += count
                            box.clear()
                    continue

                horizon = gmin[0] + lookahead
                if use_extension:
                    bound = inflight_min
                    for b in send_bounds:
                        if b < bound:
                            bound = b
                    if bound > gmin[0]:
                        horizon = bound + lookahead
                # A candidate can only arise inside this window from
                # shard 0's own state or traffic delivered to it this
                # round (cross-shard effects are next-round by CMB);
                # both are lower-bounded here.
                overlap = use_overlap and min(cand_bound, cand_in) >= horizon

                batches: list[list] = [[] for _ in range(nworkers)]
                for s in range(nshards):
                    box = inflight[s]
                    if box:
                        child = owner[s]
                        for _key, _count, data in box:
                            batches[child].append((s, data))
                        inflight[s] = []

                def needs_step(child: int) -> bool:
                    if batches[child]:
                        return True
                    for s in assignment[child]:
                        key = heads.get(s)
                        if key is not None and key[0] < horizon:
                            return True
                    return False

                if overlap:
                    targets = [
                        c for c in range(nworkers) if needs_step(c)
                    ]
                    for c in targets:
                        channels[c].send(("step", batches[c], horizon, None))
                    for c in targets:
                        ingest(c, channels[c].recv())
                    if targets:
                        trips += 1
                    skipped_steps += nworkers - len(targets)
                else:
                    k0 = None
                    if needs_step(0):
                        channels[0].send(
                            ("step", batches[0], horizon, _PROBE)
                        )
                        reply = channels[0].recv()
                        ingest(0, reply)
                        k0 = reply["k0"]
                        trips += 1
                    else:
                        skipped_steps += 1
                    rest = [
                        c for c in range(1, nworkers) if needs_step(c)
                    ]
                    for c in rest:
                        channels[c].send(("step", batches[c], horizon, k0))
                    for c in rest:
                        ingest(c, channels[c].recv())
                    if rest:
                        trips += 1
                    skipped_steps += nworkers - 1 - len(rest)

                if sum(processed_by) > self._max_events:
                    raise SimulationError(
                        f"simulation exceeded {self._max_events} events "
                        "(livelock or runaway configuration?)"
                    )
                if sum(nodes_by) > self.config.node_cap:
                    raise SimulationError(
                        f"run exceeded node cap {self.config.node_cap}"
                    )

            for ch in channels:
                ch.send(("done",))
            finals = [ch.recv() for ch in channels]
            pool.join()

            self.parallel_stats = {
                "transport": pool.transport,
                "workers": nworkers,
                "shards": nshards,
                "cpu_count": os.cpu_count(),
                "rounds": rounds,
                "round_trips": trips,
                "skipped_child_steps": skipped_steps,
                "wall_s": round(time.perf_counter() - t_wall0, 6),
                "coordinator_wait_s": round(
                    sum(ch.wait_s for ch in channels), 6
                ),
                "worker_busy_s": [f["busy_s"] for f in finals],
                "bytes_sent": sum(ch.bytes_sent for ch in channels),
                "bytes_recv": sum(ch.bytes_recv for ch in channels),
            }

            workers: list[_WorkerSnapshot] = []
            recorders: list[TraceRecorder] = []
            event_recorders: list[EventRecorder] = []
            events_processed = 0
            messages_dropped = dropped_inflight
            probes_started = 0
            terminated = False
            for final in finals:
                for shard_final in final["shards"]:
                    workers.extend(shard_final["workers"])
                    if shard_final["recorders"] is not None:
                        recorders.extend(shard_final["recorders"])
                    if shard_final["event_recorders"] is not None:
                        event_recorders.extend(shard_final["event_recorders"])
                    events_processed += shard_final["processed"]
                    messages_dropped += shard_final["dropped"]
                    if shard_final["index"] == 0:
                        probes_started = shard_final["probes_started"]
                        terminated = shard_final["terminated"]
            return self._finalize(
                workers=workers,
                events_processed=events_processed,
                messages_dropped=messages_dropped,
                probes_started=probes_started,
                terminated=terminated,
                recorders=recorders if self.config.trace else None,
                event_recorders=(
                    event_recorders if self.config.event_trace else None
                ),
            )

    # ------------------------------------------------------------------

    def _finalize(
        self,
        workers,
        events_processed,
        messages_dropped,
        probes_started,
        terminated,
        recorders,
        event_recorders,
    ) -> SimOutcome:
        if sum(w.nodes_processed for w in workers) > self.config.node_cap:
            raise SimulationError(
                f"run exceeded node cap {self.config.node_cap}"
            )
        if not terminated:
            raise TerminationError(
                "event queue drained before termination was detected"
            )
        for worker in workers:
            if worker.status is not WorkerStatus.DONE:
                raise TerminationError(
                    f"rank {worker.rank} never received Finish"
                )
            stack_empty = (
                worker.stack.is_empty
                if isinstance(worker, Worker)
                else worker.stack_empty
            )
            if not stack_empty:
                raise TerminationError(
                    f"rank {worker.rank} terminated holding nodes"
                )
        sent = sum(w.nodes_sent for w in workers)
        received = sum(w.nodes_received for w in workers)
        if sent != received:
            raise TerminationError(
                f"work lost in flight: {sent} nodes sent but "
                f"{received} received"
            )
        total_time = max(
            w.finish_time for w in workers if w.finish_time is not None
        )
        return SimOutcome(
            config=self.config,
            placement=self.placement,
            workers=workers,
            recorders=recorders,
            clock=self.clock,
            total_time=total_time,
            events_processed=events_processed,
            messages_dropped=messages_dropped,
            probes_started=probes_started,
            event_recorders=event_recorders,
        )


# ----------------------------------------------------------------------
# Transport plumbing of shard_workers > 1
# ----------------------------------------------------------------------


def _raise_if_error(reply) -> None:
    if isinstance(reply, dict) and "error" in reply:
        exc_type, message = reply["error"]
        raise exc_type(f"shard worker failed: {message}")


class _ShmSegment:
    """Single-writer scratch region backing one transfer direction.

    The coordinator protocol is strict request-reply, so the writer
    never touches the buffer again before the reader has consumed the
    previous message — one flat segment per direction is race-free
    without any ring bookkeeping.  Payloads that do not fit ride the
    pipe inline instead (see :func:`_pack_blobs`).
    """

    __slots__ = ("shm", "size", "_off")

    def __init__(self, shm):
        self.shm = shm
        self.size = shm.size
        self._off = 0

    def reset(self) -> None:
        self._off = 0

    def put(self, data) -> tuple[int, int] | None:
        n = len(data)
        off = self._off
        if off + n > self.size:
            return None
        self.shm.buf[off : off + n] = data
        self._off = off + n
        return (off, n)

    def get(self, off: int, n: int) -> bytes:
        return bytes(self.shm.buf[off : off + n])

    def close(self, unlink: bool) -> None:
        try:
            self.shm.close()
        except Exception:  # pragma: no cover - platform cleanup
            pass
        if unlink:
            try:
                self.shm.unlink()
            except Exception:  # pragma: no cover - already gone
                pass


def _pack_blobs(seg: _ShmSegment, entries: list, di: int) -> list:
    """Move byte payloads at tuple index ``di`` into ``seg``, replacing
    them with ``("shm", off, len)`` descriptors; oversized or non-byte
    payloads pass through untouched (pipe-inline fallback)."""
    seg.reset()
    packed = []
    for entry in entries:
        data = entry[di]
        if isinstance(data, (bytes, bytearray)):
            desc = seg.put(data)
            if desc is not None:
                entry = (
                    entry[:di] + (("shm",) + desc,) + entry[di + 1 :]
                )
        packed.append(entry)
    return packed


def _unpack_blobs(seg: _ShmSegment, entries: list, di: int) -> list:
    """Resolve ``("shm", off, len)`` descriptors back to bytes."""
    out = []
    for entry in entries:
        data = entry[di]
        if type(data) is tuple and data and data[0] == "shm":
            entry = (
                entry[:di] + (seg.get(data[1], data[2]),) + entry[di + 1 :]
            )
        out.append(entry)
    return out


class _ShardChannel:
    """One child process plus its pipe and optional shm segments.

    ``rx`` carries coordinator→child blob bytes, ``tx`` child→
    coordinator; control structures always ride the pipe.  The
    segments are created before the child starts (fork inherits the
    mapping, spawn re-attaches by name) and are owned — closed *and*
    unlinked — by the coordinator after the child is down.
    """

    def __init__(self, ctx, config, bounds, shard_list, max_events, use_shm):
        self.wait_s = 0.0
        self.bytes_sent = 0
        self.bytes_recv = 0
        self.rx_seg: _ShmSegment | None = None
        self.tx_seg: _ShmSegment | None = None
        if use_shm:
            try:
                from multiprocessing import shared_memory

                self.rx_seg = _ShmSegment(
                    shared_memory.SharedMemory(
                        create=True, size=SHM_SEGMENT_SIZE
                    )
                )
                self.tx_seg = _ShmSegment(
                    shared_memory.SharedMemory(
                        create=True, size=SHM_SEGMENT_SIZE
                    )
                )
            except Exception:  # pragma: no cover - platform dependent
                self._release_segments()
        try:
            parent_conn, child_conn = ctx.Pipe()
            self.conn = parent_conn
            self.proc = ctx.Process(
                target=_shard_worker_main,
                args=(
                    child_conn,
                    config,
                    bounds,
                    shard_list,
                    max_events,
                    self.rx_seg.shm if self.rx_seg is not None else None,
                    self.tx_seg.shm if self.tx_seg is not None else None,
                ),
                daemon=True,
            )
            self.proc.start()
            child_conn.close()
        except Exception:
            self._release_segments()
            raise

    @property
    def uses_shm(self) -> bool:
        return self.rx_seg is not None

    def send(self, command: tuple) -> None:
        if command[0] == "step":
            blobs = command[1]
            for entry in blobs:
                data = entry[1]
                if isinstance(data, (bytes, bytearray)):
                    self.bytes_sent += len(data)
            if self.rx_seg is not None and blobs:
                command = (
                    "step",
                    _pack_blobs(self.rx_seg, blobs, 1),
                    command[2],
                    command[3],
                )
        self.conn.send(command)

    def recv(self) -> dict:
        t0 = time.perf_counter()
        reply = self.conn.recv()
        self.wait_s += time.perf_counter() - t0
        _raise_if_error(reply)
        out = reply.get("out")
        if out:
            if self.tx_seg is not None:
                out = _unpack_blobs(self.tx_seg, out, 1)
                reply["out"] = out
            for entry in out:
                data = entry[1]
                if isinstance(data, (bytes, bytearray)):
                    self.bytes_recv += len(data)
        return reply

    def shutdown(self) -> None:
        """Tear the child down unconditionally: close the pipe (EOF
        makes a healthy child exit), then join → terminate → kill."""
        try:
            self.conn.close()
        except Exception:  # pragma: no cover - already closed
            pass
        proc = self.proc
        proc.join(timeout=10)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=10)
        if proc.is_alive():  # pragma: no cover - last resort
            proc.kill()
            proc.join(timeout=10)
        self._release_segments()

    def _release_segments(self) -> None:
        for seg in (self.rx_seg, self.tx_seg):
            if seg is not None:
                seg.close(unlink=True)
        self.rx_seg = None
        self.tx_seg = None


class _ChildPool:
    """Owns the shard-hosting children for one run (context manager).

    Guarantees no child outlives the coordinator: on exit — normal or
    error — every channel is shut down with escalation (the previous
    driver's ``proc.join(timeout=30)`` ignored expiry and error paths
    could strand children).
    """

    def __init__(self, config, bounds, assignment, max_events):
        want_shm = config.shard_transport == "shm"
        self.channels: list[_ShardChannel] = []
        ctx = multiprocessing.get_context()
        try:
            for shard_list in assignment:
                self.channels.append(
                    _ShardChannel(
                        ctx, config, bounds, shard_list, max_events,
                        use_shm=want_shm,
                    )
                )
        except Exception:
            self.close()
            raise
        if want_shm and not all(ch.uses_shm for ch in self.channels):
            self.transport = "pipe(shm-unavailable)"
        else:
            self.transport = config.shard_transport

    def __enter__(self) -> _ChildPool:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def join(self) -> None:
        """Graceful wait after ``done`` replies (children exit on EOF
        or on having served ``done``); ``close`` still escalates."""
        for ch in self.channels:
            try:
                ch.conn.close()
            except Exception:  # pragma: no cover - already closed
                pass
            ch.proc.join(timeout=10)

    def close(self) -> None:
        for ch in self.channels:
            ch.shutdown()


# ----------------------------------------------------------------------
# Child-process side of shard_workers > 1
# ----------------------------------------------------------------------


def _shard_worker_main(
    conn,
    config: WorkStealingConfig,
    bounds,
    shard_indices,
    max_events,
    rx_shm=None,
    tx_shm=None,
) -> None:
    """Command loop of one shard-hosting process.

    Rebuilds placement, clock and tree generator deterministically from
    the config (nothing simulation-relevant crosses the pipe except
    staged event entries), then serves the coordinator's fused ``step``
    protocol until ``done`` or pipe EOF.  Module flags (burst,
    extension, codec) are inherited from the parent under the fork
    start method, which is what lets the differential tests pin them.
    """
    busy = 0.0
    rx_seg = _ShmSegment(rx_shm) if rx_shm is not None else None
    tx_seg = _ShmSegment(tx_shm) if tx_shm is not None else None
    try:
        placement = build_placement(
            config.nranks,
            config.allocation,
            latency_model=config.latency_model,
            topology_factory=config.topology_factory,
        )
        clock = ClockSkewModel(
            config.nranks, std=config.clock_skew_std, seed=config.seed
        )
        generator = TreeGenerator(config.tree, config.rng_backend)
        recorders = (
            [TraceRecorder() for _ in range(config.nranks)]
            if config.trace
            else None
        )
        event_recorders = (
            [
                EventRecorder(config.event_trace_capacity)
                for _ in range(config.nranks)
            ]
            if config.event_trace
            else None
        )
        shards = {
            i: _Shard(
                i,
                list(bounds),
                config,
                placement,
                clock,
                generator,
                max_events,
                recorders,
                event_recorders,
            )
            for i in shard_indices
        }
        has_zero = 0 in shards
        encode = WIRE_CODEC

        def status(extra=None):
            out = []
            for shard in shards.values():
                out.extend(shard.take_outboxes(encode))
            if tx_seg is not None and out:
                out = _pack_blobs(tx_seg, out, 1)
            reply = {
                "heads": {i: s.head_key() for i, s in shards.items()},
                "cand": bool(has_zero and shards[0].head_is_candidate()),
                "out": out,
                "finish": shards[0].finish_info if has_zero else None,
                "processed": sum(s.processed for s in shards.values()),
                "nodes": sum(s.nodes_total for s in shards.values()),
                "send_bound": min(
                    s.send_bound() for s in shards.values()
                ),
                # Candidates can only arise from shard 0's own state
                # (cross-shard effects are next-round), and its send
                # bound is <= every message head and every rank-0 exec
                # bound — so it lower-bounds candidate occurrence too.
                "cand_bound": (
                    shards[0].send_bound() if has_zero else None
                ),
            }
            if extra:
                reply.update(extra)
            return reply

        while True:
            try:
                command = conn.recv()
            except (EOFError, OSError):
                return
            t_cmd = time.perf_counter()
            op = command[0]
            if op == "start":
                for i in sorted(shards):
                    shards[i].start_workers()
                reply = status()
            elif op == "step":
                blobs, horizon, cap = command[1], command[2], command[3]
                for idx, data in blobs:
                    if (
                        type(data) is tuple
                        and data
                        and data[0] == "shm"
                    ):
                        data = rx_seg.get(data[1], data[2])
                    if isinstance(data, (bytes, bytearray)):
                        shards[idx].absorb(decode_entries(data))
                    else:
                        shards[idx].absorb(data)
                if cap == _PROBE or (cap is None and has_zero):
                    k0 = shards[0].process_window(
                        horizon, stop_candidates=True
                    )
                    if cap is None and k0 is not None:
                        raise SimulationError(
                            "termination candidate inside an overlapped "
                            f"window (bound violated at {k0!r})"
                        )
                    for i in sorted(shards):
                        if i != 0:
                            shards[i].process_window(horizon, key_cap=k0)
                    reply = status({"k0": k0})
                else:
                    for i in sorted(shards):
                        shards[i].process_window(horizon, key_cap=cap)
                    reply = status({"k0": None})
            elif op == "one":
                shards[0].process_one()
                if shards[0].finish_info is not None:
                    when, c0 = shards[0].finish_info
                    for i, shard in shards.items():
                        if i != 0 and not shard._finishing:
                            shard.finish_remote(when, c0)
                reply = status()
            elif op == "finish":
                when, c0 = command[1], command[2]
                for shard in shards.values():
                    if not shard._finishing:
                        shard.finish_remote(when, c0)
                reply = status()
            elif op == "done":
                final = {"shards": []}
                for i in sorted(shards):
                    shard = shards[i]
                    shard.check_done()
                    final["shards"].append(
                        {
                            "index": i,
                            "workers": shard.snapshots(),
                            "recorders": (
                                recorders[shard.lo : shard.hi]
                                if recorders is not None
                                else None
                            ),
                            "event_recorders": (
                                event_recorders[shard.lo : shard.hi]
                                if event_recorders is not None
                                else None
                            ),
                            "processed": shard.processed,
                            "dropped": shard.messages_dropped,
                            "probes_started": shard.detector.probes_started,
                            "terminated": shard.detector.terminated,
                        }
                    )
                busy += time.perf_counter() - t_cmd
                final["busy_s"] = round(busy, 6)
                conn.send(final)
                return
            else:  # pragma: no cover - protocol guard
                conn.send({"error": (SimulationError, f"bad op {op!r}")})
                return
            busy += time.perf_counter() - t_cmd
            conn.send(reply)
    except Exception as exc:  # pragma: no cover - shipped to parent
        try:
            conn.send({"error": (type(exc), str(exc))})
        except Exception:
            pass
    finally:
        for seg in (rx_seg, tx_seg):
            if seg is not None:
                seg.close(unlink=False)
