"""Sharded conservative-lookahead simulation engine.

The single-queue :class:`~repro.sim.cluster.Cluster` processes every
event of the job through one heap and one shared latency-row cache; at
1024+ ranks the cache (128 rows) thrashes and each message send pays an
O(N) row rebuild — the profile shows 73% of wall time there at 512
ranks.  :class:`ShardedCluster` splits the rank space into contiguous,
node-aligned *shards*, each with its own event heap, its own
termination-detector slice, and — the structural performance win — its
own latency-row cache sized to the shard's senders, so every send is a
cache hit regardless of job scale.

Correctness rests on the classic conservative-synchronisation argument
(Chandy–Misra–Bryant), specialised to our fixed latency models:

* every cross-shard message is cross-node (shards are node-aligned),
  so it pays at least ``L = latency_model.min_remote_latency()`` of
  wire time;
* therefore, if ``W`` is the earliest pending event time anywhere, no
  shard can receive a new message before ``W + L`` — each shard may
  process all its events with ``time < W + L`` *locally*, in any
  inter-shard interleaving, before the next exchange.

Bit-identity with the sequential engine (not just statistical
equivalence) follows from the event key design in
:mod:`repro.sim.engine`: events are ordered by ``(time, pusher,
per-pusher seq)``, a globally unique key computable by the pusher's
home shard alone.  Both engines deliver each rank's events in exactly
the same order, so every float is computed by the same operations in
the same sequence.  ``tests/sim/test_sharded.py`` asserts this across
the whole selector × steal-policy registry, byte-for-byte on the
canonical trace encoding.

Termination needs one refinement: Dijkstra-ring termination fires at
rank 0 and atomically drops every in-flight message, so the triggering
event must be processed when it is the *global* minimum and no shard
has advanced past it.  The only events that can trigger it
("candidates") are a token arriving at rank 0 and an EXEC at rank 0
with an empty stack; shard 0 stops its window early at a candidate and
reports its key, which caps how far the other shards may advance.
When the candidate becomes the global minimum it is processed alone.

``shard_workers > 1`` distributes shards over OS processes connected
by pipes, each rebuilding its placement deterministically from the
config.  (The :mod:`repro.exec` ``WorkerPool`` is not reused here: its
executor does not pin tasks to processes, and the barrier loop needs
resident per-process shard state.)  On single-core machines this mode
exists for isolation/determinism testing; the throughput win of the
engine is the cache locality, not parallelism.
"""

from __future__ import annotations

import heapq
import multiprocessing
from bisect import bisect_right

from repro.core.config import WorkStealingConfig
from repro.core.tracing import TraceRecorder
from repro.errors import ConfigurationError, SimulationError, TerminationError
from repro.net.allocation import build_placement
from repro.net.pairwise import PairwiseMetric
from repro.sim.clock import ClockSkewModel
from repro.sim.cluster import SimOutcome
from repro.sim.engine import DEFAULT_MAX_EVENTS, EVT_EXEC, EVT_MSG
from repro.sim.messages import TAG_STEAL_RESPONSE, TAG_TOKEN, Finish, Token
from repro.sim.termination import DijkstraTermination, TokenAction
from repro.sim.worker import Worker, WorkerStatus
from repro.trace.events import EV_TOKEN, EventRecorder
from repro.uts.tree import TreeGenerator

__all__ = ["ShardedCluster", "auto_shards", "shard_bounds"]


def auto_shards(nranks: int) -> int:
    """Default shard count: one shard per ~512 ranks, capped at 16."""
    return max(1, min(16, nranks // 512))


def shard_bounds(
    nranks: int, nshards: int, rank_nodes
) -> tuple[list[int], bool]:
    """Contiguous rank-block boundaries, snapped to node boundaries.

    Returns ``(bounds, aligned)`` with ``bounds[s]..bounds[s+1]`` the
    rank range of shard ``s``.  Each ideal cut ``s * nranks / nshards``
    is moved down to the nearest index where the hosting node changes,
    so no compute node spans two shards and cross-shard traffic is
    guaranteed cross-node.  If a cut cannot be node-aligned (e.g. a
    randomised allocation interleaves nodes arbitrarily), the ideal
    cuts are kept and ``aligned`` is False — the caller must then use
    the narrower any-pair latency bound as its lookahead.
    """
    nshards = max(1, min(nshards, nranks))
    ideal = [(s * nranks) // nshards for s in range(nshards + 1)]
    if nshards == 1:
        return ideal, True
    snapped = [0]
    for cut in ideal[1:-1]:
        j = cut
        while j > snapped[-1] and rank_nodes[j] == rank_nodes[j - 1]:
            j -= 1
        if j > snapped[-1]:
            snapped.append(j)
    snapped.append(nranks)
    if len(snapped) == nshards + 1:
        # A run boundary is not enough: interleaved allocations (e.g.
        # round-robin [0,1,0,1,...]) change node at every rank while
        # every node still spans every shard.  Alignment requires each
        # node's ranks to land entirely inside one shard.
        shard_of: dict = {}
        s = 0
        aligned = True
        for r in range(nranks):
            while r >= snapped[s + 1]:
                s += 1
            node = rank_nodes[r]
            prev = shard_of.setdefault(node, s)
            if prev != s:
                aligned = False
                break
        if aligned:
            return snapped, True
    return ideal, False


class _WorkerSnapshot:
    """Picklable stand-in for a :class:`Worker` shipped across processes.

    Carries exactly the attributes :class:`SimOutcome` consumers
    (``repro.ws.results``, the cluster post-checks) read from workers.
    """

    __slots__ = (
        "rank",
        "status",
        "sessions",
        "nodes_processed",
        "steal_requests_sent",
        "failed_steals",
        "successful_steals",
        "requests_served",
        "requests_denied",
        "chunks_sent",
        "nodes_sent",
        "chunks_received",
        "nodes_received",
        "service_time",
        "finish_time",
        "search_time",
        "stack_empty",
    )

    def __init__(self, worker: Worker):
        self.rank = worker.rank
        self.status = worker.status
        self.sessions = worker.sessions
        self.nodes_processed = worker.nodes_processed
        self.steal_requests_sent = worker.steal_requests_sent
        self.failed_steals = worker.failed_steals
        self.successful_steals = worker.successful_steals
        self.requests_served = worker.requests_served
        self.requests_denied = worker.requests_denied
        self.chunks_sent = worker.chunks_sent
        self.nodes_sent = worker.nodes_sent
        self.chunks_received = worker.chunks_received
        self.nodes_received = worker.nodes_received
        self.service_time = worker.service_time
        self.finish_time = worker.finish_time
        self.search_time = worker.search_time
        self.stack_empty = worker.stack.is_empty

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)


class _Shard:
    """One rank block: local heap, workers, detector slice, transport.

    Implements the worker :class:`~repro.sim.worker.Transport`
    protocol.  Sends to local ranks push straight into the local heap;
    cross-shard sends are staged, pre-keyed, into per-target outboxes
    and merged at the next exchange — heap order is fully determined by
    the globally unique keys, so merge order cannot matter.
    """

    def __init__(
        self,
        index: int,
        bounds: list[int],
        config: WorkStealingConfig,
        placement,
        clock: ClockSkewModel,
        generator: TreeGenerator,
        max_events: int,
        recorders: list[TraceRecorder] | None,
        event_recorders: list[EventRecorder] | None,
    ):
        self.index = index
        self.bounds = bounds
        self.lo = bounds[index]
        self.hi = bounds[index + 1]
        self.nranks = config.nranks
        self.config = config
        self.placement = placement
        self.clock = clock
        self.detector = DijkstraTermination(config.nranks)

        # The structural perf win: a shard-private latency metric whose
        # row cache covers every local sender (plus row 0 for the
        # finish broadcast), so sends never rebuild a row after warmup.
        # Memory: (hi - lo + 1) rows of N float64 per shard.
        model = config.latency_model
        self._latency = PairwiseMetric(
            config.nranks,
            model.row_builder(placement.topology, placement.rank_nodes),
            name=f"latency/shard{index}",
            cache_rows=self.hi - self.lo + 1,
        )
        self._latency_value = self._latency.value

        self._heap: list = []
        self._rank_seq: dict[int, int] = {}
        self.now = 0.0
        self.processed = 0
        self._max_events = max_events
        self._outbox: list[list] = [[] for _ in range(len(bounds) - 1)]
        self._finishing = False
        self.messages_dropped = 0
        self.nodes_total = 0
        self._node_budget = config.node_cap
        #: Set by ``_local_finish`` (shard 0 only): ``(when, c0)``.
        self.finish_info: tuple[float, int] | None = None
        self._transfer_time_per_node = config.transfer_time_per_node

        self.recorders = recorders
        self.event_recorders = event_recorders
        self.workers: list[Worker] = []
        for rank in range(self.lo, self.hi):
            selector = (
                config.selector.make(
                    rank, config.nranks, placement, seed=config.seed
                )
                if config.nranks > 1
                else None
            )
            worker_kwargs = dict(
                rank=rank,
                nranks=config.nranks,
                generator=generator,
                selector=selector,
                policy=config.steal_policy,
                transport=self,
                chunk_size=config.chunk_size,
                poll_interval=config.poll_interval,
                per_node_time=config.per_node_time,
                steal_service_time=config.steal_service_time,
                trace=recorders[rank] if recorders else None,
                events=event_recorders[rank] if event_recorders else None,
            )
            if config.lifelines > 0:
                from repro.lifeline.worker import LifelineWorker

                self.workers.append(
                    LifelineWorker(
                        lifeline_count=config.lifelines,
                        lifeline_threshold=config.lifeline_threshold,
                        **worker_kwargs,
                    )
                )
            else:
                self.workers.append(Worker(**worker_kwargs))

    # ------------------------------------------------------------------
    # Transport interface (used by workers)
    # ------------------------------------------------------------------

    def send(self, src: int, dst: int, payload: object, when: float) -> None:
        if self._finishing:
            self.messages_dropped += 1
            return
        wire = self._latency_value(src, dst)
        if (
            getattr(payload, "tag", None) == TAG_STEAL_RESPONSE
            and payload.chunks is not None
        ):
            wire += payload.nodes * self._transfer_time_per_node
        arrival = when + wire
        rs = self._rank_seq
        seq = rs.get(src, 0)
        rs[src] = seq + 1
        entry = (arrival, src, seq, EVT_MSG, dst, payload)
        if self.lo <= dst < self.hi:
            if arrival < self.now:
                raise SimulationError(
                    f"event scheduled at {arrival} before current time "
                    f"{self.now}"
                )
            heapq.heappush(self._heap, entry)
        else:
            self._outbox[bisect_right(self.bounds, dst) - 1].append(entry)

    def schedule_exec(self, rank: int, when: float) -> None:
        if when < self.now:
            raise SimulationError(
                f"event scheduled at {when} before current time {self.now}"
            )
        rs = self._rank_seq
        seq = rs.get(rank, 0)
        rs[rank] = seq + 1
        heapq.heappush(self._heap, (when, rank, seq, EVT_EXEC, rank, None))

    def rank_became_idle(self, rank: int, when: float) -> None:
        self._dispatch_token_action(rank, self.detector.rank_idle(rank), when)

    def work_sent(self, rank: int) -> None:
        self.detector.work_sent(rank)

    def nodes_executed(self, n: int) -> None:
        self.nodes_total += n
        if self.nodes_total > self._node_budget:
            raise SimulationError(
                f"run exceeded node cap {self._node_budget}"
            )

    def local_time(self, rank: int, true_time: float) -> float:
        return self.clock.local_time(rank, true_time)

    # ------------------------------------------------------------------
    # Coordinator interface
    # ------------------------------------------------------------------

    def start_workers(self) -> None:
        for worker in self.workers:
            worker.start(0.0)

    def absorb(self, entries: list) -> None:
        heap = self._heap
        push = heapq.heappush
        for entry in entries:
            push(heap, entry)

    def take_outboxes(self) -> list[tuple[int, list]]:
        out = []
        for target, box in enumerate(self._outbox):
            if box:
                out.append((target, box))
                self._outbox[target] = []
        return out

    def head_key(self) -> tuple[float, int, int] | None:
        if not self._heap:
            return None
        head = self._heap[0]
        return (head[0], head[1], head[2])

    def head_is_candidate(self) -> bool:
        """Whether the head event could trigger global termination.

        Only meaningful on shard 0: a token arriving at rank 0, or an
        EXEC at rank 0 whose stack is empty at event start (serving
        pending steals can never empty a non-empty stack — thieves only
        take whole bottom chunks, the private top chunk stays — so
        head-time emptiness equals idle-decision emptiness).
        """
        head = self._heap[0]
        if head[4] != 0:
            return False
        if head[3] == EVT_EXEC:
            return not self.workers[0].stack._chunks
        return getattr(head[5], "tag", None) == TAG_TOKEN

    def process_one(self) -> None:
        """Pop and dispatch exactly the head event (the candidate path)."""
        self._dispatch(heapq.heappop(self._heap))

    def process_window(
        self,
        horizon: float,
        key_cap: tuple[float, int, int] | None = None,
        stop_candidates: bool = False,
    ) -> tuple[float, int, int] | None:
        """Process local events with ``time < horizon`` in key order.

        ``key_cap`` additionally stops at the first event with key >=
        cap (the candidate key reported by shard 0).  With
        ``stop_candidates`` (shard 0), stops *before* a candidate and
        returns its key.  Newly generated local events that fall inside
        the window are picked up in the same pass.
        """
        heap = self._heap
        pop = heapq.heappop
        workers = self.workers
        lo = self.lo
        detector = self.detector
        event_recorders = self.event_recorders
        max_events = self._max_events
        processed = self.processed
        try:
            while heap:
                head = heap[0]
                t = head[0]
                if t >= horizon:
                    break
                if key_cap is not None and (
                    (t, head[1], head[2]) >= key_cap
                ):
                    break
                kind = head[3]
                rank = head[4]
                if stop_candidates and rank == 0:
                    if (
                        kind == EVT_EXEC
                        and not workers[0].stack._chunks
                    ) or (
                        kind == EVT_MSG
                        and getattr(head[5], "tag", None) == TAG_TOKEN
                    ):
                        return (t, head[1], head[2])
                pop(heap)
                self.now = t
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events "
                        "(livelock or runaway configuration?)"
                    )
                payload = head[5]
                if kind == EVT_EXEC:
                    workers[rank - lo].on_exec(t)
                elif payload.tag == TAG_TOKEN:
                    worker = workers[rank - lo]
                    if event_recorders is not None:
                        event_recorders[rank].append(
                            t, EV_TOKEN, payload.color
                        )
                    action = detector.token_arrived(
                        rank,
                        payload.color,
                        worker.status is WorkerStatus.WAITING,
                    )
                    self._dispatch_token_action(rank, action, t)
                else:
                    workers[rank - lo].on_message(t, payload)
        finally:
            self.processed = processed
        return None

    def _dispatch(self, entry) -> None:
        """Deliver one popped event (the non-inlined single-event path)."""
        t = entry[0]
        kind = entry[3]
        rank = entry[4]
        payload = entry[5]
        self.now = t
        self.processed += 1
        if self.processed > self._max_events:
            raise SimulationError(
                f"simulation exceeded {self._max_events} events "
                "(livelock or runaway configuration?)"
            )
        if kind == EVT_EXEC:
            self.workers[rank - self.lo].on_exec(t)
        elif payload.tag == TAG_TOKEN:
            worker = self.workers[rank - self.lo]
            if self.event_recorders is not None:
                self.event_recorders[rank].append(t, EV_TOKEN, payload.color)
            action = self.detector.token_arrived(
                rank, payload.color, worker.status is WorkerStatus.WAITING
            )
            self._dispatch_token_action(rank, action, t)
        else:
            self.workers[rank - self.lo].on_message(t, payload)

    # ------------------------------------------------------------------
    # Termination plumbing
    # ------------------------------------------------------------------

    def _dispatch_token_action(
        self, src: int, action: TokenAction, when: float
    ) -> None:
        if action.terminated:
            if self.index != 0:
                raise TerminationError(
                    "termination detected off shard 0 (protocol bug)"
                )
            self._local_finish(when)
        elif action.sends:
            assert action.send_color is not None and action.send_to is not None
            self.send(src, action.send_to, Token(action.send_color), when)

    def _local_finish(self, when: float) -> None:
        """Shard 0 proved termination mid-event: finish locally, flag
        the coordinator to finish the other shards before they advance.

        Mirrors ``Cluster._broadcast_finish``: every pending event —
        including messages staged this very event — is dropped, rank 0
        gets Finish synchronously (uncounted, like the sequential
        direct call), and Finish events for the other ranks are keyed
        with pusher 0 continuing its counter, exactly the sequence the
        sequential engine's pushes produce.
        """
        dropped = len(self._heap)
        self._heap.clear()
        for box in self._outbox:
            dropped += len(box)
            box.clear()
        self.messages_dropped += dropped
        self._finishing = True
        c0 = self._rank_seq.get(0, 0)
        self.finish_info = (when, c0)
        self.workers[0].on_message(when, Finish())
        row0 = self._latency.row(0)
        for rank in range(max(self.lo, 1), self.hi):
            heapq.heappush(
                self._heap,
                (when + row0[rank], 0, c0 + rank - 1, EVT_MSG, rank, Finish()),
            )
        self._rank_seq[0] = c0 + (self.nranks - 1)

    def finish_remote(self, when: float, c0: int) -> None:
        """Another shard's view of the finish broadcast."""
        dropped = len(self._heap)
        self._heap.clear()
        for box in self._outbox:
            dropped += len(box)
            box.clear()
        self.messages_dropped += dropped
        self._finishing = True
        row0 = self._latency.row(0)
        for rank in range(self.lo, self.hi):
            heapq.heappush(
                self._heap,
                (when + row0[rank], 0, c0 + rank - 1, EVT_MSG, rank, Finish()),
            )

    # ------------------------------------------------------------------
    # Post-run
    # ------------------------------------------------------------------

    def check_done(self) -> None:
        for worker in self.workers:
            if worker.status is not WorkerStatus.DONE:
                raise TerminationError(
                    f"rank {worker.rank} never received Finish"
                )
            if not worker.stack.is_empty:
                raise TerminationError(
                    f"rank {worker.rank} terminated holding "
                    f"{worker.stack.size} nodes"
                )

    def snapshots(self) -> list[_WorkerSnapshot]:
        return [_WorkerSnapshot(w) for w in self.workers]


class ShardedCluster:
    """Drop-in for :class:`~repro.sim.cluster.Cluster` running the
    sharded engine; ``run()`` returns a bit-identical
    :class:`SimOutcome`."""

    def __init__(self, config: WorkStealingConfig, max_events: int | None = None):
        if config.nic_service_time > 0:
            raise ConfigurationError(
                "sharded engine requires nic_service_time=0 "
                "(NIC contention is a global order-sensitive queue)"
            )
        self.config = config
        assert not isinstance(config.allocation, str)
        self.placement = build_placement(
            config.nranks,
            config.allocation,
            latency_model=config.latency_model,
            topology_factory=config.topology_factory,
        )
        nshards = config.shards if config.shards > 0 else auto_shards(config.nranks)
        self.bounds, self.aligned = shard_bounds(
            config.nranks, nshards, self.placement.rank_nodes
        )
        self.nshards = len(self.bounds) - 1
        model = config.latency_model
        self.lookahead = (
            model.min_remote_latency()
            if self.aligned
            else model.min_any_latency()
        )
        if self.lookahead <= 0.0:
            raise ConfigurationError(
                f"latency model {model.name!r} reports no positive "
                "lookahead window; the sharded engine needs a lower "
                "bound > 0 on cross-shard latency "
                "(implement min_remote_latency/min_any_latency)"
            )
        self._max_events = (
            max_events if max_events is not None else DEFAULT_MAX_EVENTS
        )
        if self._max_events < 1:
            raise SimulationError(
                f"max_events must be >= 1, got {self._max_events}"
            )
        self.clock = ClockSkewModel(
            config.nranks, std=config.clock_skew_std, seed=config.seed
        )
        self.recorders = (
            [TraceRecorder() for _ in range(config.nranks)]
            if config.trace
            else None
        )
        self.event_recorders = (
            [
                EventRecorder(config.event_trace_capacity)
                for _ in range(config.nranks)
            ]
            if config.event_trace
            else None
        )
        self._nworkers = max(1, min(config.shard_workers, self.nshards))

    # ------------------------------------------------------------------

    def run(self) -> SimOutcome:
        if self._nworkers > 1:
            return self._run_multiprocess()
        return self._run_inprocess()

    # ------------------------------------------------------------------
    # In-process driver
    # ------------------------------------------------------------------

    def _run_inprocess(self) -> SimOutcome:
        config = self.config
        assert not isinstance(config.rng_backend, str)
        generator = TreeGenerator(config.tree, config.rng_backend)
        shards = [
            _Shard(
                i,
                self.bounds,
                config,
                self.placement,
                self.clock,
                generator,
                self._max_events,
                self.recorders,
                self.event_recorders,
            )
            for i in range(self.nshards)
        ]
        for shard in shards:  # shard order == rank order
            shard.start_workers()
        self._exchange(shards)

        s0 = shards[0]
        rest = shards[1:]
        lookahead = self.lookahead
        max_events = self._max_events
        node_budget = config.node_cap
        finished = False
        while True:
            gmin = None
            for shard in shards:
                key = shard.head_key()
                if key is not None and (gmin is None or key < gmin):
                    gmin = key
            if gmin is None:
                break
            if (
                s0._heap
                and s0.head_key() == gmin
                and s0.head_is_candidate()
            ):
                s0.process_one()
                if s0.finish_info is not None and not finished:
                    finished = True
                    for shard in rest:
                        shard.finish_remote(*s0.finish_info)
                self._exchange(shards)
                continue
            horizon = gmin[0] + lookahead
            k0 = s0.process_window(horizon, stop_candidates=True)
            for shard in rest:
                shard.process_window(horizon, key_cap=k0)
            self._exchange(shards)
            if sum(s.processed for s in shards) > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events "
                    "(livelock or runaway configuration?)"
                )
            if sum(s.nodes_total for s in shards) > node_budget:
                raise SimulationError(
                    f"run exceeded node cap {node_budget}"
                )

        workers: list[Worker] = []
        for shard in shards:
            workers.extend(shard.workers)
        return self._finalize(
            workers=workers,
            events_processed=sum(s.processed for s in shards),
            messages_dropped=sum(s.messages_dropped for s in shards),
            probes_started=s0.detector.probes_started,
            terminated=s0.detector.terminated,
            recorders=self.recorders,
            event_recorders=self.event_recorders,
        )

    @staticmethod
    def _exchange(shards: list[_Shard]) -> None:
        push = heapq.heappush
        for shard in shards:
            boxes = shard._outbox
            for target, box in enumerate(boxes):
                if box:
                    heap = shards[target]._heap
                    for entry in box:
                        push(heap, entry)
                    box.clear()

    # ------------------------------------------------------------------
    # Multi-process driver
    # ------------------------------------------------------------------

    def _run_multiprocess(self) -> SimOutcome:
        nworkers = self._nworkers
        nshards = self.nshards
        # Contiguous shard blocks per child; child 0 always owns shard 0.
        assignment: list[list[int]] = [[] for _ in range(nworkers)]
        for s in range(nshards):
            assignment[(s * nworkers) // nshards].append(s)
        owner = {}
        for child, shard_list in enumerate(assignment):
            for s in shard_list:
                owner[s] = child

        ctx = multiprocessing.get_context()
        children = []
        pipes = []
        try:
            for child, shard_list in enumerate(assignment):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker_main,
                    args=(
                        child_conn,
                        self.config,
                        self.bounds,
                        shard_list,
                        self._max_events,
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                children.append(proc)
                pipes.append(parent_conn)

            inboxes: dict[int, list] = {s: [] for s in range(nshards)}

            def route(out):
                for target, entries in out:
                    inboxes[target].extend(entries)

            for conn in pipes:
                conn.send(("start",))
            for conn in pipes:
                reply = conn.recv()
                _raise_if_error(reply)
                route(reply["out"])

            finished = False
            lookahead = self.lookahead
            while True:
                heads: dict[int, tuple | None] = {}
                cand0 = False
                for child, conn in enumerate(pipes):
                    batch = {
                        s: inboxes[s]
                        for s in assignment[child]
                        if inboxes[s]
                    }
                    for s in batch:
                        inboxes[s] = []
                    conn.send(("absorb", batch))
                for child, conn in enumerate(pipes):
                    reply = conn.recv()
                    _raise_if_error(reply)
                    heads.update(reply["heads"])
                    if child == 0:
                        cand0 = reply["cand"]
                keys = [k for k in heads.values() if k is not None]
                if not keys:
                    break
                gmin = min(keys)
                total_processed = 0
                total_nodes = 0
                if cand0 and heads[0] == gmin:
                    pipes[0].send(("one",))
                    reply = pipes[0].recv()
                    _raise_if_error(reply)
                    route(reply["out"])
                    if reply["finish"] is not None and not finished:
                        finished = True
                        for child in range(1, nworkers):
                            pipes[child].send(("finish", *reply["finish"]))
                        for child in range(1, nworkers):
                            fin = pipes[child].recv()
                            _raise_if_error(fin)
                        # Staged messages everywhere are dropped by the
                        # children; clear the in-flight inboxes too.
                        # (They are empty by protocol: every inbox was
                        # absorbed at round start and "one" only stages
                        # into shard 0's own outbox, which local_finish
                        # already dropped — but stay defensive.)
                        for s in inboxes:
                            inboxes[s] = []
                    continue
                horizon = gmin[0] + lookahead
                pipes[0].send(("window0", horizon))
                reply = pipes[0].recv()
                _raise_if_error(reply)
                k0 = reply["k0"]
                route(reply["out"])
                for conn in pipes:
                    conn.send(("window", horizon, k0))
                for conn in pipes:
                    reply = conn.recv()
                    _raise_if_error(reply)
                    route(reply["out"])
                    total_processed += reply["processed"]
                    total_nodes += reply["nodes"]
                if total_processed > self._max_events:
                    raise SimulationError(
                        f"simulation exceeded {self._max_events} events "
                        "(livelock or runaway configuration?)"
                    )
                if total_nodes > self.config.node_cap:
                    raise SimulationError(
                        f"run exceeded node cap {self.config.node_cap}"
                    )

            for conn in pipes:
                conn.send(("done",))
            finals = []
            for conn in pipes:
                reply = conn.recv()
                _raise_if_error(reply)
                finals.append(reply)
            for proc in children:
                proc.join(timeout=30)

            workers: list[_WorkerSnapshot] = []
            recorders: list[TraceRecorder] = []
            event_recorders: list[EventRecorder] = []
            events_processed = 0
            messages_dropped = 0
            probes_started = 0
            terminated = False
            for child, final in enumerate(finals):
                for shard_final in final["shards"]:
                    workers.extend(shard_final["workers"])
                    if shard_final["recorders"] is not None:
                        recorders.extend(shard_final["recorders"])
                    if shard_final["event_recorders"] is not None:
                        event_recorders.extend(shard_final["event_recorders"])
                    events_processed += shard_final["processed"]
                    messages_dropped += shard_final["dropped"]
                    if shard_final["index"] == 0:
                        probes_started = shard_final["probes_started"]
                        terminated = shard_final["terminated"]
            return self._finalize(
                workers=workers,
                events_processed=events_processed,
                messages_dropped=messages_dropped,
                probes_started=probes_started,
                terminated=terminated,
                recorders=recorders if self.config.trace else None,
                event_recorders=(
                    event_recorders if self.config.event_trace else None
                ),
            )
        finally:
            for proc in children:
                if proc.is_alive():
                    proc.terminate()

    # ------------------------------------------------------------------

    def _finalize(
        self,
        workers,
        events_processed,
        messages_dropped,
        probes_started,
        terminated,
        recorders,
        event_recorders,
    ) -> SimOutcome:
        if sum(w.nodes_processed for w in workers) > self.config.node_cap:
            raise SimulationError(
                f"run exceeded node cap {self.config.node_cap}"
            )
        if not terminated:
            raise TerminationError(
                "event queue drained before termination was detected"
            )
        for worker in workers:
            if worker.status is not WorkerStatus.DONE:
                raise TerminationError(
                    f"rank {worker.rank} never received Finish"
                )
            stack_empty = (
                worker.stack.is_empty
                if isinstance(worker, Worker)
                else worker.stack_empty
            )
            if not stack_empty:
                raise TerminationError(
                    f"rank {worker.rank} terminated holding nodes"
                )
        sent = sum(w.nodes_sent for w in workers)
        received = sum(w.nodes_received for w in workers)
        if sent != received:
            raise TerminationError(
                f"work lost in flight: {sent} nodes sent but "
                f"{received} received"
            )
        total_time = max(
            w.finish_time for w in workers if w.finish_time is not None
        )
        return SimOutcome(
            config=self.config,
            placement=self.placement,
            workers=workers,
            recorders=recorders,
            clock=self.clock,
            total_time=total_time,
            events_processed=events_processed,
            messages_dropped=messages_dropped,
            probes_started=probes_started,
            event_recorders=event_recorders,
        )


# ----------------------------------------------------------------------
# Child-process side of shard_workers > 1
# ----------------------------------------------------------------------


def _raise_if_error(reply) -> None:
    if isinstance(reply, dict) and "error" in reply:
        exc_type, message = reply["error"]
        raise exc_type(f"shard worker failed: {message}")


def _shard_worker_main(
    conn, config: WorkStealingConfig, bounds, shard_indices, max_events
) -> None:
    """Command loop of one shard-hosting process.

    Rebuilds placement, clock and tree generator deterministically from
    the config (nothing simulation-relevant crosses the pipe except
    staged event entries), then serves the coordinator's barrier
    protocol until ``done``.
    """
    try:
        placement = build_placement(
            config.nranks,
            config.allocation,
            latency_model=config.latency_model,
            topology_factory=config.topology_factory,
        )
        clock = ClockSkewModel(
            config.nranks, std=config.clock_skew_std, seed=config.seed
        )
        generator = TreeGenerator(config.tree, config.rng_backend)
        recorders = (
            [TraceRecorder() for _ in range(config.nranks)]
            if config.trace
            else None
        )
        event_recorders = (
            [
                EventRecorder(config.event_trace_capacity)
                for _ in range(config.nranks)
            ]
            if config.event_trace
            else None
        )
        shards = {
            i: _Shard(
                i,
                list(bounds),
                config,
                placement,
                clock,
                generator,
                max_events,
                recorders,
                event_recorders,
            )
            for i in shard_indices
        }
        has_zero = 0 in shards

        def status(extra=None):
            out = []
            for shard in shards.values():
                out.extend(shard.take_outboxes())
            reply = {
                "heads": {i: s.head_key() for i, s in shards.items()},
                "cand": bool(
                    has_zero
                    and shards[0]._heap
                    and shards[0].head_is_candidate()
                ),
                "out": out,
                "finish": shards[0].finish_info if has_zero else None,
                "processed": sum(s.processed for s in shards.values()),
                "nodes": sum(s.nodes_total for s in shards.values()),
            }
            if extra:
                reply.update(extra)
            return reply

        while True:
            command = conn.recv()
            op = command[0]
            if op == "start":
                for i in sorted(shards):
                    shards[i].start_workers()
                conn.send(status())
            elif op == "absorb":
                for i, entries in command[1].items():
                    shards[i].absorb(entries)
                conn.send(status())
            elif op == "one":
                shards[0].process_one()
                if shards[0].finish_info is not None:
                    when, c0 = shards[0].finish_info
                    for i, shard in shards.items():
                        if i != 0 and not shard._finishing:
                            shard.finish_remote(when, c0)
                conn.send(status())
            elif op == "window0":
                k0 = shards[0].process_window(
                    command[1], stop_candidates=True
                )
                conn.send(status({"k0": k0}))
            elif op == "window":
                horizon, k0 = command[1], command[2]
                for i in sorted(shards):
                    if i == 0:
                        continue  # shard 0 ran in window0
                    shards[i].process_window(horizon, key_cap=k0)
                conn.send(status())
            elif op == "finish":
                when, c0 = command[1], command[2]
                for shard in shards.values():
                    if not shard._finishing:
                        shard.finish_remote(when, c0)
                conn.send(status())
            elif op == "done":
                final = {"shards": []}
                for i in sorted(shards):
                    shard = shards[i]
                    shard.check_done()
                    final["shards"].append(
                        {
                            "index": i,
                            "workers": shard.snapshots(),
                            "recorders": (
                                recorders[shard.lo : shard.hi]
                                if recorders is not None
                                else None
                            ),
                            "event_recorders": (
                                event_recorders[shard.lo : shard.hi]
                                if event_recorders is not None
                                else None
                            ),
                            "processed": shard.processed,
                            "dropped": shard.messages_dropped,
                            "probes_started": shard.detector.probes_started,
                            "terminated": shard.detector.terminated,
                        }
                    )
                conn.send(final)
                return
            else:  # pragma: no cover - protocol guard
                conn.send({"error": (SimulationError, f"bad op {op!r}")})
                return
    except Exception as exc:  # pragma: no cover - shipped to parent
        try:
            conn.send({"error": (type(exc), str(exc))})
        except Exception:
            pass
