"""Distributed termination detection: the token ring of the UTS MPI code.

The reference implementation detects global work exhaustion with a
token-ring algorithm ("Such condition is detected by a token-ring
distributed termination algorithm", §II-A).  We implement the
Dijkstra–Feijen–van Gasteren scheme with the conservative blackening
rule used by practical codes:

* every rank has a colour; sending *work* to anyone turns the sender
  **black** (the work message may overtake the probe);
* rank 0, once idle, starts a probe by sending a **white** token to
  rank 1; the token walks the ring ``0 -> 1 -> ... -> N-1 -> 0``;
* a rank holds the token until it is idle; when forwarding, a black
  rank blackens the token and bleaches itself;
* when the token returns to an idle, white rank 0 and the token is
  still white, the computation has terminated; otherwise rank 0
  bleaches itself and starts a new probe.

The class is deliberately pure state-machine: it never touches the
event queue.  Callers feed it observations (`work_sent`, `rank_idle`,
`token_arrived`) and it answers with a :class:`TokenAction` describing
what message, if any, to emit — making it directly unit-testable
against adversarial schedules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TerminationError
from repro.sim.messages import BLACK, WHITE

__all__ = ["TokenAction", "DijkstraTermination"]


@dataclass(frozen=True)
class TokenAction:
    """What the protocol wants the caller to do.

    ``send_to``/``send_color``: forward a token (None = nothing).
    ``terminated``: rank 0 proved global termination.
    """

    send_to: int | None = None
    send_color: int | None = None
    terminated: bool = False

    @property
    def sends(self) -> bool:
        return self.send_to is not None


_NOTHING = TokenAction()


class DijkstraTermination:
    """Token-ring termination detector for ``nranks`` processes."""

    def __init__(self, nranks: int):
        if nranks < 1:
            raise TerminationError(f"need at least 1 rank, got {nranks}")
        self.nranks = nranks
        self._color = [WHITE] * nranks
        self._holds_token = [False] * nranks
        self._held_color = [WHITE] * nranks
        self._started = False
        self._terminated = False
        # Exposed statistics.
        self.probes_started = 0
        self.tokens_forwarded = 0

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------

    def work_sent(self, rank: int) -> None:
        """Rank ``rank`` sent a work message: it turns black."""
        self._check_rank(rank)
        self._color[rank] = BLACK

    def rank_idle(self, rank: int) -> TokenAction:
        """Rank ``rank`` just became idle (empty stack).

        Rank 0 starts the first probe here; any rank holding a
        deferred token releases it.
        """
        self._check_rank(rank)
        if self._terminated:
            return _NOTHING
        if rank == 0 and not self._started:
            return self._start_probe()
        if self._holds_token[rank]:
            return self._release(rank)
        return _NOTHING

    def token_arrived(self, rank: int, color: int, is_idle: bool) -> TokenAction:
        """The token reached ``rank``; forward now or hold until idle."""
        self._check_rank(rank)
        if self._terminated:
            return _NOTHING
        if color not in (WHITE, BLACK):
            raise TerminationError(f"bad token color {color}")
        if self._holds_token[rank]:
            raise TerminationError(f"rank {rank} received a second token")
        self._holds_token[rank] = True
        self._held_color[rank] = color
        if is_idle:
            return self._release(rank)
        return _NOTHING

    @property
    def terminated(self) -> bool:
        return self._terminated

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _start_probe(self) -> TokenAction:
        self._started = True
        self.probes_started += 1
        self._color[0] = WHITE
        if self.nranks == 1:
            # Ring of one: rank 0 idle and white proves termination.
            self._terminated = True
            return TokenAction(terminated=True)
        return TokenAction(send_to=1, send_color=WHITE)

    def _release(self, rank: int) -> TokenAction:
        """Rank ``rank`` is idle and holds the token: act on it."""
        self._holds_token[rank] = False
        color = self._held_color[rank]
        if rank == 0:
            if color == WHITE and self._color[0] == WHITE:
                self._terminated = True
                return TokenAction(terminated=True)
            # Failed probe: bleach and go again.
            self.probes_started += 1
            self._color[0] = WHITE
            return TokenAction(send_to=1, send_color=WHITE)
        out_color = BLACK if self._color[rank] == BLACK else color
        self._color[rank] = WHITE
        self.tokens_forwarded += 1
        return TokenAction(
            send_to=(rank + 1) % self.nranks, send_color=out_color
        )

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nranks:
            raise TerminationError(
                f"rank {rank} out of range [0, {self.nranks})"
            )
