"""Cluster assembly and the simulation main loop.

:class:`Cluster` wires a :class:`~repro.core.config.WorkStealingConfig`
into a runnable job: a placement (topology + allocation + latency
matrix), one :class:`~repro.sim.worker.Worker` per rank, the
termination ring and the event queue — then runs it to completion.

The cluster is also the workers' transport: it timestamps sends,
applies NIC contention and wire latency, and routes token/finish
traffic to the termination detector.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass


from repro.core.config import WorkStealingConfig
from repro.core.tracing import TraceRecorder
from repro.errors import SimulationError, TerminationError
from repro.net.allocation import Placement, build_placement
from repro.net.contention import NicContention
from repro.protocol.factory import build_plan, make_worker
from repro.sim.clock import ClockSkewModel
from repro.sim.engine import EVT_EXEC, EVT_MSG, EventQueue
from repro.sim.messages import (
    TAG_STEAL_RESPONSE,
    TAG_TOKEN,
    Finish,
    Token,
)
from repro.sim.termination import DijkstraTermination, TokenAction
from repro.sim.worker import Worker, WorkerStatus
from repro.trace.events import EV_TOKEN, EventRecorder
from repro.uts.tree import TreeGenerator

__all__ = ["Cluster", "SimOutcome"]


@dataclass
class SimOutcome:
    """Raw output of one simulation (refined by ``repro.ws.results``)."""

    config: WorkStealingConfig
    placement: Placement
    workers: list[Worker]
    recorders: list[TraceRecorder] | None
    clock: ClockSkewModel
    total_time: float
    events_processed: int
    messages_dropped: int
    probes_started: int
    #: Structured steal-event recorders (``config.event_trace``).
    event_recorders: list[EventRecorder] | None = None

    @property
    def total_nodes(self) -> int:
        return sum(w.nodes_processed for w in self.workers)


class Cluster:
    """A simulated job: config -> placement -> workers -> run."""

    def __init__(self, config: WorkStealingConfig, max_events: int | None = None):
        self.config = config
        assert not isinstance(config.allocation, str)
        self.placement = build_placement(
            config.nranks,
            config.allocation,
            latency_model=config.latency_model,
            topology_factory=config.topology_factory,
        )
        self._latency = self.placement.latency
        self._latency_value = self._latency.value
        self.engine = (
            EventQueue(max_events) if max_events is not None else EventQueue()
        )
        self.termination = DijkstraTermination(config.nranks)
        self.clock = ClockSkewModel(
            config.nranks, std=config.clock_skew_std, seed=config.seed
        )
        self.nic = NicContention(
            self.placement.rank_nodes, service_time=config.nic_service_time
        )
        self.recorders = (
            [TraceRecorder() for _ in range(config.nranks)]
            if config.trace
            else None
        )
        self.event_recorders = (
            [
                EventRecorder(config.event_trace_capacity)
                for _ in range(config.nranks)
            ]
            if config.event_trace
            else None
        )

        assert not isinstance(config.rng_backend, str)
        generator = TreeGenerator(config.tree, config.rng_backend)
        assert not isinstance(config.selector, str)
        assert not isinstance(config.steal_policy, str)
        plan = build_plan(config, self.placement)
        self.workers = [
            make_worker(
                rank,
                config,
                self.placement,
                plan,
                generator,
                transport=self,
                trace=self.recorders[rank] if self.recorders else None,
                events=(
                    self.event_recorders[rank]
                    if self.event_recorders
                    else None
                ),
            )
            for rank in range(config.nranks)
        ]

        self._finishing = False
        self._messages_dropped = 0
        self._node_budget = config.node_cap
        self._nodes_total = 0
        self._nic_enabled = self.nic.enabled

    # ------------------------------------------------------------------
    # Transport interface (used by workers)
    # ------------------------------------------------------------------

    def send(self, src: int, dst: int, payload: object, when: float) -> None:
        """Ship ``payload`` from ``src`` to ``dst``, entering the NIC at
        ``when``; delivery adds wire latency and payload transfer time."""
        if self._finishing:
            # The run is over; in-flight control traffic is dropped,
            # like an MPI job tearing down.
            self._messages_dropped += 1
            return
        wire = self._latency_value(src, dst)
        if (
            getattr(payload, "tag", None) == TAG_STEAL_RESPONSE
            and payload.chunks is not None
        ):
            wire += payload.nodes * self.config.transfer_time_per_node
        if self._nic_enabled:
            depart = self.nic.inject(src, when)
            arrival = self.nic.deliver(dst, depart + wire)
        else:
            arrival = when + wire
        self.engine.push(arrival, EVT_MSG, dst, payload, src)

    def schedule_exec(self, rank: int, when: float) -> None:
        # Inlined EventQueue.push: one EXEC event per work quantum
        # makes this the most-called transport method by far.
        engine = self.engine
        if when < engine.now:
            raise SimulationError(
                f"event scheduled at {when} before current time {engine.now}"
            )
        rs = engine._rank_seq
        seq = rs.get(rank, 0)
        rs[rank] = seq + 1
        heapq.heappush(engine._heap, (when, rank, seq, EVT_EXEC, rank, None))

    def rank_became_idle(self, rank: int, when: float) -> None:
        self._dispatch_token_action(rank, self.termination.rank_idle(rank), when)

    def work_sent(self, rank: int) -> None:
        self.termination.work_sent(rank)

    def nodes_executed(self, n: int) -> None:
        """Workers report expanded nodes; enforces the node budget O(1)."""
        self._nodes_total += n
        if self._nodes_total > self._node_budget:
            raise SimulationError(
                f"run exceeded node cap {self._node_budget}"
            )

    def local_time(self, rank: int, true_time: float) -> float:
        return self.clock.local_time(rank, true_time)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> SimOutcome:
        """Run the job to termination and return the raw outcome."""
        for worker in self.workers:
            worker.start(0.0)

        # Hot loop: EventQueue.pop is inlined (heap access + clock
        # advance), dispatch is on integer tags, and the node budget is
        # enforced incrementally through ``nodes_executed`` (the old
        # per-1024-events re-sum over all workers is gone).
        engine = self.engine
        heap = engine._heap
        heappop = heapq.heappop
        workers = self.workers
        max_events = engine._max_events
        processed = engine._processed
        event_recorders = self.event_recorders
        try:
            while heap:
                time, _pusher, _seq, kind, rank, payload = heappop(heap)
                engine.now = time
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events "
                        "(livelock or runaway configuration?)"
                    )
                if kind == EVT_EXEC:
                    workers[rank].on_exec(time)
                elif payload.tag == TAG_TOKEN:
                    worker = workers[rank]
                    # Termination-wave progress (rare: one event per
                    # token hop, far off the EXEC/steal hot paths).
                    if event_recorders is not None:
                        event_recorders[rank].append(
                            time, EV_TOKEN, payload.color
                        )
                    action = self.termination.token_arrived(
                        rank, payload.color, worker.status is WorkerStatus.WAITING
                    )
                    self._dispatch_token_action(rank, action, time)
                else:
                    workers[rank].on_message(time, payload)
        finally:
            engine._processed = processed

        if sum(w.nodes_processed for w in self.workers) > self._node_budget:
            raise SimulationError(
                f"run exceeded node cap {self._node_budget}"
            )
        if not self.termination.terminated:
            raise TerminationError(
                "event queue drained before termination was detected"
            )
        for worker in self.workers:
            if worker.status is not WorkerStatus.DONE:
                raise TerminationError(
                    f"rank {worker.rank} never received Finish"
                )
            if not worker.stack.is_empty:
                raise TerminationError(
                    f"rank {worker.rank} terminated holding "
                    f"{worker.stack.size} nodes"
                )
        sent = sum(w.nodes_sent for w in self.workers)
        received = sum(w.nodes_received for w in self.workers)
        if sent != received:
            raise TerminationError(
                f"work lost in flight: {sent} nodes sent but "
                f"{received} received"
            )

        total_time = max(w.finish_time for w in self.workers if w.finish_time is not None)
        return SimOutcome(
            config=self.config,
            placement=self.placement,
            workers=self.workers,
            recorders=self.recorders,
            clock=self.clock,
            total_time=total_time,
            events_processed=self.engine.processed,
            messages_dropped=self._messages_dropped,
            probes_started=self.termination.probes_started,
            event_recorders=self.event_recorders,
        )

    # ------------------------------------------------------------------
    # Termination plumbing
    # ------------------------------------------------------------------

    def _dispatch_token_action(
        self, src: int, action: TokenAction, when: float
    ) -> None:
        if action.terminated:
            self._broadcast_finish(when)
        elif action.sends:
            assert action.send_color is not None and action.send_to is not None
            self.send(src, action.send_to, Token(action.send_color), when)

    def _broadcast_finish(self, when: float) -> None:
        """Rank 0 proved termination: tell everyone, drop the rest."""
        dropped = self.engine.clear()
        self._messages_dropped += dropped
        self._finishing = True
        self.workers[0].on_message(when, Finish())
        row0 = self._latency.row(0)
        for rank in range(1, self.config.nranks):
            self.engine.push(
                when + row0[rank], EVT_MSG, rank, Finish(), 0
            )
