"""Discrete-event simulation of a message-passing cluster.

This subpackage replaces the K Computer: simulated MPI ranks run the
reference UTS work-stealing algorithm, exchanging messages whose
delivery times come from the :mod:`repro.net` latency models.

Modules
-------
``engine``
    The event queue and simulation loop primitives.
``messages``
    Message types of the steal protocol and termination ring.
``worker``
    The per-rank state machine: quantum execution, polling, steal
    protocol, activity tracing.
``termination``
    Dijkstra-style token-ring distributed termination detection.
``clock``
    Per-rank clock skew injection (and its correction).
``cluster``
    Assembles placement + workers + engine and runs a job.
"""

from repro.sim.engine import EventQueue, EVT_EXEC, EVT_MSG
from repro.sim.messages import StealRequest, StealResponse, Token, Finish
from repro.sim.termination import DijkstraTermination, TokenAction
from repro.sim.clock import ClockSkewModel
from repro.sim.worker import Worker, WorkerStatus
from repro.sim.cluster import Cluster, SimOutcome

__all__ = [
    "EventQueue",
    "EVT_EXEC",
    "EVT_MSG",
    "StealRequest",
    "StealResponse",
    "Token",
    "Finish",
    "DijkstraTermination",
    "TokenAction",
    "ClockSkewModel",
    "Worker",
    "WorkerStatus",
    "Cluster",
    "SimOutcome",
]
