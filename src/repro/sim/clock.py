"""Per-rank clock skew.

The paper's traces are wall-clock timestamps from thousands of nodes
whose clocks are not perfectly synchronised: "Starting times for each
processes were recorded and the trace modified to account for clock
skew" (§III).  The simulator reproduces that pipeline: workers stamp
trace events with their *local* (skewed) clock, and the results module
corrects the trace with the recorded offsets — tests assert the
correction restores the true timeline exactly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ClockSkewModel"]


class ClockSkewModel:
    """Gaussian per-rank clock offsets.

    Parameters
    ----------
    nranks:
        Number of ranks.
    std:
        Standard deviation of the offsets in seconds; 0 disables skew.
    seed:
        Offsets are deterministic given (nranks, std, seed).
    """

    def __init__(self, nranks: int, std: float = 0.0, seed: int = 0):
        if nranks < 1:
            raise ConfigurationError(f"need at least 1 rank, got {nranks}")
        if std < 0:
            raise ConfigurationError(f"std must be >= 0, got {std}")
        self.nranks = nranks
        self.std = float(std)
        if std == 0.0:
            self.offsets = np.zeros(nranks, dtype=np.float64)
        else:
            rng = np.random.default_rng(np.random.SeedSequence([seed, 0xC10C]))
            self.offsets = rng.normal(0.0, std, size=nranks)

    @property
    def enabled(self) -> bool:
        return self.std > 0.0

    def local_time(self, rank: int, true_time: float) -> float:
        """What rank ``rank``'s clock reads at global time ``true_time``."""
        return true_time + float(self.offsets[rank])
