"""Per-rank execution core of the simulated work-stealing scheduler.

Faithful port of the reference ``mpi_workstealing.c`` behaviour the
paper studies (§II-A, Algorithm 1):

* work items are tree nodes managed in fixed-size chunks; the first
  chunk is private, thieves take whole chunks from the bottom;
* between every ``poll_interval`` node expansions the worker polls for
  messages; pending steal requests are answered there — the victim
  "stop[s] working on its queue to package work and send it to the
  stealer" (no work-first principle);
* an empty stack starts a *work-discovery session*: the victim
  selector proposes victims one at a time, one outstanding request per
  thief, until work arrives or the termination ring fires.

The worker owns only *execution*: the stack, quantum expansion
(``on_exec``/``run_quanta``), the activity trace and the clock
plumbing.  Everything about finding and moving work — the idle
transition, victim draws, every protocol message, session accounting —
lives in the composed :class:`repro.protocol.StealProtocol`; the
steal counters tests and results read off the worker are read-only
views onto it.

A worker never touches the event queue or other workers directly; it
talks to the cluster through a small transport interface
(:class:`Transport`), which keeps the state machine unit-testable.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.core.steal_policy import StealPolicy
from repro.core.tracing import TraceRecorder
from repro.core.victim import VictimSelector
from repro.errors import SimulationError
from repro.protocol.core import ProtocolPlan, StealProtocol
from repro.protocol.status import WorkerStatus
from repro.trace.events import EventRecorder
from repro.uts.stack import ChunkedStack
from repro.uts.tree import SCALAR_BATCH_CUTOFF, TreeGenerator

__all__ = ["WorkerStatus", "Transport", "Worker"]

#: Plan used when a worker is constructed without one (unit tests,
#: single-purpose harnesses): baseline request/response stealing.
_DEFAULT_PLAN = ProtocolPlan()


class Transport(Protocol):
    """What a worker needs from the cluster."""

    def send(self, src: int, dst: int, payload: object, when: float) -> None:
        """Deliver ``payload`` from ``src`` to ``dst``, sent at ``when``."""

    def schedule_exec(self, rank: int, when: float) -> None:
        """Schedule the next poll boundary of ``rank`` at ``when``."""

    def rank_became_idle(self, rank: int, when: float) -> None:
        """Termination hook: ``rank`` ran out of work at ``when``."""

    def work_sent(self, rank: int) -> None:
        """Termination hook: ``rank`` sent a work message."""

    def local_time(self, rank: int, true_time: float) -> float:
        """Skewed clock reading used for trace timestamps."""


class Worker:
    """One simulated MPI rank (execution core + composed protocol)."""

    __slots__ = (
        "rank",
        "nranks",
        "generator",
        "selector",
        "policy",
        "transport",
        "poll_interval",
        "per_node_time",
        "steal_service_time",
        "stack",
        "status",
        "trace",
        "events",
        "nodes_processed",
        "finish_time",
        "protocol",
        "pending",
        "_scalar_path",
        "_notify_nodes",
        "_pop_list",
        "_push_list",
        "_children_list",
        "_fused_expand",
        "_schedule_exec",
        "_plain_serve",
        "_serve",
    )

    def __init__(
        self,
        rank: int,
        nranks: int,
        generator: TreeGenerator,
        selector: VictimSelector | None,
        policy: StealPolicy,
        transport: Transport,
        chunk_size: int,
        poll_interval: int,
        per_node_time: float,
        steal_service_time: float,
        trace: TraceRecorder | None = None,
        events: EventRecorder | None = None,
        plan: ProtocolPlan | None = None,
    ):
        if nranks > 1 and selector is None:
            raise SimulationError("multi-rank worker needs a victim selector")
        self.rank = rank
        self.nranks = nranks
        self.generator = generator
        self.selector = selector
        self.policy = policy
        self.transport = transport
        self.poll_interval = poll_interval
        self.per_node_time = per_node_time
        self.steal_service_time = steal_service_time

        self.stack = ChunkedStack(chunk_size)
        self.status = WorkerStatus.RUNNING  # resolved properly in start()
        self.trace = trace
        # Structured steal-event sink (repro.trace); None when event
        # tracing is off, so every hook is one load + one None test on
        # steal edges only — the EXEC expansion path never sees it.
        self.events = events

        self.nodes_processed = 0
        self.finish_time: float | None = None

        # The steal lifecycle lives in the protocol layer; the worker
        # aliases the two pieces the engines' fast paths reason about.
        self.protocol = protocol = StealProtocol(
            self, plan if plan is not None else _DEFAULT_PLAN
        )
        #: Queued steal requests (the protocol's own list object; it is
        #: mutated in place, never rebound, so the alias stays live).
        self.pending = protocol.pending
        # Plain-serving protocols do nothing at a poll boundary with an
        # empty queue; the engines skip the call (and burst through
        # quanta) only then.
        self._plain_serve = protocol.plain_serve
        self._serve = protocol.serve_pending

        # Hot-path plumbing.  The list-based expansion avoids ndarray
        # traffic on the tiny per-quantum batches the simulator runs
        # (bit-identical results; see ``TreeGenerator.children_list``).
        self._scalar_path = (
            generator.supports_list_path
            and poll_interval <= SCALAR_BATCH_CUTOFF
        )
        # Optional transport hook: the cluster keeps a running node
        # total for O(1) budget checks; bare test transports omit it.
        self._notify_nodes = getattr(transport, "nodes_executed", None)
        # Bound-method caches for the per-quantum call chain.  The
        # stack and generator are fixed for the worker's lifetime;
        # ``send`` is deliberately NOT cached (tests patch it).
        self._pop_list = self.stack.pop_batch_list
        self._push_list = self.stack.push_batch_list
        self._children_list = generator.children_list
        self._fused_expand = self.stack.expand_quantum
        self._schedule_exec = transport.schedule_exec

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, now: float) -> None:
        """Initialise at simulation start: rank 0 holds the root."""
        if self.rank == 0:
            state, depth = self.generator.root()
            self.stack.push_batch(
                np.array([state], dtype=np.uint64),
                np.array([depth], dtype=np.int32),
            )
            self._record(now, active=True)
            self.status = WorkerStatus.RUNNING
            self.transport.schedule_exec(self.rank, now)
        else:
            self._go_idle(now)

    # ------------------------------------------------------------------
    # Event handlers (called by the cluster)
    # ------------------------------------------------------------------

    def on_exec(self, now: float) -> None:
        """Poll boundary: answer queued steals, then work or search."""
        if self.status is not WorkerStatus.RUNNING:
            raise SimulationError(
                f"rank {self.rank}: EXEC while {self.status.name}"
            )
        if self._plain_serve and not self.pending:
            t = now
        else:
            t = self._serve(now)
        if self.stack._chunks:
            if self._scalar_path:
                # Fused quantum on the scalar fast path — identical
                # semantics to ``_expand_quantum``, one call on the
                # simulator's hottest edge.
                n = self._fused_expand(self.poll_interval, self._children_list)
                self.nodes_processed += n
                notify = self._notify_nodes
                if notify is not None:
                    notify(n)
                t_next = t + n * self.per_node_time
            else:
                t_next = t + self._expand_quantum()
            self._schedule_exec(self.rank, t_next)
        else:
            self._go_idle(t)

    def run_quanta(self, now: float, t_stop: float) -> tuple[float, int]:
        """Burst-execute chained pure-compute quanta (sharded engine).

        Equivalent to the event loop delivering this worker's EXEC
        chain one event at a time, for as long as each quantum starts
        strictly before ``t_stop`` and leaves the stack non-empty.  The
        caller materialises the next EXEC event at the returned time,
        so idle transitions, steal serving and every send stay on the
        ordered event path — the burst touches only this worker's stack
        and counters, which is what makes it commute with other ranks'
        events inside a lookahead window.

        Only valid for a RUNNING plain worker (``_plain_serve``) with
        no pending requests and a non-empty stack; the first quantum
        corresponds to an EXEC event already popped by the caller.
        Returns ``(next_exec_time, quanta_run)``.
        """
        if self._scalar_path:
            t, nq, nodes = self.stack.expand_quanta(
                self.poll_interval,
                self._children_list,
                now,
                t_stop,
                self.per_node_time,
            )
        else:
            stack = self.stack
            chunks = stack._chunks
            poll = self.poll_interval
            pnt = self.per_node_time
            generator = self.generator
            t = now
            nq = 0
            nodes = 0
            while True:
                states, depths = stack.pop_batch(poll)
                n = len(states)
                child_states, child_depths, _counts = generator.children_batch(
                    states, depths
                )
                if child_states.size:
                    stack.push_batch(child_states, child_depths)
                nq += 1
                nodes += n
                t += n * pnt
                if not chunks or t >= t_stop:
                    break
        self.nodes_processed += nodes
        notify = self._notify_nodes
        if notify is not None:
            notify(nodes)
        return t, nq

    def on_message(self, now: float, msg: object) -> None:
        """A message arrived at this rank at (true) time ``now``."""
        self.protocol.on_message(now, msg)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _expand_quantum(self) -> float:
        """Expand up to ``poll_interval`` nodes; return the time spent.

        Generic (array) path; ``on_exec`` inlines the equivalent
        list-based expansion when :attr:`_scalar_path` is set.
        """
        if self._scalar_path:
            stack = self.stack
            states, depths = stack.pop_batch_list(self.poll_interval)
            n = len(states)
            child_states, child_depths = self.generator.children_list(
                states, depths
            )
            if child_states:
                stack.push_batch_list(child_states, child_depths)
        else:
            states, depths = self.stack.pop_batch(self.poll_interval)
            n = len(states)
            child_states, child_depths, _counts = self.generator.children_batch(
                states, depths
            )
            if child_states.size:
                self.stack.push_batch(child_states, child_depths)
        self.nodes_processed += n
        if self._notify_nodes is not None:
            self._notify_nodes(n)
        return n * self.per_node_time

    def _go_idle(self, t: float) -> None:
        """Stack exhausted: record the transition and start searching."""
        # Ranks that never had work have no active->inactive edge; their
        # trace stays empty until they first receive work.
        if self._was_active():
            self._record(t, active=False)
        self.protocol.on_idle(t)

    def _was_active(self) -> bool:
        return self.trace is None or (
            len(self.trace.states) > 0 and self.trace.states[-1]
        )

    def _record(self, true_time: float, active: bool) -> None:
        if self.trace is not None:
            self.trace.record(
                self.transport.local_time(self.rank, true_time), active
            )

    # ------------------------------------------------------------------
    # Protocol views (read-only; the protocol owns the state)
    # ------------------------------------------------------------------

    @property
    def sessions(self):
        return self.protocol.sessions

    @property
    def search_time(self) -> float:
        """Total time this rank spent in work-discovery sessions."""
        return self.protocol.search_time

    @property
    def steal_requests_sent(self) -> int:
        return self.protocol.steal_requests_sent

    @property
    def consecutive_failed_steals(self) -> int:
        return self.protocol.consecutive_failed_steals

    @property
    def failed_steals(self) -> int:
        return self.protocol.failed_steals

    @property
    def successful_steals(self) -> int:
        return self.protocol.successful_steals

    @property
    def requests_served(self) -> int:
        return self.protocol.requests_served

    @property
    def requests_denied(self) -> int:
        return self.protocol.requests_denied

    @property
    def requests_forwarded(self) -> int:
        return self.protocol.requests_forwarded

    @property
    def forwards_served(self) -> int:
        return self.protocol.forwards_served

    @property
    def chunks_sent(self) -> int:
        return self.protocol.chunks_sent

    @property
    def nodes_sent(self) -> int:
        return self.protocol.nodes_sent

    @property
    def chunks_received(self) -> int:
        return self.protocol.chunks_received

    @property
    def nodes_received(self) -> int:
        return self.protocol.nodes_received

    @property
    def service_time(self) -> float:
        return self.protocol.service_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Worker(rank={self.rank}, status={self.status.name}, "
            f"stack={self.stack.size}, processed={self.nodes_processed})"
        )
