"""Per-rank state machine of the simulated work-stealing scheduler.

Faithful port of the reference ``mpi_workstealing.c`` behaviour the
paper studies (§II-A, Algorithm 1):

* work items are tree nodes managed in fixed-size chunks; the first
  chunk is private, thieves take whole chunks from the bottom;
* between every ``poll_interval`` node expansions the worker polls for
  messages; pending steal requests are answered there — the victim
  "stop[s] working on its queue to package work and send it to the
  stealer" (no work-first principle);
* an empty stack starts a *work-discovery session*: the victim
  selector proposes victims one at a time, one outstanding request per
  thief, until work arrives or the termination ring fires.

A worker never touches the event queue or other workers directly; it
talks to the cluster through a small transport interface
(:class:`Transport`), which keeps the state machine unit-testable.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Protocol

import numpy as np

from repro.core.sessions import Session
from repro.core.steal_policy import StealPolicy
from repro.core.tracing import TraceRecorder
from repro.core.victim import VictimSelector
from repro.errors import SimulationError
from repro.sim.messages import (
    TAG_FINISH,
    TAG_STEAL_REQUEST,
    TAG_STEAL_RESPONSE,
    StealRequest,
    StealResponse,
)
from repro.trace.events import (
    EV_DENY,
    EV_FINISH,
    EV_SERVE,
    EV_STEAL_FAIL,
    EV_STEAL_OK,
    EV_STEAL_SENT,
    EV_VICTIM_DRAW,
    EventRecorder,
)
from repro.uts.stack import ChunkedStack
from repro.uts.tree import SCALAR_BATCH_CUTOFF, TreeGenerator

__all__ = ["WorkerStatus", "Transport", "Worker"]


class WorkerStatus(IntEnum):
    """Lifecycle of a rank."""

    RUNNING = 0  # has work; an EXEC event is outstanding
    WAITING = 1  # empty stack; one steal request outstanding
    DONE = 2  # received the termination broadcast


class Transport(Protocol):
    """What a worker needs from the cluster."""

    def send(self, src: int, dst: int, payload: object, when: float) -> None:
        """Deliver ``payload`` from ``src`` to ``dst``, sent at ``when``."""

    def schedule_exec(self, rank: int, when: float) -> None:
        """Schedule the next poll boundary of ``rank`` at ``when``."""

    def rank_became_idle(self, rank: int, when: float) -> None:
        """Termination hook: ``rank`` ran out of work at ``when``."""

    def work_sent(self, rank: int) -> None:
        """Termination hook: ``rank`` sent a work message."""

    def local_time(self, rank: int, true_time: float) -> float:
        """Skewed clock reading used for trace timestamps."""


class Worker:
    """One simulated MPI rank."""

    __slots__ = (
        "rank",
        "nranks",
        "generator",
        "selector",
        "policy",
        "transport",
        "poll_interval",
        "per_node_time",
        "steal_service_time",
        "stack",
        "status",
        "pending",
        "trace",
        "events",
        "nodes_processed",
        "steal_requests_sent",
        "consecutive_failed_steals",
        "_escalate_after",
        "failed_steals",
        "successful_steals",
        "requests_served",
        "requests_denied",
        "chunks_sent",
        "nodes_sent",
        "chunks_received",
        "nodes_received",
        "service_time",
        "finish_time",
        "sessions",
        "_session_start",
        "_session_attempts",
        "_scalar_path",
        "_notify_nodes",
        "_pop_list",
        "_push_list",
        "_children_list",
        "_fused_expand",
        "_schedule_exec",
        "_plain_serve",
    )

    def __init__(
        self,
        rank: int,
        nranks: int,
        generator: TreeGenerator,
        selector: VictimSelector | None,
        policy: StealPolicy,
        transport: Transport,
        chunk_size: int,
        poll_interval: int,
        per_node_time: float,
        steal_service_time: float,
        trace: TraceRecorder | None = None,
        events: EventRecorder | None = None,
    ):
        if nranks > 1 and selector is None:
            raise SimulationError("multi-rank worker needs a victim selector")
        self.rank = rank
        self.nranks = nranks
        self.generator = generator
        self.selector = selector
        self.policy = policy
        self.transport = transport
        self.poll_interval = poll_interval
        self.per_node_time = per_node_time
        self.steal_service_time = steal_service_time

        self.stack = ChunkedStack(chunk_size)
        self.status = WorkerStatus.RUNNING  # resolved properly in start()
        self.pending: list[StealRequest] = []
        self.trace = trace
        # Structured steal-event sink (repro.trace); None when event
        # tracing is off, so every hook is one load + one None test on
        # steal edges only — the EXEC expansion path never sees it.
        self.events = events

        # Counters surfaced by RunResult.
        self.nodes_processed = 0
        self.steal_requests_sent = 0
        self.failed_steals = 0
        # Thief-side failure streak, reset on success or on regaining
        # work.  Drives steal-amount escalation when the (stateless,
        # process-shared) policy advertises an ``escalate_after``.
        self.consecutive_failed_steals = 0
        self._escalate_after = getattr(policy, "escalate_after", None)
        self.successful_steals = 0
        self.requests_served = 0
        self.requests_denied = 0
        self.chunks_sent = 0
        self.nodes_sent = 0
        self.chunks_received = 0
        self.nodes_received = 0
        self.service_time = 0.0
        self.finish_time: float | None = None

        self.sessions: list[Session] = []
        self._session_start: float | None = None
        self._session_attempts = 0

        # Hot-path plumbing.  The list-based expansion avoids ndarray
        # traffic on the tiny per-quantum batches the simulator runs
        # (bit-identical results; see ``TreeGenerator.children_list``).
        self._scalar_path = (
            generator.supports_list_path
            and poll_interval <= SCALAR_BATCH_CUTOFF
        )
        # Optional transport hook: the cluster keeps a running node
        # total for O(1) budget checks; bare test transports omit it.
        self._notify_nodes = getattr(transport, "nodes_executed", None)
        # Bound-method caches for the per-quantum call chain.  The
        # stack and generator are fixed for the worker's lifetime;
        # ``send`` is deliberately NOT cached (tests patch it).
        self._pop_list = self.stack.pop_batch_list
        self._push_list = self.stack.push_batch_list
        self._children_list = generator.children_list
        self._fused_expand = self.stack.expand_quantum
        self._schedule_exec = transport.schedule_exec
        # Subclasses that override _serve_pending (lifelines) do work
        # even with no pending requests, so only plain workers may
        # skip the call when the queue is empty.
        self._plain_serve = type(self)._serve_pending is Worker._serve_pending

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, now: float) -> None:
        """Initialise at simulation start: rank 0 holds the root."""
        if self.rank == 0:
            state, depth = self.generator.root()
            self.stack.push_batch(
                np.array([state], dtype=np.uint64),
                np.array([depth], dtype=np.int32),
            )
            self._record(now, active=True)
            self.status = WorkerStatus.RUNNING
            self.transport.schedule_exec(self.rank, now)
        else:
            self._go_idle(now)

    # ------------------------------------------------------------------
    # Event handlers (called by the cluster)
    # ------------------------------------------------------------------

    def on_exec(self, now: float) -> None:
        """Poll boundary: answer queued steals, then work or search."""
        if self.status is not WorkerStatus.RUNNING:
            raise SimulationError(
                f"rank {self.rank}: EXEC while {self.status.name}"
            )
        if self._plain_serve and not self.pending:
            t = now
        else:
            t = self._serve_pending(now)
        if self.stack._chunks:
            if self._scalar_path:
                # Fused quantum on the scalar fast path — identical
                # semantics to ``_expand_quantum``, one call on the
                # simulator's hottest edge.
                n = self._fused_expand(self.poll_interval, self._children_list)
                self.nodes_processed += n
                notify = self._notify_nodes
                if notify is not None:
                    notify(n)
                t_next = t + n * self.per_node_time
            else:
                t_next = t + self._expand_quantum()
            self._schedule_exec(self.rank, t_next)
        else:
            self._go_idle(t)

    def run_quanta(self, now: float, t_stop: float) -> tuple[float, int]:
        """Burst-execute chained pure-compute quanta (sharded engine).

        Equivalent to the event loop delivering this worker's EXEC
        chain one event at a time, for as long as each quantum starts
        strictly before ``t_stop`` and leaves the stack non-empty.  The
        caller materialises the next EXEC event at the returned time,
        so idle transitions, steal serving and every send stay on the
        ordered event path — the burst touches only this worker's stack
        and counters, which is what makes it commute with other ranks'
        events inside a lookahead window.

        Only valid for a RUNNING plain worker (``_plain_serve``) with
        no pending requests and a non-empty stack; the first quantum
        corresponds to an EXEC event already popped by the caller.
        Returns ``(next_exec_time, quanta_run)``.
        """
        if self._scalar_path:
            t, nq, nodes = self.stack.expand_quanta(
                self.poll_interval,
                self._children_list,
                now,
                t_stop,
                self.per_node_time,
            )
        else:
            stack = self.stack
            chunks = stack._chunks
            poll = self.poll_interval
            pnt = self.per_node_time
            generator = self.generator
            t = now
            nq = 0
            nodes = 0
            while True:
                states, depths = stack.pop_batch(poll)
                n = len(states)
                child_states, child_depths, _counts = generator.children_batch(
                    states, depths
                )
                if child_states.size:
                    stack.push_batch(child_states, child_depths)
                nq += 1
                nodes += n
                t += n * pnt
                if not chunks or t >= t_stop:
                    break
        self.nodes_processed += nodes
        notify = self._notify_nodes
        if notify is not None:
            notify(nodes)
        return t, nq

    def on_message(self, now: float, msg: object) -> None:
        """A message arrived at this rank at (true) time ``now``."""
        if self.status is WorkerStatus.DONE:
            return  # post-termination stragglers are dropped
        tag = getattr(msg, "tag", None)
        if tag == TAG_STEAL_REQUEST:
            if self.status is WorkerStatus.RUNNING:
                self.pending.append(msg)
            else:
                # Idle ranks have nothing to give; deny immediately.
                self.requests_denied += 1
                if self.events is not None:
                    self.events.append(now, EV_DENY, msg.thief)
                self.transport.send(
                    self.rank, msg.thief, StealResponse(self.rank, None), now
                )
        elif tag == TAG_STEAL_RESPONSE:
            self._on_response(now, msg)
        elif tag == TAG_FINISH:
            self._on_finish(now)
        else:
            raise SimulationError(
                f"rank {self.rank}: unexpected message {msg!r}"
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _serve_pending(self, now: float) -> float:
        """Answer queued steal requests; returns the advanced local time."""
        t = now
        if not self.pending:
            return t
        ev = self.events
        for req in self.pending:
            stealable = self.stack.stealable_chunks
            take = (
                self.policy.chunks_for_request(stealable, req.escalated)
                if stealable
                else 0
            )
            if take > 0:
                # Packaging work costs the victim compute time.
                t += self.steal_service_time
                self.service_time += self.steal_service_time
                chunks = self.stack.steal_chunks(take)
                nodes = sum(c.size for c in chunks)
                self.requests_served += 1
                self.chunks_sent += len(chunks)
                self.nodes_sent += nodes
                if ev is not None:
                    ev.append(t, EV_SERVE, req.thief, nodes)
                self.transport.work_sent(self.rank)
                self.transport.send(
                    self.rank, req.thief, StealResponse(self.rank, chunks), t
                )
            else:
                self.requests_denied += 1
                if ev is not None:
                    ev.append(t, EV_DENY, req.thief)
                self.transport.send(
                    self.rank, req.thief, StealResponse(self.rank, None), t
                )
        self.pending.clear()
        return t

    def _expand_quantum(self) -> float:
        """Expand up to ``poll_interval`` nodes; return the time spent.

        Generic (array) path; ``on_exec`` inlines the equivalent
        list-based expansion when :attr:`_scalar_path` is set.
        """
        if self._scalar_path:
            stack = self.stack
            states, depths = stack.pop_batch_list(self.poll_interval)
            n = len(states)
            child_states, child_depths = self.generator.children_list(
                states, depths
            )
            if child_states:
                stack.push_batch_list(child_states, child_depths)
        else:
            states, depths = self.stack.pop_batch(self.poll_interval)
            n = len(states)
            child_states, child_depths, _counts = self.generator.children_batch(
                states, depths
            )
            if child_states.size:
                self.stack.push_batch(child_states, child_depths)
        self.nodes_processed += n
        if self._notify_nodes is not None:
            self._notify_nodes(n)
        return n * self.per_node_time

    def _go_idle(self, t: float) -> None:
        """Stack exhausted: record the transition and start searching."""
        # Ranks that never had work have no active->inactive edge; their
        # trace stays empty until they first receive work.
        if self._was_active():
            self._record(t, active=False)
        self.consecutive_failed_steals = 0
        self.status = WorkerStatus.WAITING
        self._session_start = t
        self._session_attempts = 0
        self.transport.rank_became_idle(self.rank, t)
        if self.nranks > 1:
            self._send_steal_request(t)
        # nranks == 1: termination fires via rank_became_idle.

    def _was_active(self) -> bool:
        return self.trace is None or (
            len(self.trace.states) > 0 and self.trace.states[-1]
        )

    def _send_steal_request(self, t: float) -> None:
        assert self.selector is not None
        victim = self.selector.next_victim()
        self.steal_requests_sent += 1
        self._session_attempts += 1
        escalated = (
            self._escalate_after is not None
            and self.consecutive_failed_steals >= self._escalate_after
        )
        ev = self.events
        if ev is not None:
            ev.append(t, EV_VICTIM_DRAW, victim, self._session_attempts)
            ev.append(t, EV_STEAL_SENT, victim, int(escalated))
        self.transport.send(
            self.rank, victim, StealRequest(self.rank, escalated), t
        )

    def _on_response(self, now: float, msg: StealResponse) -> None:
        if self.status is not WorkerStatus.WAITING:
            raise SimulationError(
                f"rank {self.rank}: steal response while {self.status.name}"
            )
        if msg.has_work:
            assert msg.chunks is not None
            received = self.stack.receive_chunks(msg.chunks)
            self.successful_steals += 1
            self.chunks_received += len(msg.chunks)
            self.nodes_received += received
            if self.events is not None:
                self.events.append(now, EV_STEAL_OK, msg.victim, received)
            if self.selector is not None:
                self.selector.notify(msg.victim, success=True)
            self.consecutive_failed_steals = 0
            self._close_session(now, found_work=True)
            self._record(now, active=True)
            self.status = WorkerStatus.RUNNING
            self.transport.schedule_exec(self.rank, now)
        else:
            self._steal_failed(now, msg.victim)
            self._send_steal_request(now)

    def _steal_failed(self, now: float, victim: int) -> None:
        """Single accounting point for every failed-steal reply.

        All failure paths — the plain resend loop and the lifeline
        quiesce path — must route through here so the counters, the
        EV_STEAL_FAIL trace stream and the selector's
        ``notify(success=False)`` feedback can never diverge (the
        reconciliation test in ``tests/sim`` pins the three together).
        """
        self.failed_steals += 1
        self.consecutive_failed_steals += 1
        if self.events is not None:
            self.events.append(now, EV_STEAL_FAIL, victim)
        if self.selector is not None:
            self.selector.notify(victim, success=False)

    def _on_finish(self, now: float) -> None:
        if self.status is WorkerStatus.RUNNING or not self.stack.is_empty:
            raise SimulationError(
                f"rank {self.rank}: Finish while holding work "
                "(termination detected too early)"
            )
        if self._session_start is not None:
            self._close_session(now, found_work=False)
        if self.events is not None:
            self.events.append(now, EV_FINISH)
        self.status = WorkerStatus.DONE
        self.finish_time = now

    def _close_session(self, end: float, found_work: bool) -> None:
        assert self._session_start is not None
        self.sessions.append(
            Session(
                rank=self.rank,
                start=self._session_start,
                end=end,
                found_work=found_work,
                attempts=self._session_attempts,
            )
        )
        self._session_start = None
        self._session_attempts = 0

    def _record(self, true_time: float, active: bool) -> None:
        if self.trace is not None:
            self.trace.record(
                self.transport.local_time(self.rank, true_time), active
            )

    # ------------------------------------------------------------------

    @property
    def search_time(self) -> float:
        """Total time this rank spent in work-discovery sessions."""
        return sum(s.duration for s in self.sessions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Worker(rank={self.rank}, status={self.status.name}, "
            f"stack={self.stack.size}, processed={self.nodes_processed})"
        )
