"""Messages of the simulated work-stealing protocol.

The protocol mirrors the reference MPI UTS (§II-A of the paper): the
implementation "does not respect the work-first principle.  Indeed, a
process stealing work will in fact post a request to its victim by a
message, and the victim will stop working on its queue to package work
and send it to the stealer."

* :class:`StealRequest` — thief asks a victim for work;
* :class:`StealResponse` — victim answers with chunks (success) or
  ``None`` (failed steal);
* :class:`Token` — the termination-detection token (white/black);
* :class:`Finish` — rank 0's broadcast that the computation is over.
"""

from __future__ import annotations

from repro.uts.stack import Chunk

__all__ = [
    "StealRequest",
    "StealResponse",
    "Token",
    "Finish",
    "LifelineRegister",
    "LifelineDeregister",
    "WHITE",
    "BLACK",
]

WHITE = 0
BLACK = 1


class StealRequest:
    """A steal attempt posted by ``thief``."""

    __slots__ = ("thief",)

    def __init__(self, thief: int):
        self.thief = thief

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StealRequest(thief={self.thief})"


class StealResponse:
    """The victim's answer: ``chunks`` is None for a failed steal."""

    __slots__ = ("victim", "chunks")

    def __init__(self, victim: int, chunks: list[Chunk] | None):
        self.victim = victim
        self.chunks = chunks

    @property
    def has_work(self) -> bool:
        return self.chunks is not None

    @property
    def nodes(self) -> int:
        return sum(c.size for c in self.chunks) if self.chunks else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        what = f"{len(self.chunks)} chunks" if self.chunks else "no work"
        return f"StealResponse(victim={self.victim}, {what})"


class Token:
    """Termination token circulating the ring (see ``termination``)."""

    __slots__ = ("color",)

    def __init__(self, color: int):
        if color not in (WHITE, BLACK):
            raise ValueError(f"token color must be WHITE/BLACK, got {color}")
        self.color = color

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({'white' if self.color == WHITE else 'black'})"


class Finish:
    """Termination broadcast from rank 0."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Finish()"


class LifelineRegister:
    """A starving thief arms its lifeline at a partner (extension)."""

    __slots__ = ("thief",)

    def __init__(self, thief: int):
        self.thief = thief

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LifelineRegister(thief={self.thief})"


class LifelineDeregister:
    """A woken thief disarms its lifelines (extension)."""

    __slots__ = ("thief",)

    def __init__(self, thief: int):
        self.thief = thief

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LifelineDeregister(thief={self.thief})"
