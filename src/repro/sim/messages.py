"""Compatibility shim: the protocol messages moved to
:mod:`repro.protocol.messages`.

The message classes are protocol-domain objects and the steal-protocol
layer must import them without touching the :mod:`repro.sim` package
(whose ``__init__`` imports the worker, which composes the protocol —
a cycle).  Every historical ``repro.sim.messages`` import keeps
working through this re-export.
"""

from repro.protocol.messages import (
    BLACK,
    TAG_FINISH,
    TAG_LIFELINE_DEREGISTER,
    TAG_LIFELINE_REGISTER,
    TAG_STEAL_FORWARD,
    TAG_STEAL_REQUEST,
    TAG_STEAL_RESPONSE,
    TAG_TOKEN,
    WHITE,
    Finish,
    LifelineDeregister,
    LifelineRegister,
    StealForward,
    StealRequest,
    StealResponse,
    Token,
)

__all__ = [
    "StealRequest",
    "StealResponse",
    "StealForward",
    "Token",
    "Finish",
    "LifelineRegister",
    "LifelineDeregister",
    "WHITE",
    "BLACK",
    "TAG_STEAL_REQUEST",
    "TAG_STEAL_RESPONSE",
    "TAG_TOKEN",
    "TAG_FINISH",
    "TAG_LIFELINE_REGISTER",
    "TAG_LIFELINE_DEREGISTER",
    "TAG_STEAL_FORWARD",
]
