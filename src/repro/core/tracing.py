"""Lightweight activity traces of the work-stealing scheduler.

§III of the paper: "Assuming there exists a trace of all processes
indicating the time of each transition from one type of phase to the
other ...".  A process is *active* while its stack holds work
(including time spent answering steal requests) and *inactive* while
it searches for work.

:class:`TraceRecorder` is what a live worker writes into — an
append-only list of ``(time, became_active)`` transitions, "as the
trace only contains a time and the new state at each phase transition,
it is lightweight".  :class:`ActivityTrace` is the post-mortem,
validated, immutable view the metrics operate on, with the clock-skew
adjustment the paper applies ("the trace modified to account for clock
skew").
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError

__all__ = ["TraceRecorder", "ActivityTrace"]


class TraceRecorder:
    """Append-only per-rank transition log.

    The recorder enforces nothing while recording (the hot path must
    stay cheap); :meth:`ActivityTrace.from_recorders` validates.
    """

    __slots__ = ("times", "states")

    def __init__(self) -> None:
        self.times: list[float] = []
        self.states: list[bool] = []

    def record(self, time: float, active: bool) -> None:
        """Log that the rank became active/inactive at ``time``."""
        self.times.append(time)
        self.states.append(active)

    def __len__(self) -> int:
        return len(self.times)


class ActivityTrace:
    """Validated activity trace of a whole run.

    Attributes
    ----------
    nranks:
        Number of ranks traced.
    transitions:
        Per-rank ``(times, states)`` arrays; times non-decreasing and
        states strictly alternating (an active transition follows an
        inactive one and vice versa).
    """

    def __init__(self, transitions: list[tuple[np.ndarray, np.ndarray]]):
        if not transitions:
            raise TraceError("trace must cover at least one rank")
        self.transitions = []
        for rank, (times, states) in enumerate(transitions):
            times = np.asarray(times, dtype=np.float64)
            states = np.asarray(states, dtype=bool)
            if times.shape != states.shape:
                raise TraceError(
                    f"rank {rank}: times/states length mismatch "
                    f"({len(times)} vs {len(states)})"
                )
            # Non-finite timestamps must be rejected explicitly: NaN
            # compares False against everything, so a NaN-tainted
            # trace would sail through the ordering check below and
            # only corrupt the metrics much later.
            if times.size and not np.all(np.isfinite(times)):
                raise TraceError(f"rank {rank}: non-finite timestamps")
            if times.size and np.any(np.diff(times) < 0):
                raise TraceError(f"rank {rank}: times not sorted")
            if states.size > 1 and np.any(states[1:] == states[:-1]):
                raise TraceError(f"rank {rank}: states do not alternate")
            self.transitions.append((times, states))
        self.nranks = len(self.transitions)

    @classmethod
    def from_recorders(cls, recorders: list[TraceRecorder]) -> "ActivityTrace":
        """Assemble and validate a trace from live recorders."""
        return cls(
            [
                (np.array(r.times, dtype=np.float64), np.array(r.states, dtype=bool))
                for r in recorders
            ]
        )

    # ------------------------------------------------------------------
    # Clock skew
    # ------------------------------------------------------------------

    def with_skew(self, offsets: np.ndarray) -> "ActivityTrace":
        """Return a copy with per-rank clock offsets *added*.

        Models what raw traces from unsynchronised node clocks look
        like; :meth:`corrected` undoes it given the measured offsets.
        """
        offsets = np.asarray(offsets, dtype=np.float64)
        if offsets.shape != (self.nranks,):
            raise TraceError(
                f"offsets shape {offsets.shape} != ({self.nranks},)"
            )
        if offsets.size and not np.all(np.isfinite(offsets)):
            raise TraceError("clock offsets must be finite")
        return ActivityTrace(
            [
                (times + offsets[rank], states.copy())
                for rank, (times, states) in enumerate(self.transitions)
            ]
        )

    def corrected(self, offsets: np.ndarray) -> "ActivityTrace":
        """Undo per-rank clock offsets (the paper's skew adjustment)."""
        return self.with_skew(-np.asarray(offsets, dtype=np.float64))

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def active_count_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """Merge all transitions into the step function ``workers(t)``.

        Returns ``(times, counts)``: at any ``t`` in
        ``[times[k], times[k+1])`` exactly ``counts[k]`` ranks are
        active.  Ranks that never logged a transition count as never
        active.
        """
        all_times: list[np.ndarray] = []
        all_deltas: list[np.ndarray] = []
        for times, states in self.transitions:
            if not times.size:
                continue
            all_times.append(times)
            all_deltas.append(np.where(states, 1, -1))
        if not all_times:
            return np.empty(0), np.empty(0, dtype=np.int64)
        times = np.concatenate(all_times)
        deltas = np.concatenate(all_deltas)
        order = np.argsort(times, kind="stable")
        times = times[order]
        deltas = deltas[order]
        counts = np.cumsum(deltas)
        # Collapse simultaneous transitions into the final count.  The
        # comparison is epsilon-tolerant: clock-skew round trips
        # (with_skew + corrected) perturb timestamps by a few ulp, and
        # transitions that were simultaneous before the round trip must
        # still collapse — otherwise zero-width occupancy spikes appear
        # and threshold metrics (max occupancy, SL/EL crossings) flip.
        # 1e-12 s is far below any simulated event spacing (>= ns).
        keep = np.concatenate([np.diff(times) > 1e-12, [True]])
        return times[keep], counts[keep]

    def busy_time(self, rank: int, end_time: float) -> float:
        """Total time ``rank`` spent active in ``[0, end_time]``."""
        times, states = self.transitions[rank]
        busy = 0.0
        current_start: float | None = None
        for t, active in zip(times, states):
            if active:
                current_start = min(float(t), end_time)
            elif current_start is not None:
                busy += min(float(t), end_time) - current_start
                current_start = None
        if current_start is not None:
            busy += max(0.0, end_time - current_start)
        return busy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n_events = sum(len(t) for t, _ in self.transitions)
        return f"ActivityTrace(nranks={self.nranks}, events={n_events})"
