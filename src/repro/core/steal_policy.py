"""Steal-amount policies: how many chunks a successful steal transfers.

The reference UTS steals exactly one chunk (:class:`StealOne`).  §IV-C
of the paper switches to stealing *half the victim's chunks*
(:class:`StealHalf`), citing the classic result that "stealing half
the work of the victim is an optimal strategy [...] stealing half the
work make it possible for a thief to be stolen himself as soon as it
retrieves work".  :class:`StealFraction` generalises both for the
ablation study.

The policy sees only the victim's *stealable* chunk count (all chunks
except the private working chunk) and returns how many to transfer;
the mechanics live in :class:`repro.uts.stack.ChunkedStack`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.core.registry import registry_for
from repro.errors import ConfigurationError

__all__ = [
    "StealPolicy",
    "StealOne",
    "StealHalf",
    "StealFraction",
    "policy_by_name",
]


class StealPolicy(ABC):
    """Decide how many chunks to transfer given the stealable count."""

    name: str = "abstract"

    @abstractmethod
    def chunks_to_steal(self, stealable: int) -> int:
        """Number of chunks to move; 0 iff ``stealable`` is 0.

        Must return a value in ``[0, stealable]``.
        """

    def chunks_for_request(self, stealable: int, escalated: bool = False) -> int:
        """Amount for one concrete request; ``escalated`` marks a thief
        that has been failing repeatedly (or a starving lifeline waiter).

        Static policies ignore the flag; adaptive policies
        (:class:`repro.select.adaptive.AdaptiveStealPolicy`) escalate.
        Policies must stay stateless here — one policy object is shared
        by every worker in a process.
        """
        return self.chunks_to_steal(stealable)

    def _check(self, stealable: int) -> None:
        if stealable < 0:
            raise ConfigurationError(f"stealable must be >= 0, got {stealable}")


class StealOne(StealPolicy):
    """Reference behaviour: a thief takes a single chunk."""

    name = "one"

    def chunks_to_steal(self, stealable: int) -> int:
        self._check(stealable)
        return min(1, stealable)


class StealHalf(StealPolicy):
    """Take half of the victim's stealable chunks (rounded up)."""

    name = "half"

    def chunks_to_steal(self, stealable: int) -> int:
        self._check(stealable)
        return math.ceil(stealable / 2)


class StealFraction(StealPolicy):
    """Take ``fraction`` of the stealable chunks (at least one).

    ``StealFraction(0.5)`` differs from :class:`StealHalf` only in
    rounding (down instead of up); small fractions approximate
    :class:`StealOne` on short stacks while still scaling on long
    ones.
    """

    def __init__(self, fraction: float):
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                f"fraction must be in (0, 1], got {fraction}"
            )
        self.fraction = float(fraction)
        self.name = f"frac[{fraction:g}]"

    def chunks_to_steal(self, stealable: int) -> int:
        self._check(stealable)
        if stealable == 0:
            return 0
        return max(1, int(stealable * self.fraction))


def _parse_fraction(name: str) -> StealPolicy | None:
    if not (name.startswith("frac[") and name.endswith("]")):
        return None
    try:
        fraction = float(name[5:-1])
    except ValueError:
        raise ConfigurationError(f"bad fraction in {name!r}") from None
    return StealFraction(fraction)


_POLICIES = registry_for("steal_policy")
_POLICIES.register("one", StealOne)
_POLICIES.register("half", StealHalf)
_POLICIES.register_pattern("frac[<fraction>]", _parse_fraction)


def policy_by_name(name: str) -> StealPolicy:
    """Instantiate a steal policy from a config string.

    Thin wrapper over ``registry.resolve("steal_policy", name)``.
    """
    return _POLICIES.resolve(name)  # type: ignore[return-value]
