"""The paper's primary contribution: victim selection strategies and
the scheduling-latency metric.

* :mod:`repro.core.victim` — pluggable victim-selection strategies,
  including the paper's three protagonists (deterministic round-robin,
  uniform random, distance-skewed "Tofu") plus related-work
  comparators;
* :mod:`repro.core.steal_policy` — how much to steal (one chunk vs
  half the stealable chunks);
* :mod:`repro.core.tracing` — lightweight per-rank activity traces
  with clock-skew handling;
* :mod:`repro.core.metrics` — the starting/ending scheduling-latency
  metric (``SL(x)``, ``EL(x)``) and occupancy analysis;
* :mod:`repro.core.sessions` — work-discovery session statistics;
* :mod:`repro.core.config` — the work-stealing run configuration;
* :mod:`repro.core.jobs` — the job/artifact lifecycle dataclasses
  shared by the batch executor and the simulation service.
"""

from repro.core.victim import (
    VictimSelector,
    SelectorFactory,
    RoundRobinSelector,
    UniformRandomSelector,
    DistanceSkewedSelector,
    PowerSkewedSelector,
    LatencySkewedSelector,
    HierarchicalSelector,
    LastVictimSelector,
    selector_by_name,
)
from repro.core.steal_policy import (
    StealPolicy,
    StealOne,
    StealHalf,
    StealFraction,
    policy_by_name,
)
from repro.core.tracing import ActivityTrace, TraceRecorder
from repro.core.metrics import (
    OccupancyCurve,
    starting_latency,
    ending_latency,
    latency_profile,
)
from repro.core.sessions import SessionStats, summarize_sessions
from repro.core.config import WorkStealingConfig
from repro.core.jobs import ArtifactRef, Job, JobEvent, JobFailure, JobState

__all__ = [
    "VictimSelector",
    "SelectorFactory",
    "RoundRobinSelector",
    "UniformRandomSelector",
    "DistanceSkewedSelector",
    "PowerSkewedSelector",
    "LatencySkewedSelector",
    "HierarchicalSelector",
    "LastVictimSelector",
    "selector_by_name",
    "StealPolicy",
    "StealOne",
    "StealHalf",
    "StealFraction",
    "policy_by_name",
    "ActivityTrace",
    "TraceRecorder",
    "OccupancyCurve",
    "starting_latency",
    "ending_latency",
    "latency_profile",
    "SessionStats",
    "summarize_sessions",
    "WorkStealingConfig",
    "ArtifactRef",
    "Job",
    "JobEvent",
    "JobFailure",
    "JobState",
]
