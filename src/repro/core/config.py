"""Run configuration for distributed work-stealing executions.

:class:`WorkStealingConfig` gathers every knob of a run — tree,
process count, placement, victim selection, steal policy, timing
constants — validates it eagerly, and resolves string shorthands
(``selector="tofu"``, ``steal_policy="half"``) into the concrete
strategy objects.

Timing constants and their paper anchors:

``node_time``
    Seconds of compute per tree node at one SHA round.  The paper
    measures "an average of 970000 nodes per second" on the K Computer
    — ``1e-6`` approximates it.
``compute_rounds``
    The work-granularity knob of §V-B ("the UTS parameter dictating
    the number of SHA rounds to execute when creating a node"); scales
    per-node compute time linearly.
``poll_interval``
    Nodes expanded between MPI progress polls; pending steal requests
    are answered at poll boundaries, modelling that "a process stealing
    work will in fact post a request to its victim by a message, and
    the victim will stop working on its queue to package work".
``steal_service_time``
    Seconds the victim spends packaging a steal response.
``transfer_time_per_node``
    Payload (bandwidth) cost per stolen node added to the response
    latency.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from typing import Callable

from repro.core import registry
from repro.core.steal_policy import StealPolicy
from repro.core.victim import SelectorFactory
from repro.errors import ConfigurationError
from repro.net.allocation import ProcessAllocation
from repro.net.latency import KComputerLatency, LatencyModel, latency_model_from_spec
from repro.net.topology import Topology
from repro.uts.params import TreeParams, tree_by_name
from repro.uts.rng import RngBackend

__all__ = [
    "WorkStealingConfig",
    "FINGERPRINT_EXCLUDED_FIELDS",
    "FINGERPRINT_DEFAULT_ELIDED",
]

#: Observability-only fields excluded from config fingerprints.
#: Tracing never changes a run's physics (the determinism suite pins
#: this down bit-for-bit), so two configs differing only in these
#: fields describe the same simulation and must share a fingerprint —
#: otherwise the result cache would re-run identical physics and
#: cached results could not satisfy traced requests.
#:
#: The execution-engine knobs (``engine``, ``shards``,
#: ``shard_workers``) are excluded on the same ground: the sharded
#: engine is bit-identical to the sequential one (the differential
#: suite in ``tests/sim/test_sharded.py`` is the proof), so they
#: select *how* the simulation is computed, never *what* it computes.
FINGERPRINT_EXCLUDED_FIELDS = frozenset(
    {
        "event_trace",
        "event_trace_capacity",
        "engine",
        "shards",
        "shard_workers",
        "shard_transport",
    }
)

#: Physics fields elided from fingerprints when they hold their
#: defaults.  These knobs (the steal-protocol axis) *do* change run
#: physics, so non-default values must fingerprint distinctly — but at
#: their defaults they describe exactly the runs that existed before
#: the knobs did, and dropping the key keeps every previously computed
#: fingerprint (and therefore the result cache) byte-stable.  The cost
#: of the convention is conservative only: an inert non-default value
#: (say ``region_attempts=5`` with ``regions=0``) fingerprints apart
#: from the default config — a cache miss, never a wrong cache hit.
FINGERPRINT_DEFAULT_ELIDED = {
    "protocol": "steal",
    "forward_ttl": 2,
    "regions": 0,
    "region_attempts": 2,
    "lifeline_graph": "hypercube",
}

#: Sentinel distinct from every config value (``None`` is a real one).
_MISSING = object()


@dataclass
class WorkStealingConfig:
    """Everything one distributed UTS run needs.

    String shorthands are accepted for ``allocation``, ``selector``,
    ``steal_policy`` and ``rng_backend``; they are resolved once at
    construction time.
    """

    tree: TreeParams
    nranks: int
    allocation: ProcessAllocation | str = "1/N"
    selector: SelectorFactory | str = "reference"
    steal_policy: StealPolicy | str = "one"
    latency_model: LatencyModel | None = None
    #: ``f(n_nodes) -> Topology``; a registered name (``"tofu"``,
    #: ``"torus3d"``, ``"flat"``) is kept as the string so the config
    #: stays serializable — :func:`repro.net.allocation.build_placement`
    #: resolves it.  ``None`` means the Tofu default.
    topology_factory: Callable[[int], Topology] | str | None = None

    chunk_size: int = 20
    poll_interval: int = 10
    node_time: float = 1e-6
    compute_rounds: int = 1
    steal_service_time: float = 1e-6
    transfer_time_per_node: float = 5e-9
    nic_service_time: float = 0.0
    clock_skew_std: float = 0.0

    rng_backend: RngBackend | str = "splitmix64"
    seed: int = 0
    trace: bool = False
    #: Structured steal-event tracing (:mod:`repro.trace`): attaches a
    #: per-rank :class:`~repro.trace.events.EventRecorder` to every
    #: worker.  Observability-only — excluded from fingerprints.
    event_trace: bool = False
    #: Per-rank event ring-buffer capacity; 0 keeps every event.
    event_trace_capacity: int = 0
    node_cap: int = 50_000_000

    #: Lifeline extension (see :mod:`repro.lifeline`): number of
    #: lifeline partners per rank; 0 disables the scheme entirely.
    lifelines: int = 0
    #: Consecutive failed steals before a rank quiesces onto its
    #: lifelines (only meaningful when ``lifelines > 0``).
    lifeline_threshold: int = 8
    #: Steal-protocol variant (see :mod:`repro.protocol`):
    #: ``"steal"`` is the reference request/response loop; ``"forward"``
    #: relays denied requests toward work instead of failing them.
    protocol: str = "steal"
    #: Maximum relay hops per forwarded request chain (the first victim
    #: spends none; only meaningful when ``protocol="forward"``).
    forward_ttl: int = 2
    #: Locality regions for localized stealing: the rank space is cut
    #: into this many allocation-aligned blocks and victim draws try
    #: the rank's own region first.  0 disables the discipline.
    regions: int = 0
    #: Victim draws per work-discovery session aimed intra-region
    #: before the configured selector takes over (``regions > 0``).
    region_attempts: int = 2
    #: Lifeline partner graph (registry kind ``"lifeline_graph"``:
    #: ``"hypercube"``, ``"ring"``, ``"random"``, ``"regtree"``); only
    #: meaningful when ``lifelines > 0``.
    lifeline_graph: str = "hypercube"

    #: Simulation engine: ``"sequential"`` (the single event queue) or
    #: ``"sharded"`` (:mod:`repro.sim.shard` — per-rank-group queues
    #: with conservative lookahead windows).  Bit-identical results;
    #: excluded from fingerprints (see
    #: :data:`FINGERPRINT_EXCLUDED_FIELDS`).
    engine: str = "sequential"
    #: Shard count for ``engine="sharded"``; 0 picks automatically
    #: from ``nranks``.
    shards: int = 0
    #: Worker processes hosting the shards: 1 runs every shard
    #: in-process (the default), > 1 spreads shards over that many OS
    #: processes behind the fused coordinator protocol, and 0 picks one
    #: process per core (:func:`repro.sim.shard.auto_shard_workers`,
    #: i.e. ``os.cpu_count()``).  The effective count is capped at the
    #: shard count.
    shard_workers: int = 1
    #: Cross-process transport for ``shard_workers > 1``: ``"pipe"``
    #: sends the packed outbox blobs through the coordinator pipes,
    #: ``"shm"`` moves blob bytes through ``multiprocessing.
    #: shared_memory`` scratch segments (control stays on the pipe) and
    #: falls back to pipes per payload and per platform.  Results are
    #: bit-identical either way; excluded from fingerprints.
    shard_transport: str = "pipe"

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ConfigurationError(f"nranks must be >= 1, got {self.nranks}")
        if self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.poll_interval < 1:
            raise ConfigurationError(
                f"poll_interval must be >= 1, got {self.poll_interval}"
            )
        if self.node_time <= 0:
            raise ConfigurationError(
                f"node_time must be > 0, got {self.node_time}"
            )
        if self.compute_rounds < 1:
            raise ConfigurationError(
                f"compute_rounds must be >= 1, got {self.compute_rounds}"
            )
        for name in (
            "steal_service_time",
            "transfer_time_per_node",
            "nic_service_time",
            "clock_skew_std",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )
        if self.node_cap < 1:
            raise ConfigurationError(
                f"node_cap must be >= 1, got {self.node_cap}"
            )
        if self.event_trace_capacity < 0:
            raise ConfigurationError(
                "event_trace_capacity must be >= 0, "
                f"got {self.event_trace_capacity}"
            )
        if self.lifelines < 0:
            raise ConfigurationError(
                f"lifelines must be >= 0, got {self.lifelines}"
            )
        if self.lifeline_threshold < 1:
            raise ConfigurationError(
                f"lifeline_threshold must be >= 1, got {self.lifeline_threshold}"
            )
        if self.protocol not in ("steal", "forward"):
            raise ConfigurationError(
                f"protocol must be 'steal' or 'forward', got {self.protocol!r}"
            )
        if self.forward_ttl < 0:
            raise ConfigurationError(
                f"forward_ttl must be >= 0, got {self.forward_ttl}"
            )
        if self.regions < 0:
            raise ConfigurationError(
                f"regions must be >= 0 (0 = off), got {self.regions}"
            )
        if self.region_attempts < 1:
            raise ConfigurationError(
                f"region_attempts must be >= 1, got {self.region_attempts}"
            )
        # Deferred import: the graph builders register themselves on
        # import, and repro.protocol must stay importable from the
        # worker modules this config layer knows nothing about.
        from repro.protocol import graphs as _graphs  # noqa: F401

        registry.resolve("lifeline_graph", self.lifeline_graph)
        if self.engine not in ("sequential", "sharded"):
            raise ConfigurationError(
                f"engine must be 'sequential' or 'sharded', got {self.engine!r}"
            )
        if self.shards < 0:
            raise ConfigurationError(
                f"shards must be >= 0 (0 = auto), got {self.shards}"
            )
        if self.shard_workers < 0:
            raise ConfigurationError(
                f"shard_workers must be >= 0 (0 = one per core), "
                f"got {self.shard_workers}"
            )
        if self.shard_transport not in ("pipe", "shm"):
            raise ConfigurationError(
                f"shard_transport must be 'pipe' or 'shm', "
                f"got {self.shard_transport!r}"
            )
        if self.engine == "sharded" and self.nic_service_time > 0:
            # The NIC port queue is order-sensitive global state mutated
            # at send time; it cannot be advanced shard-locally without
            # breaking bit-identity.  Sharded runs must disable it.
            raise ConfigurationError(
                "engine='sharded' requires nic_service_time=0 "
                "(NIC contention is a global order-sensitive queue)"
            )
        # Resolve string shorthands once, all through the single
        # resolution path (repro.core.registry.resolve_spec); resolution
        # is idempotent so derived configs (replace, from_dict)
        # re-validate cleanly with already-resolved strategy objects.
        for field_name, kind in self._SPEC_FIELDS.items():
            setattr(
                self,
                field_name,
                registry.resolve_spec(kind, getattr(self, field_name)),
            )
        if isinstance(self.latency_model, (str, dict)):
            self.latency_model = latency_model_from_spec(self.latency_model)
        if self.latency_model is None:
            self.latency_model = KComputerLatency()
        if isinstance(self.topology_factory, str):
            # Validate eagerly but keep the name: a named topology
            # factory stays serializable, build_placement resolves it.
            registry.resolve("topology", self.topology_factory)

    # ------------------------------------------------------------------

    @property
    def per_node_time(self) -> float:
        """Compute seconds consumed per expanded tree node."""
        return self.node_time * self.compute_rounds

    def label(self) -> str:
        """Short human-readable description, e.g. ``tofu/half 8G x128``.

        ``__post_init__`` guarantees every strategy field is resolved,
        so the ``.name`` attributes are always present (no ``assert``
        narrowing — asserts vanish under ``python -O``).

        A non-default protocol configuration appends its canonical tag
        (e.g. `` +fwd2+reg8``); the all-default case adds nothing, so
        labels pinned before the protocol layer existed are unchanged.
        """
        from repro.protocol.variants import protocol_tag

        tag = protocol_tag(self)
        suffix = f" +{tag}" if tag != "steal" else ""
        return (
            f"{self._strategy_name('selector')}/"
            f"{self._strategy_name('steal_policy')} "
            f"{self._strategy_name('allocation')} "
            f"x{self.nranks} [{self.tree.name}]{suffix}"
        )

    def _strategy_name(self, field_name: str) -> str:
        """``.name`` of a resolved strategy field, with a real error."""
        value = getattr(self, field_name)
        name = getattr(value, "name", None)
        if not isinstance(name, str):
            raise ConfigurationError(
                f"{field_name} {value!r} has no usable .name "
                "(was the config constructed without __post_init__?)"
            )
        return name

    def replace(self, **overrides) -> "WorkStealingConfig":
        """Derived config with some fields replaced (sweep helper).

        The derived config goes through ``__post_init__`` again, which
        re-validates every field; already-resolved strategy objects
        pass through untouched (resolution only applies to strings),
        and overrides may themselves be string shorthands.
        """
        unknown = set(overrides) - {f.name for f in fields(self)}
        if unknown:
            raise ConfigurationError(
                f"replace() got unknown config fields: {sorted(unknown)}"
            )
        kwargs = {f.name: getattr(self, f.name) for f in fields(self)}
        kwargs.update(overrides)
        return WorkStealingConfig(**kwargs)

    # ------------------------------------------------------------------
    # Serialization (the repro.exec contract)
    # ------------------------------------------------------------------

    #: Registry kind backing each strategy field's string shorthand.
    _SPEC_FIELDS = {
        "allocation": "allocation",
        "selector": "selector",
        "steal_policy": "steal_policy",
        "rng_backend": "rng_backend",
    }

    def _spec_of(self, field_name: str, kind: str) -> str:
        """Name-addressable spec of a strategy field.

        The spec is the object's ``name``, verified to resolve back to
        an object with the same name — otherwise the config cannot be
        shipped to workers or cached, and we say so eagerly.
        """
        name = self._strategy_name(field_name)
        try:
            resolved = registry.resolve(kind, name)
        except ConfigurationError:
            raise ConfigurationError(
                f"{field_name} {name!r} is not name-addressable: "
                f"register it with repro.core.registry.register"
                f"({kind!r}, {name!r}, ...) to make the config "
                "serializable"
            ) from None
        if getattr(resolved, "name", None) != name:
            raise ConfigurationError(
                f"{field_name} {name!r} does not round-trip "
                f"(resolves to {getattr(resolved, 'name', None)!r})"
            )
        return name

    def _topology_spec(self) -> str | None:
        if self.topology_factory is None or isinstance(self.topology_factory, str):
            return self.topology_factory
        for name in registry.available("topology"):
            if registry.resolve("topology", name) == self.topology_factory:
                return name
        raise ConfigurationError(
            "topology_factory is not name-addressable: pass a registered "
            f"topology name {registry.available('topology')} (or register "
            "the factory with repro.core.registry) to make the config "
            "serializable"
        )

    def to_dict(self) -> dict:
        """Plain-data description of the run; see :meth:`from_dict`.

        Every value is a JSON-serializable primitive: strategies are
        stored as their registry spec strings, the tree and latency
        model as parameter dicts.  Raises
        :class:`~repro.errors.ConfigurationError` if any field is not
        name-addressable (unregistered custom strategy objects).
        """
        return {
            "tree": asdict(self.tree),
            "nranks": self.nranks,
            "allocation": self._spec_of("allocation", "allocation"),
            "selector": self._spec_of("selector", "selector"),
            "steal_policy": self._spec_of("steal_policy", "steal_policy"),
            "latency_model": self.latency_model.to_spec(),
            "topology_factory": self._topology_spec(),
            "chunk_size": self.chunk_size,
            "poll_interval": self.poll_interval,
            "node_time": self.node_time,
            "compute_rounds": self.compute_rounds,
            "steal_service_time": self.steal_service_time,
            "transfer_time_per_node": self.transfer_time_per_node,
            "nic_service_time": self.nic_service_time,
            "clock_skew_std": self.clock_skew_std,
            "rng_backend": self._spec_of("rng_backend", "rng_backend"),
            "seed": self.seed,
            "trace": self.trace,
            "event_trace": self.event_trace,
            "event_trace_capacity": self.event_trace_capacity,
            "node_cap": self.node_cap,
            "lifelines": self.lifelines,
            "lifeline_threshold": self.lifeline_threshold,
            "protocol": self.protocol,
            "forward_ttl": self.forward_ttl,
            "regions": self.regions,
            "region_attempts": self.region_attempts,
            "lifeline_graph": self.lifeline_graph,
            "engine": self.engine,
            "shards": self.shards,
            "shard_workers": self.shard_workers,
            "shard_transport": self.shard_transport,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkStealingConfig":
        """Rebuild a config from :meth:`to_dict` output.

        ``tree`` may be a parameter dict or a registered tree name;
        unknown keys raise :class:`ConfigurationError`.
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"config data must be a dict, got {type(data).__name__}"
            )
        kwargs = dict(data)
        tree = kwargs.pop("tree", None)
        if tree is None:
            raise ConfigurationError("config dict is missing 'tree'")
        if isinstance(tree, str):
            tree = tree_by_name(tree)
        elif isinstance(tree, dict):
            tree = TreeParams(**tree)
        unknown = set(kwargs) - {f.name for f in fields(cls) if f.name != "tree"}
        if unknown:
            raise ConfigurationError(
                f"config dict has unknown fields: {sorted(unknown)}"
            )
        return cls(tree=tree, **kwargs)

    def fingerprint(self) -> str:
        """Stable content hash of the run configuration.

        SHA-256 over the canonical (sorted-key, compact) JSON encoding
        of :meth:`to_dict`, minus the observability-only fields in
        :data:`FINGERPRINT_EXCLUDED_FIELDS` — two configs share a
        fingerprint iff they describe the same simulation *physics*
        (event tracing records the run without changing it).  This is
        the key of the :mod:`repro.exec` result cache and batch
        deduplication, and stripping keeps it byte-stable with the
        fingerprints of configs serialized before the fields existed.

        Physics fields listed in :data:`FINGERPRINT_DEFAULT_ELIDED` are
        dropped *only at their default values* — same backward
        stability, but a non-default protocol configuration still
        fingerprints distinctly.
        """
        data = {
            k: v
            for k, v in self.to_dict().items()
            if k not in FINGERPRINT_EXCLUDED_FIELDS
            and FINGERPRINT_DEFAULT_ELIDED.get(k, _MISSING) != v
        }
        payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
