"""Run configuration for distributed work-stealing executions.

:class:`WorkStealingConfig` gathers every knob of a run — tree,
process count, placement, victim selection, steal policy, timing
constants — validates it eagerly, and resolves string shorthands
(``selector="tofu"``, ``steal_policy="half"``) into the concrete
strategy objects.

Timing constants and their paper anchors:

``node_time``
    Seconds of compute per tree node at one SHA round.  The paper
    measures "an average of 970000 nodes per second" on the K Computer
    — ``1e-6`` approximates it.
``compute_rounds``
    The work-granularity knob of §V-B ("the UTS parameter dictating
    the number of SHA rounds to execute when creating a node"); scales
    per-node compute time linearly.
``poll_interval``
    Nodes expanded between MPI progress polls; pending steal requests
    are answered at poll boundaries, modelling that "a process stealing
    work will in fact post a request to its victim by a message, and
    the victim will stop working on its queue to package work".
``steal_service_time``
    Seconds the victim spends packaging a steal response.
``transfer_time_per_node``
    Payload (bandwidth) cost per stolen node added to the response
    latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.steal_policy import StealPolicy, policy_by_name
from repro.core.victim import SelectorFactory, selector_by_name
from repro.errors import ConfigurationError
from repro.net.allocation import ProcessAllocation, allocation_by_name
from repro.net.latency import KComputerLatency, LatencyModel
from repro.net.topology import Topology
from repro.uts.params import TreeParams
from repro.uts.rng import RngBackend, backend_by_name

__all__ = ["WorkStealingConfig"]


@dataclass
class WorkStealingConfig:
    """Everything one distributed UTS run needs.

    String shorthands are accepted for ``allocation``, ``selector``,
    ``steal_policy`` and ``rng_backend``; they are resolved once at
    construction time.
    """

    tree: TreeParams
    nranks: int
    allocation: ProcessAllocation | str = "1/N"
    selector: SelectorFactory | str = "reference"
    steal_policy: StealPolicy | str = "one"
    latency_model: LatencyModel | None = None
    topology_factory: Callable[[int], Topology] | None = None

    chunk_size: int = 20
    poll_interval: int = 10
    node_time: float = 1e-6
    compute_rounds: int = 1
    steal_service_time: float = 1e-6
    transfer_time_per_node: float = 5e-9
    nic_service_time: float = 0.0
    clock_skew_std: float = 0.0

    rng_backend: RngBackend | str = "splitmix64"
    seed: int = 0
    trace: bool = False
    node_cap: int = 50_000_000

    #: Lifeline extension (see :mod:`repro.lifeline`): number of
    #: lifeline partners per rank; 0 disables the scheme entirely.
    lifelines: int = 0
    #: Consecutive failed steals before a rank quiesces onto its
    #: lifelines (only meaningful when ``lifelines > 0``).
    lifeline_threshold: int = 8

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ConfigurationError(f"nranks must be >= 1, got {self.nranks}")
        if self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.poll_interval < 1:
            raise ConfigurationError(
                f"poll_interval must be >= 1, got {self.poll_interval}"
            )
        if self.node_time <= 0:
            raise ConfigurationError(
                f"node_time must be > 0, got {self.node_time}"
            )
        if self.compute_rounds < 1:
            raise ConfigurationError(
                f"compute_rounds must be >= 1, got {self.compute_rounds}"
            )
        for name in (
            "steal_service_time",
            "transfer_time_per_node",
            "nic_service_time",
            "clock_skew_std",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )
        if self.node_cap < 1:
            raise ConfigurationError(
                f"node_cap must be >= 1, got {self.node_cap}"
            )
        if self.lifelines < 0:
            raise ConfigurationError(
                f"lifelines must be >= 0, got {self.lifelines}"
            )
        if self.lifeline_threshold < 1:
            raise ConfigurationError(
                f"lifeline_threshold must be >= 1, got {self.lifeline_threshold}"
            )
        # Resolve string shorthands once.
        if isinstance(self.allocation, str):
            self.allocation = allocation_by_name(self.allocation)
        if isinstance(self.selector, str):
            self.selector = selector_by_name(self.selector)
        if isinstance(self.steal_policy, str):
            self.steal_policy = policy_by_name(self.steal_policy)
        if isinstance(self.rng_backend, str):
            self.rng_backend = backend_by_name(self.rng_backend)
        if self.latency_model is None:
            self.latency_model = KComputerLatency()

    # ------------------------------------------------------------------

    @property
    def per_node_time(self) -> float:
        """Compute seconds consumed per expanded tree node."""
        return self.node_time * self.compute_rounds

    def label(self) -> str:
        """Short human-readable description, e.g. ``tofu/half 8G x128``."""
        assert not isinstance(self.selector, str)
        assert not isinstance(self.steal_policy, str)
        assert not isinstance(self.allocation, str)
        return (
            f"{self.selector.name}/{self.steal_policy.name} "
            f"{self.allocation.name} x{self.nranks} [{self.tree.name}]"
        )

    def replace(self, **overrides) -> "WorkStealingConfig":
        """Derived config with some fields replaced (sweep helper)."""
        from dataclasses import fields as dc_fields

        kwargs = {f.name: getattr(self, f.name) for f in dc_fields(self)}
        kwargs.update(overrides)
        return WorkStealingConfig(**kwargs)
