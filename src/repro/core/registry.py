"""Central name -> strategy registry.

Every string shorthand the repro package accepts — victim selectors,
steal policies, process allocations, RNG backends, latency models,
topology factories — resolves through one mechanism defined here.  A
:class:`Registry` maps canonical names (and aliases) to factories, and
optionally *patterns* (``"skew[<alpha>]"``, ``"<base>@x<dilation>"``)
to parser functions for parameterised shorthands.

The strategy modules create one registry each at import time and keep
their historical ``*_by_name`` functions as thin wrappers; new code
and the serialization layer (:mod:`repro.exec`) go through
:func:`resolve` directly::

    from repro.core import registry

    selector = registry.resolve("selector", "tofu")
    registry.available("selector")       # all valid selector names
    registry.register("selector", "mine", MySelector)

:func:`resolve` (and its object-tolerant sibling :func:`resolve_spec`)
is the **single resolution path** of the package: the config layer
(``WorkStealingConfig.__post_init__``), the one-shot runner
(:func:`repro.ws.runner.run_uts` via the config), the bench harness
and the simulation service (:mod:`repro.service`) all funnel string
shorthands through it.  Unknown names always raise
:class:`~repro.errors.RegistryError` (a
:class:`~repro.errors.ConfigurationError` subclass) listing the valid
choices, never a bare ``KeyError``.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import RegistryError

__all__ = [
    "Registry",
    "registry_for",
    "register",
    "resolve",
    "resolve_spec",
    "available",
    "kinds",
]


class Registry:
    """One named family of strategies (e.g. all victim selectors).

    Parameters
    ----------
    kind:
        Human-readable family name used in error messages and as the
        key of the global registry table (``"selector"``,
        ``"steal_policy"``, ...).
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, Callable[[], object]] = {}
        self._canonical: list[str] = []
        self._patterns: list[tuple[str, Callable[[str], object | None]]] = []

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------

    def register(
        self,
        name: str,
        factory: Callable[[], object],
        *aliases: str,
        overwrite: bool = False,
    ) -> None:
        """Bind ``name`` (and ``aliases``) to a zero-argument factory.

        ``factory`` may be a class or any callable returning the
        strategy object.  Re-registering an existing name raises unless
        ``overwrite=True``.
        """
        for alias in (name, *aliases):
            if alias in self._entries and not overwrite:
                raise RegistryError(
                    f"{self.kind} {alias!r} is already registered"
                )
            self._entries[alias] = factory
        if name not in self._canonical:
            self._canonical.append(name)

    def register_pattern(
        self, template: str, parser: Callable[[str], object | None]
    ) -> None:
        """Bind a parameterised shorthand, e.g. ``"skew[<alpha>]"``.

        ``parser(name)`` returns the strategy object when ``name``
        matches the pattern, ``None`` when it does not, and raises
        :class:`~repro.errors.RegistryError` when it matches but carries bad
        parameters (``"skew[abc]"``).
        """
        self._patterns.append((template, parser))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def resolve(self, name: str, **kwargs) -> object:
        """Instantiate the strategy registered under ``name``.

        Exact names win over patterns.  ``kwargs`` are forwarded to the
        factory (used by parameterised families such as latency-model
        specs); most factories take none.  Unknown names raise
        :class:`~repro.errors.RegistryError` listing every valid choice.
        """
        if not isinstance(name, str):
            raise RegistryError(
                f"{self.kind} name must be a string, got {type(name).__name__}"
            )
        factory = self._entries.get(name)
        if factory is not None:
            try:
                return factory(**kwargs)
            except TypeError as exc:
                raise RegistryError(
                    f"bad parameters for {self.kind} {name!r}: {exc}"
                ) from None
        if not kwargs:
            for _, parser in self._patterns:
                obj = parser(name)
                if obj is not None:
                    return obj
        raise RegistryError(
            f"unknown {self.kind} {name!r}; valid choices: {self._choices()}"
        )

    def available(self) -> list[str]:
        """Canonical names in registration order, then pattern templates."""
        return [*self._canonical, *(t for t, _ in self._patterns)]

    def __contains__(self, name: str) -> bool:
        try:
            self.resolve(name)
        except RegistryError:
            return False
        return True

    def _choices(self) -> str:
        names: Iterable[str] = sorted(set(self._entries))
        parts = [repr(n) for n in names]
        parts.extend(repr(t) for t, _ in self._patterns)
        return ", ".join(parts) if parts else "(none registered)"


# ----------------------------------------------------------------------
# Global registry-of-registries
# ----------------------------------------------------------------------

_REGISTRIES: dict[str, Registry] = {}


def registry_for(kind: str) -> Registry:
    """Return (creating on first use) the registry for ``kind``."""
    try:
        return _REGISTRIES[kind]
    except KeyError:
        reg = Registry(kind)
        _REGISTRIES[kind] = reg
        return reg


def register(
    kind: str,
    name: str,
    factory: Callable[[], object],
    *aliases: str,
    overwrite: bool = False,
) -> None:
    """Register ``factory`` under ``name`` in the ``kind`` registry."""
    registry_for(kind).register(name, factory, *aliases, overwrite=overwrite)


def resolve(kind: str, name: str, **kwargs) -> object:
    """Resolve ``name`` within ``kind``; raises ``RegistryError``."""
    if kind not in _REGISTRIES:
        raise RegistryError(
            f"unknown strategy kind {kind!r}; known kinds: {sorted(_REGISTRIES)}"
        )
    return _REGISTRIES[kind].resolve(name, **kwargs)


def resolve_spec(kind: str, spec: object, **kwargs) -> object:
    """Resolve ``spec`` when it is a string name, pass it through otherwise.

    This is the one entry point for every API that accepts
    "string-or-object" strategy specs (config fields, ``run_uts``
    keyword arguments, bench sweeps, service submissions): strings go
    through :func:`resolve` — raising :class:`~repro.errors.RegistryError`
    with the valid choices on a miss — and already-resolved strategy
    objects are returned unchanged.
    """
    if isinstance(spec, str):
        return resolve(kind, spec, **kwargs)
    return spec


def available(kind: str | None = None) -> list[str] | dict[str, list[str]]:
    """Valid names for ``kind``, or ``{kind: names}`` for all kinds."""
    if kind is None:
        return {k: reg.available() for k, reg in sorted(_REGISTRIES.items())}
    if kind not in _REGISTRIES:
        raise RegistryError(
            f"unknown strategy kind {kind!r}; known kinds: {sorted(_REGISTRIES)}"
        )
    return _REGISTRIES[kind].available()


def kinds() -> list[str]:
    """All registered strategy kinds."""
    return sorted(_REGISTRIES)
