"""Work-discovery session statistics.

§IV-B of the paper: "A work discovery session starts when a process
exhaust its work and ends with either work in the queue or application
termination."  Figure 10 reports the *average duration* of these
sessions; §V-A adds the *search time* ("the portion of the execution
time a process was waiting for a steal answer") and failed-steal
counts.

Workers log one :class:`Session` per discovery episode; this module
aggregates them across ranks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError

__all__ = ["Session", "SessionStats", "summarize_sessions"]


@dataclass(frozen=True)
class Session:
    """One work-discovery episode of one rank."""

    rank: int
    start: float
    end: float
    found_work: bool  # False if the session ended with termination
    attempts: int  # steal requests sent during the session

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise TraceError(
                f"session ends before it starts ({self.end} < {self.start})"
            )
        if self.attempts < 0:
            raise TraceError(f"attempts must be >= 0, got {self.attempts}")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class SessionStats:
    """Aggregate over all sessions of a run."""

    count: int
    successful: int
    mean_duration: float
    max_duration: float
    total_search_time: float
    mean_attempts: float
    sessions_per_rank: float

    @property
    def terminated(self) -> int:
        """Sessions that ended with application termination."""
        return self.count - self.successful


def summarize_sessions(sessions: list[Session], nranks: int) -> SessionStats:
    """Aggregate session statistics (Fig 10 / Fig 14 inputs)."""
    if nranks < 1:
        raise TraceError(f"nranks must be >= 1, got {nranks}")
    if not sessions:
        return SessionStats(
            count=0,
            successful=0,
            mean_duration=0.0,
            max_duration=0.0,
            total_search_time=0.0,
            mean_attempts=0.0,
            sessions_per_rank=0.0,
        )
    durations = np.array([s.duration for s in sessions])
    attempts = np.array([s.attempts for s in sessions])
    successful = sum(1 for s in sessions if s.found_work)
    return SessionStats(
        count=len(sessions),
        successful=successful,
        mean_duration=float(durations.mean()),
        max_duration=float(durations.max()),
        total_search_time=float(durations.sum()),
        mean_attempts=float(attempts.mean()),
        sessions_per_rank=len(sessions) / nranks,
    )
