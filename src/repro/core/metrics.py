"""The scheduling-latency metric (§III of the paper).

Given the activity trace of a run of total duration ``T``:

* ``workers(t)`` — number of ranks active at time ``t``;
* occupancy ``O(t) = workers(t) / N``;
* **starting latency** ``SL(x) = min{t : O(t) >= x} / T`` — the first
  time, as a fraction of the runtime, at which occupancy ``x`` was
  reached ("an execution where the first time 10% of the processes
  have work happens 5% of the execution time after beginning has
  SL(10%) = 5%");
* **ending latency** ``EL(x) = (T - max{t : O(t) >= x}) / T`` — how
  far from the end the scheduler last sustained occupancy ``x``.

Both are reported against an occupancy grid to regenerate the paper's
Figures 4, 5, 12 and 13.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.tracing import ActivityTrace
from repro.errors import TraceError

__all__ = [
    "OccupancyCurve",
    "starting_latency",
    "ending_latency",
    "latency_profile",
    "LatencyProfile",
]


class OccupancyCurve:
    """The step function ``O(t)`` of a run.

    Parameters
    ----------
    trace:
        Validated activity trace.
    nranks:
        Number of processes ``N`` (the occupancy denominator).
    total_time:
        Run duration ``T``; transitions past ``T`` are an error.
    """

    def __init__(self, trace: ActivityTrace, nranks: int, total_time: float):
        if total_time <= 0:
            raise TraceError(f"total_time must be > 0, got {total_time}")
        if nranks < 1:
            raise TraceError(f"nranks must be >= 1, got {nranks}")
        self.nranks = int(nranks)
        self.total_time = float(total_time)
        times, counts = trace.active_count_curve()
        if times.size and times[-1] > total_time * (1 + 1e-9):
            raise TraceError(
                f"trace extends to {times[-1]} past total_time {total_time}"
            )
        self._times = times
        self._counts = counts

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------

    def workers(self, t: float) -> int:
        """``workers(t)``: active ranks at time ``t``."""
        if not self._times.size or t < self._times[0]:
            return 0
        idx = int(np.searchsorted(self._times, t, side="right")) - 1
        return int(self._counts[idx])

    def occupancy(self, t: float) -> float:
        """``O(t) = workers(t) / N``."""
        return self.workers(t) / self.nranks

    @property
    def max_workers(self) -> int:
        """``Wmax``: the maximum of ``workers(t)`` over the run."""
        return int(self._counts.max()) if self._counts.size else 0

    @property
    def max_occupancy(self) -> float:
        return self.max_workers / self.nranks

    def average_occupancy(self) -> float:
        """Time-average of ``O(t)`` over ``[0, T]``."""
        if not self._times.size:
            return 0.0
        # Occupancy is 0 before the first event, so that span adds no area.
        times = np.concatenate([self._times, [self.total_time]])
        widths = np.clip(np.diff(times), 0.0, None)
        area = float((self._counts * widths).sum())
        return area / (self.nranks * self.total_time)

    # ------------------------------------------------------------------
    # Latencies
    # ------------------------------------------------------------------

    def first_time_at(self, occupancy: float) -> float | None:
        """First ``t`` with ``O(t) >= occupancy``, or None if never."""
        need = occupancy * self.nranks
        hits = np.nonzero(self._counts >= need - 1e-9)[0]
        if not hits.size:
            return None
        return float(self._times[hits[0]])

    def last_time_at(self, occupancy: float) -> float | None:
        """Last ``t`` at which ``O(t) >= occupancy`` held, or None.

        This is the *end* of the last interval whose count met the
        threshold (occupancy is sustained until the next transition).
        """
        need = occupancy * self.nranks
        hits = np.nonzero(self._counts >= need - 1e-9)[0]
        if not hits.size:
            return None
        last = int(hits[-1])
        if last + 1 < len(self._times):
            return float(self._times[last + 1])
        return self.total_time

    def starting_latency(self, occupancy: float) -> float | None:
        """``SL(x)`` as a fraction of the runtime (None if unreached)."""
        t = self.first_time_at(occupancy)
        return None if t is None else t / self.total_time

    def ending_latency(self, occupancy: float) -> float | None:
        """``EL(x)`` as a fraction of the runtime (None if unreached)."""
        t = self.last_time_at(occupancy)
        return None if t is None else (self.total_time - t) / self.total_time


def starting_latency(
    trace: ActivityTrace, nranks: int, total_time: float, occupancy: float
) -> float | None:
    """Convenience wrapper: ``SL(occupancy)`` for a trace."""
    return OccupancyCurve(trace, nranks, total_time).starting_latency(occupancy)


def ending_latency(
    trace: ActivityTrace, nranks: int, total_time: float, occupancy: float
) -> float | None:
    """Convenience wrapper: ``EL(occupancy)`` for a trace."""
    return OccupancyCurve(trace, nranks, total_time).ending_latency(occupancy)


@dataclass(frozen=True)
class LatencyProfile:
    """``SL``/``EL`` sampled over an occupancy grid (one paper curve)."""

    occupancies: np.ndarray
    starting: np.ndarray  # NaN where unreached
    ending: np.ndarray  # NaN where unreached
    max_occupancy: float

    def reached(self) -> np.ndarray:
        return ~np.isnan(self.starting)


def latency_profile(
    trace: ActivityTrace,
    nranks: int,
    total_time: float,
    occupancies: np.ndarray | None = None,
) -> LatencyProfile:
    """Sample ``SL(x)`` and ``EL(x)`` over an occupancy grid.

    Default grid: 1%..100% in 1% steps, matching the paper's figures.
    """
    if occupancies is None:
        occupancies = np.arange(0.01, 1.0001, 0.01)
    occupancies = np.asarray(occupancies, dtype=np.float64)
    curve = OccupancyCurve(trace, nranks, total_time)
    sl = np.full(occupancies.shape, math.nan)
    el = np.full(occupancies.shape, math.nan)
    for k, x in enumerate(occupancies):
        s = curve.starting_latency(float(x))
        e = curve.ending_latency(float(x))
        if s is not None:
            sl[k] = s
        if e is not None:
            el[k] = e
    return LatencyProfile(
        occupancies=occupancies,
        starting=sl,
        ending=el,
        max_occupancy=curve.max_occupancy,
    )
