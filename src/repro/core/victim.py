"""Victim selection strategies for distributed work stealing.

A *selector factory* (:class:`SelectorFactory`) describes a strategy;
binding it to a rank (:meth:`SelectorFactory.make`) yields the
per-rank :class:`VictimSelector` the scheduler queries whenever it
needs someone to steal from.

The paper's three protagonists:

:class:`RoundRobinSelector` (*Reference*)
    The deterministic scheme of the public UTS release: rank ``i``
    first targets ``i + 1 mod N`` and walks the ring from wherever the
    previous search stopped.  §II-A: "a successful steal does not
    impact this choice: the next search for work will start at the
    neighbor of the last victim."

:class:`UniformRandomSelector` (*Rand*)
    Uniform over all other ranks, fresh draw per attempt — the
    textbook strategy the theory analyses.

:class:`DistanceSkewedSelector` (*Tofu*)
    The paper's contribution (§IV-B): victim ``j`` is drawn with
    probability proportional to ``w(i, j) = 1/e(i, j)`` where ``e`` is
    the Euclidean distance between the hosting nodes in the Tofu
    coordinates (``w = 1`` when ``e = 0``, i.e. co-located ranks).

Comparators from related work, used by the ablation benchmarks:
:class:`PowerSkewedSelector` (generalised ``1/d^alpha``),
:class:`HierarchicalSelector` (near/far two-level scheme),
:class:`LastVictimSelector` (sticky steals).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.registry import registry_for
from repro.errors import ConfigurationError
from repro.net.allocation import Placement

__all__ = [
    "VictimSelector",
    "SelectorFactory",
    "RoundRobinSelector",
    "UniformRandomSelector",
    "DistanceSkewedSelector",
    "PowerSkewedSelector",
    "LatencySkewedSelector",
    "HierarchicalSelector",
    "LastVictimSelector",
    "selector_by_name",
    "skewed_probabilities",
]


class VictimSelector(ABC):
    """Per-rank selection state; produced by a :class:`SelectorFactory`."""

    @abstractmethod
    def next_victim(self) -> int:
        """Return the next victim rank to try (never the caller's own)."""

    def notify(self, victim: int, success: bool) -> None:
        """Feedback hook: the steal from ``victim`` succeeded/failed.

        Most strategies ignore it; sticky strategies
        (:class:`LastVictimSelector`) use it.
        """


class SelectorFactory(ABC):
    """A victim-selection strategy, bindable to each rank of a job."""

    #: Identifier used in configs and reports.
    name: str = "abstract"

    #: Whether :meth:`make` requires a :class:`Placement` (topology info).
    needs_placement: bool = False

    @abstractmethod
    def make(
        self,
        rank: int,
        nranks: int,
        placement: Placement | None = None,
        seed: int = 0,
    ) -> VictimSelector:
        """Bind the strategy to ``rank`` of an ``nranks``-process job."""

    def _check(self, rank: int, nranks: int, placement: Placement | None) -> None:
        if nranks < 2:
            raise ConfigurationError(
                f"victim selection needs >= 2 ranks, got {nranks}"
            )
        if not 0 <= rank < nranks:
            raise ConfigurationError(f"rank {rank} out of range [0, {nranks})")
        if self.needs_placement and placement is None:
            raise ConfigurationError(
                f"selector {self.name!r} requires a Placement"
            )
        if placement is not None and placement.nranks != nranks:
            raise ConfigurationError(
                f"placement has {placement.nranks} ranks, job has {nranks}"
            )


def _rank_rng(seed: int, rank: int) -> np.random.Generator:
    """Independent, reproducible per-rank RNG stream."""
    return np.random.default_rng(np.random.SeedSequence([seed, rank]))


# ----------------------------------------------------------------------
# Reference: deterministic round robin
# ----------------------------------------------------------------------


class _RoundRobinState(VictimSelector):
    def __init__(self, rank: int, nranks: int):
        self._rank = rank
        self._nranks = nranks
        # First victim is our neighbour rank + 1 (mod N).
        self._next = (rank + 1) % nranks

    def next_victim(self) -> int:
        victim = self._next
        if victim == self._rank:  # never steal ourselves
            victim = (victim + 1) % self._nranks
        self._next = (victim + 1) % self._nranks
        return victim


class RoundRobinSelector(SelectorFactory):
    """The reference UTS deterministic ring walk."""

    name = "reference"

    def make(self, rank, nranks, placement=None, seed=0):
        self._check(rank, nranks, placement)
        return _RoundRobinState(rank, nranks)


# ----------------------------------------------------------------------
# Rand: uniform random
# ----------------------------------------------------------------------


#: Selectors draw random numbers in blocks to amortise NumPy call
#: overhead; the stream is identical to drawing one at a time.
_DRAW_BLOCK = 256


class _UniformState(VictimSelector):
    def __init__(self, rank: int, nranks: int, rng: np.random.Generator):
        self._rank = rank
        self._nranks = nranks
        self._rng = rng
        self._buf: np.ndarray | None = None
        self._pos = 0

    def next_victim(self) -> int:
        # Draw over nranks-1 victims and shift past our own rank: exact
        # uniform over the others with a single draw.
        if self._buf is None or self._pos >= len(self._buf):
            self._buf = self._rng.integers(
                0, self._nranks - 1, size=_DRAW_BLOCK
            )
            self._pos = 0
        v = int(self._buf[self._pos])
        self._pos += 1
        return v + 1 if v >= self._rank else v


class UniformRandomSelector(SelectorFactory):
    """Uniform random selection over all other ranks."""

    name = "rand"

    def make(self, rank, nranks, placement=None, seed=0):
        self._check(rank, nranks, placement)
        return _UniformState(rank, nranks, _rank_rng(seed, rank))


# ----------------------------------------------------------------------
# Tofu: distance-skewed random
# ----------------------------------------------------------------------


def skewed_probabilities(
    rank: int, euclidean_row: np.ndarray, alpha: float = 1.0
) -> np.ndarray:
    """The paper's victim distribution ``p(rank, .)``.

    ``w(i, j) = 1 / e(i, j)^alpha`` when ``e != 0``, ``1`` when
    ``e == 0`` (co-located ranks), ``0`` for ``j == i``; normalised
    over ``j != i``.  ``alpha = 1`` is the paper's formula; ``alpha``
    generalises it for the ablation study.
    """
    e = np.asarray(euclidean_row, dtype=np.float64)
    with np.errstate(divide="ignore"):
        w = np.where(e > 0.0, 1.0 / np.power(e, alpha), 1.0)
    w[rank] = 0.0
    total = w.sum()
    if total <= 0.0:
        raise ConfigurationError("degenerate victim distribution (all weights 0)")
    return w / total


class _SkewedState(VictimSelector):
    def __init__(self, cumulative: np.ndarray, rng: np.random.Generator):
        # Float rounding can leave cum[-1] a few ulps below 1.0, and
        # searchsorted(side="right") would then map a draw above it to
        # len(cum) — an out-of-range victim.  Pin the last edge to 1.0:
        # draws live in [0, 1), so every index is then in [0, len).
        cumulative = np.asarray(cumulative, dtype=np.float64).copy()
        cumulative[-1] = 1.0
        self._cum = cumulative
        self._rng = rng
        self._buf: np.ndarray | None = None
        self._pos = 0

    def next_victim(self) -> int:
        if self._buf is None or self._pos >= len(self._buf):
            draws = self._rng.random(_DRAW_BLOCK)
            self._buf = np.searchsorted(self._cum, draws, side="right")
            self._pos = 0
        v = int(self._buf[self._pos])
        self._pos += 1
        return v


class PowerSkewedSelector(SelectorFactory):
    """Distance-skewed selection with weight ``1/e(i,j)^alpha``.

    ``alpha = 0`` degenerates to uniform random; larger ``alpha``
    concentrates steals on nearby ranks.  The paper's *Tofu* strategy
    is ``alpha = 1`` (see :class:`DistanceSkewedSelector`).
    """

    needs_placement = True

    def __init__(self, alpha: float = 1.0):
        if alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {alpha}")
        self.alpha = float(alpha)
        self.name = f"skew[{alpha:g}]"

    def probabilities(self, rank: int, placement: Placement) -> np.ndarray:
        """Expose the distribution itself (used to regenerate Fig 8)."""
        return skewed_probabilities(
            rank, placement.euclidean.row(rank), self.alpha
        )

    def make(self, rank, nranks, placement=None, seed=0):
        self._check(rank, nranks, placement)
        assert placement is not None
        probs = self.probabilities(rank, placement)
        return _SkewedState(np.cumsum(probs), _rank_rng(seed, rank))


class DistanceSkewedSelector(PowerSkewedSelector):
    """The paper's *Tofu* strategy: ``w(i, j) = 1/e(i, j)``."""

    def __init__(self) -> None:
        super().__init__(alpha=1.0)
        self.name = "tofu"


class LatencySkewedSelector(SelectorFactory):
    """Weight victims by measured latency instead of coordinates.

    Extension (paper §VII asks for strategies accounting for actual
    link characteristics): ``w(i, j) = 1/latency(i, j)^alpha`` uses
    the end-to-end latency matrix — which folds in transport tiers and
    contention models — rather than the raw Euclidean distance the
    paper's Tofu strategy uses.  On a pure hop-latency model the two
    coincide up to monotone reweighting; they diverge when transports
    are hierarchical.
    """

    needs_placement = True

    def __init__(self, alpha: float = 1.0):
        if alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {alpha}")
        self.alpha = float(alpha)
        self.name = f"latskew[{alpha:g}]"

    def probabilities(self, rank: int, placement: Placement) -> np.ndarray:
        lat = np.array(placement.latency.row(rank))
        # Normalise so the nearest victim has unit weight, mirroring
        # the paper's w=1 convention for zero-distance ranks.
        others = lat[np.arange(len(lat)) != rank]
        scale = others.min() if others.size else 1.0
        return skewed_probabilities(rank, lat / max(scale, 1e-30), self.alpha)

    def make(self, rank, nranks, placement=None, seed=0):
        self._check(rank, nranks, placement)
        assert placement is not None
        probs = self.probabilities(rank, placement)
        return _SkewedState(np.cumsum(probs), _rank_rng(seed, rank))


# ----------------------------------------------------------------------
# Related-work comparators
# ----------------------------------------------------------------------


class _HierarchicalState(VictimSelector):
    def __init__(
        self,
        near: np.ndarray,
        far: np.ndarray,
        p_near: float,
        rng: np.random.Generator,
    ):
        self._near = near
        self._far = far
        self._p_near = p_near
        self._rng = rng

    def next_victim(self) -> int:
        pick_near = self._near.size and (
            not self._far.size or self._rng.random() < self._p_near
        )
        pool = self._near if pick_near else self._far
        return int(pool[self._rng.integers(0, pool.size)])


class HierarchicalSelector(SelectorFactory):
    """Two-level near/far scheme (hierarchical work stealing).

    With probability ``p_near`` steal uniformly among the *near* ranks
    (latency at or below the caller's median), otherwise uniformly
    among the far ones.  This is the fixed-policy hierarchy of
    Min/Iancu/Yelick and Quintin/Wagner, to contrast with the paper's
    smooth distance weighting.
    """

    name = "hierarchical"
    needs_placement = True

    def __init__(self, p_near: float = 0.9):
        if not 0.0 <= p_near <= 1.0:
            raise ConfigurationError(f"p_near must be in [0, 1], got {p_near}")
        self.p_near = float(p_near)
        self.name = f"hier[{p_near:g}]"

    def make(self, rank, nranks, placement=None, seed=0):
        self._check(rank, nranks, placement)
        assert placement is not None
        lat = placement.latency.row(rank)
        others = np.array([r for r in range(nranks) if r != rank])
        cut = float(np.median(lat[others]))
        near = others[lat[others] <= cut]
        far = others[lat[others] > cut]
        return _HierarchicalState(near, far, self.p_near, _rank_rng(seed, rank))


class _LastVictimState(VictimSelector):
    def __init__(self, uniform: _UniformState):
        self._uniform = uniform
        self._sticky: int | None = None

    def next_victim(self) -> int:
        if self._sticky is not None:
            victim, self._sticky = self._sticky, None
            return victim
        return self._uniform.next_victim()

    def notify(self, victim: int, success: bool) -> None:
        # notify() must tolerate arbitrary victims (lifeline pushes
        # report ranks the selector never drew); only a valid *other*
        # rank may become the sticky target.
        if success and 0 <= victim < self._uniform._nranks and (
            victim != self._uniform._rank
        ):
            self._sticky = victim
        else:
            self._sticky = None


class LastVictimSelector(SelectorFactory):
    """Retry the last successful victim first, else uniform random."""

    name = "lastvictim"

    def make(self, rank, nranks, placement=None, seed=0):
        self._check(rank, nranks, placement)
        return _LastVictimState(_UniformState(rank, nranks, _rank_rng(seed, rank)))


def _parse_skew(name: str) -> SelectorFactory | None:
    if not (name.startswith("skew[") and name.endswith("]")):
        return None
    try:
        alpha = float(name[5:-1])
    except ValueError:
        raise ConfigurationError(f"bad skew exponent in {name!r}") from None
    return PowerSkewedSelector(alpha)


def _parse_hier(name: str) -> SelectorFactory | None:
    if not (name.startswith("hier[") and name.endswith("]")):
        return None
    try:
        p_near = float(name[5:-1])
    except ValueError:
        raise ConfigurationError(f"bad hier probability in {name!r}") from None
    return HierarchicalSelector(p_near)


def _parse_latskew(name: str) -> SelectorFactory | None:
    if not (name.startswith("latskew[") and name.endswith("]")):
        return None
    try:
        alpha = float(name[8:-1])
    except ValueError:
        raise ConfigurationError(f"bad latskew exponent in {name!r}") from None
    return LatencySkewedSelector(alpha)


_SELECTORS = registry_for("selector")
_SELECTORS.register("reference", RoundRobinSelector, "round_robin", "rr")
_SELECTORS.register("rand", UniformRandomSelector, "random", "uniform")
_SELECTORS.register("tofu", DistanceSkewedSelector, "distance", "skewed")
_SELECTORS.register("hierarchical", HierarchicalSelector)
_SELECTORS.register("lastvictim", LastVictimSelector)
_SELECTORS.register_pattern("skew[<alpha>]", _parse_skew)
_SELECTORS.register_pattern("hier[<p_near>]", _parse_hier)
_SELECTORS.register_pattern("latskew[<alpha>]", _parse_latskew)


def selector_by_name(name: str) -> SelectorFactory:
    """Instantiate a selector factory from a config string.

    Accepts the registered aliases plus ``"skew[<alpha>]"``,
    ``"hier[<p>]"`` and ``"latskew[<alpha>]"`` parameterised forms;
    thin wrapper over ``registry.resolve("selector", name)``.
    """
    return _SELECTORS.resolve(name)  # type: ignore[return-value]
