"""Job and artifact dataclasses for batch and service execution.

One simulation request — whether it comes from a :func:`repro.run_many`
batch or a :class:`repro.service.SimulationService` sweep — moves
through the same typed lifecycle:

``queued`` -> ``started`` -> ``done``
                          -> ``failed``
``cached`` (terminal immediately: the artifact store already held the
result, the simulator is never touched)

:class:`Job` is the mutable record of one *deduplicated* simulation
(many submissions of the same fingerprint share one job);
:class:`JobEvent` is the immutable progress tick streamed to
subscribers; :class:`JobFailure` is the failed-slot placeholder
``run_many(..., return_exceptions=True)`` returns in place of a
result; :class:`ArtifactRef` points at a stored by-product (e.g. a
Chrome-trace JSON) in the artifact store.

The module is deliberately leaf-level (stdlib imports only) so both
:mod:`repro.exec` and :mod:`repro.service` can share it without import
cycles; ``Job.result`` is typed loosely for the same reason.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ws.results import RunResult

__all__ = ["JobState", "Job", "JobEvent", "JobFailure", "ArtifactRef"]


class JobState(str, enum.Enum):
    """Lifecycle states of one simulation job."""

    QUEUED = "queued"
    STARTED = "started"
    CACHED = "cached"
    DONE = "done"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        """True once the job can never change state again."""
        return self in (JobState.CACHED, JobState.DONE, JobState.FAILED)


#: Monotonic job-id source (process-wide; ids are opaque strings).
_JOB_IDS = itertools.count(1)


def next_job_id() -> str:
    """Fresh opaque job id, unique within this process."""
    return f"job-{next(_JOB_IDS)}"


@dataclass(frozen=True)
class ArtifactRef:
    """Pointer to one stored artifact of a finished job."""

    #: Config fingerprint the artifact belongs to.
    fingerprint: str
    #: Artifact kind, e.g. ``"trace.json"`` (doubles as file suffix).
    kind: str
    #: On-disk location inside the artifact store.
    path: Path
    #: Size in bytes at write time.
    nbytes: int


@dataclass(eq=False)
class Job:
    """One deduplicated simulation request and everything known about it."""

    id: str
    #: Config fingerprint — the dedup/cache key.
    fingerprint: str
    #: ``WorkStealingConfig.to_dict()`` payload (what workers receive).
    config: dict
    #: Human-readable config label.
    label: str
    #: Client that first submitted the job (fair-share accounting key).
    client: str = "default"
    #: Higher runs earlier; ties fall to weighted fair share.
    priority: int = 0
    state: JobState = JobState.QUEUED
    #: Service-clock (``time.monotonic``) timestamps.
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: Wall-clock seconds the simulation itself took (0.0 for hits).
    elapsed: float = 0.0
    result: "RunResult | None" = None
    error: BaseException | None = None
    #: Artifact kind -> stored reference (trace exports, ...).
    artifacts: dict[str, ArtifactRef] = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.state.terminal

    @property
    def latency(self) -> float | None:
        """Submit-to-result seconds (the service SLO metric)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at


@dataclass(frozen=True)
class JobEvent:
    """One progress tick of a job, streamed to every subscriber."""

    job_id: str
    state: JobState
    fingerprint: str
    label: str
    client: str
    #: Service-clock (``time.monotonic``) timestamp of the transition.
    timestamp: float
    #: Simulation wall-clock seconds (terminal events only).
    elapsed: float = 0.0
    #: True when the result came from the artifact store.
    cached: bool = False
    #: ``str(exception)`` for ``failed`` events.
    error: str | None = None


@dataclass(frozen=True)
class JobFailure:
    """Failed slot in a ``run_many(..., return_exceptions=True)`` batch.

    Carries the exception that stopped the job (``JobTimeoutError``
    for per-job budget overruns) so callers can triage without the
    whole sweep unwinding.
    """

    fingerprint: str
    label: str
    error: BaseException
    elapsed: float = 0.0

    @property
    def state(self) -> JobState:
        return JobState.FAILED
