"""repro — reproduction of "Victim Selection and Distributed Work
Stealing Performance: A Case Study" (Perarnau & Sato, IPDPS 2014).

The package rebuilds, in Python, everything the paper's evaluation
needed:

* the UTS benchmark (:mod:`repro.uts`) — deterministic implicit
  unbalanced trees over splittable RNGs, chunked steal-stacks;
* a model of the K Computer (:mod:`repro.net`) — Tofu 6-D topology,
  hierarchical latencies, the 1/N / 8RR / 8G process allocations;
* a discrete-event cluster simulator (:mod:`repro.sim`) — per-rank
  schedulers speaking the reference MPI steal protocol with token-ring
  termination;
* the paper's contribution (:mod:`repro.core`) — victim-selection
  strategies (round-robin, uniform random, distance-skewed "Tofu"),
  steal-half, and the starting/ending scheduling-latency metric;
* a lifeline-based comparator (:mod:`repro.lifeline`);
* the experiment harness (:mod:`repro.bench`) regenerating every
  table and figure.

Quickstart::

    from repro import run_uts, T3S

    result = run_uts(tree=T3S, nranks=64, selector="tofu",
                     steal_policy="half")
    print(result.summary())

Batch runs go through the parallel executor (:mod:`repro.exec`)::

    from repro import run_many, WorkStealingConfig

    configs = [WorkStealingConfig(tree=T3S, nranks=n, selector="tofu")
               for n in (8, 16, 32, 64)]
    results = run_many(configs, jobs=4)

Long-running multi-client workloads go through the simulation service
(:mod:`repro.service`), which dedups, schedules fairly and caches::

    from repro import SimulationService

    async with SimulationService(workers=4, store=True) as service:
        handle = await service.submit(configs, client="alice")
        results = await handle.results()

This module is the package's stable public surface: everything in
``__all__`` keeps working across releases (renames get deprecation
shims first).
"""

from repro._version import __version__
from repro.core.config import WorkStealingConfig
from repro.uts.params import (
    T3L,
    T3M,
    T3S,
    T3WL,
    T3XL,
    T3XS,
    T3XXL,
    TREES,
    TreeParams,
    tree_by_name,
)
from repro.ws.results import RunResult
from repro.ws.runner import run_uts, sequential_baseline

# Side-effect import: registers the adaptive selector/steal-policy
# family ("adapt-eps", "adapt-sr", "adapt-backoff", "adaptive") beside
# the static strategies, so their config strings resolve in every
# process that imports repro — including exec worker processes.
import repro.select  # noqa: E402,F401

# Imported last: repro.exec / repro.service read repro._version and the
# registries the imports above populate.
from repro.exec import ResultCache, RunProgress, run_many  # noqa: E402
from repro.core.jobs import (  # noqa: E402
    Job,
    JobEvent,
    JobFailure,
    JobState,
)
from repro.service import (  # noqa: E402
    ArtifactStore,
    SimulationService,
    SweepHandle,
    run_service_sweep,
)

__all__ = [
    "WorkStealingConfig",
    "RunResult",
    "run_uts",
    "run_many",
    "run_service_sweep",
    "sequential_baseline",
    "RunProgress",
    "ResultCache",
    "ArtifactStore",
    "SimulationService",
    "SweepHandle",
    "Job",
    "JobState",
    "JobEvent",
    "JobFailure",
    "TreeParams",
    "TREES",
    "tree_by_name",
    "T3XS",
    "T3S",
    "T3M",
    "T3L",
    "T3XL",
    "T3XXL",
    "T3WL",
    "__version__",
]
