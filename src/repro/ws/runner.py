"""The public run API.

Typical use::

    from repro.uts.params import T3S
    from repro.ws import run_uts

    result = run_uts(tree=T3S, nranks=64, selector="tofu",
                     steal_policy="half", allocation="1/N")
    print(result.summary())

Everything accepts either resolved strategy objects or the string
shorthands of :mod:`repro.core.config`.
"""

from __future__ import annotations

from repro.core.config import WorkStealingConfig
from repro.sim.cluster import Cluster
from repro.uts.params import TreeParams
from repro.uts.rng import RngBackend
from repro.uts.sequential import sequential_count
from repro.ws.results import RunResult

__all__ = ["run_uts", "sequential_baseline"]


def sequential_baseline(
    tree: TreeParams,
    node_time: float = 1e-6,
    compute_rounds: int = 1,
    backend: RngBackend | None = None,
) -> float:
    """Extrapolated single-process runtime ``T1`` for a tree.

    The paper could not run T3WL on one process ("it exceeds a day")
    and extrapolated from the nodes/second rate; we do the same:
    ``T1 = total_nodes * per_node_time``.
    """
    seq = sequential_count(tree, backend=backend)
    return seq.total_nodes * node_time * compute_rounds


def run_uts(
    config: WorkStealingConfig | None = None,
    *,
    tree: TreeParams | None = None,
    nranks: int | None = None,
    baseline_time: float | None = None,
    max_events: int | None = None,
    **config_kwargs,
) -> RunResult:
    """Run one distributed UTS execution and return its results.

    Either pass a prebuilt :class:`WorkStealingConfig` as ``config``,
    or pass ``tree``, ``nranks`` and any other config fields as
    keyword arguments.

    Tracing knobs (both observationally free — same simulation, same
    fingerprint): ``trace=True`` attaches the per-rank activity
    recorders behind ``result.trace`` and the SL/EL metrics;
    ``event_trace=True`` additionally captures the structured
    steal-event stream behind ``result.events`` for
    :class:`repro.trace.TraceAnalysis` and the Chrome-trace exporter
    (``python -m repro.trace``).

    Parameters
    ----------
    baseline_time:
        ``T1`` for speedup/efficiency; defaults to the extrapolated
        single-process time of the run's own tree.
    max_events:
        Override the simulator's event budget.
    """
    if config is None:
        if tree is None or nranks is None:
            raise TypeError(
                "run_uts needs either a config or tree= and nranks="
            )
        config = WorkStealingConfig(tree=tree, nranks=nranks, **config_kwargs)
    elif tree is not None or nranks is not None or config_kwargs:
        raise TypeError(
            "pass either a config object or keyword fields, not both"
        )
    if config.engine == "sharded":
        # Deferred import: repro.sim.shard imports from repro.ws-adjacent
        # modules and is only needed when the sharded engine is chosen.
        from repro.sim.shard import ShardedCluster

        outcome = ShardedCluster(config, max_events=max_events).run()
    else:
        outcome = Cluster(config, max_events=max_events).run()
    return RunResult.from_outcome(outcome, baseline_time=baseline_time)
