"""Refined results of a distributed work-stealing run.

:class:`RunResult` derives every quantity the paper's evaluation
reports from the raw :class:`~repro.sim.cluster.SimOutcome`:

* runtime, speedup and efficiency against the extrapolated
  single-process baseline (the paper's T3WL baseline is itself
  extrapolated from the nodes/second rate, §II-B);
* failed/successful steal counts (Figs 7, 15);
* per-process average search time (Fig 14) and work-discovery session
  statistics (Fig 10);
* the skew-corrected activity trace and its scheduling-latency
  profile (Figs 4, 5, 12, 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.metrics import LatencyProfile, OccupancyCurve, latency_profile
from repro.core.sessions import Session, SessionStats, summarize_sessions
from repro.core.tracing import ActivityTrace
from repro.errors import ReproError
from repro.sim.cluster import SimOutcome

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """Everything the paper measures, for one run."""

    label: str
    tree_name: str
    nranks: int
    allocation: str
    selector: str
    steal_policy: str
    compute_rounds: int

    total_nodes: int
    total_time: float
    baseline_time: float

    steal_requests: int
    failed_steals: int
    successful_steals: int
    nodes_stolen: int
    chunks_stolen: int

    search_time_total: float
    sessions: SessionStats
    per_rank_nodes: np.ndarray
    per_rank_search_time: np.ndarray

    events_processed: int
    messages_dropped: int
    probes_started: int

    trace: ActivityTrace | None = None
    _profile: LatencyProfile | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Paper headline numbers
    # ------------------------------------------------------------------

    @property
    def speedup(self) -> float:
        """``T1 / TN`` against the extrapolated sequential baseline."""
        return self.baseline_time / self.total_time

    @property
    def efficiency(self) -> float:
        """``speedup / N`` (Fig 2's y-axis)."""
        return self.speedup / self.nranks

    @property
    def nodes_per_second(self) -> float:
        return self.total_nodes / self.total_time

    @property
    def mean_search_time(self) -> float:
        """Average per-process search time (Fig 14's y-axis)."""
        return self.search_time_total / self.nranks

    @property
    def mean_session_duration(self) -> float:
        """Average work-discovery session duration (Fig 10's y-axis)."""
        return self.sessions.mean_duration

    # ------------------------------------------------------------------
    # Scheduling-latency metric
    # ------------------------------------------------------------------

    def occupancy_curve(self) -> OccupancyCurve:
        if self.trace is None:
            raise ReproError(
                "run was not traced; pass trace=True in the config"
            )
        return OccupancyCurve(self.trace, self.nranks, self.total_time)

    def latency_profile(
        self, occupancies: np.ndarray | None = None
    ) -> LatencyProfile:
        if self.trace is None:
            raise ReproError(
                "run was not traced; pass trace=True in the config"
            )
        if occupancies is None:
            if self._profile is None:
                self._profile = latency_profile(
                    self.trace, self.nranks, self.total_time
                )
            return self._profile
        return latency_profile(
            self.trace, self.nranks, self.total_time, occupancies
        )

    # ------------------------------------------------------------------

    @classmethod
    def from_outcome(
        cls, outcome: SimOutcome, baseline_time: float | None = None
    ) -> "RunResult":
        """Derive the refined result from a raw simulation outcome.

        ``baseline_time`` defaults to the paper's extrapolation: the
        node count times the per-node compute time (what a single
        process traversing the same tree would take).
        """
        cfg = outcome.config
        workers = outcome.workers
        if baseline_time is None:
            baseline_time = outcome.total_nodes * cfg.per_node_time
        sessions: list[Session] = []
        for w in workers:
            sessions.extend(w.sessions)
        trace = None
        if outcome.recorders is not None:
            raw = ActivityTrace.from_recorders(outcome.recorders)
            # Undo the simulated clock skew, as the paper does.
            trace = (
                raw.corrected(outcome.clock.offsets)
                if outcome.clock.enabled
                else raw
            )
        assert not isinstance(cfg.allocation, str)
        assert not isinstance(cfg.selector, str)
        assert not isinstance(cfg.steal_policy, str)
        return cls(
            label=cfg.label(),
            tree_name=cfg.tree.name,
            nranks=cfg.nranks,
            allocation=cfg.allocation.name,
            selector=cfg.selector.name,
            steal_policy=cfg.steal_policy.name,
            compute_rounds=cfg.compute_rounds,
            total_nodes=outcome.total_nodes,
            total_time=outcome.total_time,
            baseline_time=baseline_time,
            steal_requests=sum(w.steal_requests_sent for w in workers),
            failed_steals=sum(w.failed_steals for w in workers),
            successful_steals=sum(w.successful_steals for w in workers),
            nodes_stolen=sum(w.nodes_received for w in workers),
            chunks_stolen=sum(w.chunks_received for w in workers),
            search_time_total=sum(w.search_time for w in workers),
            sessions=summarize_sessions(sessions, cfg.nranks),
            per_rank_nodes=np.array([w.nodes_processed for w in workers]),
            per_rank_search_time=np.array([w.search_time for w in workers]),
            events_processed=outcome.events_processed,
            messages_dropped=outcome.messages_dropped,
            probes_started=outcome.probes_started,
            trace=trace,
        )

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.label}: T={self.total_time * 1e3:.2f}ms "
            f"speedup={self.speedup:.1f} eff={self.efficiency:.2f} "
            f"failed={self.failed_steals} "
            f"search={self.mean_search_time * 1e3:.2f}ms"
        )
