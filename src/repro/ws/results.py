"""Refined results of a distributed work-stealing run.

:class:`RunResult` derives every quantity the paper's evaluation
reports from the raw :class:`~repro.sim.cluster.SimOutcome`:

* runtime, speedup and efficiency against the extrapolated
  single-process baseline (the paper's T3WL baseline is itself
  extrapolated from the nodes/second rate, §II-B);
* failed/successful steal counts (Figs 7, 15);
* per-process average search time (Fig 14) and work-discovery session
  statistics (Fig 10);
* the skew-corrected activity trace and its scheduling-latency
  profile (Figs 4, 5, 12, 13).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.metrics import LatencyProfile, OccupancyCurve, latency_profile
from repro.core.sessions import Session, SessionStats, summarize_sessions
from repro.core.tracing import ActivityTrace
from repro.errors import ReproError
from repro.sim.cluster import SimOutcome

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """Everything the paper measures, for one run."""

    label: str
    tree_name: str
    nranks: int
    allocation: str
    selector: str
    steal_policy: str
    compute_rounds: int

    total_nodes: int
    total_time: float
    baseline_time: float

    steal_requests: int
    failed_steals: int
    successful_steals: int
    nodes_stolen: int
    chunks_stolen: int

    search_time_total: float
    sessions: SessionStats
    per_rank_nodes: np.ndarray
    per_rank_search_time: np.ndarray

    events_processed: int
    messages_dropped: int
    probes_started: int

    #: Steal requests relayed onward instead of denied (the forwarding
    #: protocol extension; 0 for the reference protocol).  Defaulted so
    #: result dicts cached before the field existed still load.
    requests_forwarded: int = 0

    trace: ActivityTrace | None = None
    #: Structured steal-event trace (``event_trace=True`` runs).
    #: Diagnostic-only: deliberately NOT serialized by :meth:`to_dict`
    #: — event streams are for post-mortem analysis of a live run
    #: (:mod:`repro.trace`), not for the result cache, and cached
    #: results therefore round-trip without them.
    events: "object | None" = field(default=None, repr=False)
    _profile: LatencyProfile | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Paper headline numbers
    # ------------------------------------------------------------------

    @property
    def speedup(self) -> float:
        """``T1 / TN`` against the extrapolated sequential baseline."""
        return self.baseline_time / self.total_time

    @property
    def efficiency(self) -> float:
        """``speedup / N`` (Fig 2's y-axis)."""
        return self.speedup / self.nranks

    @property
    def nodes_per_second(self) -> float:
        return self.total_nodes / self.total_time

    @property
    def mean_search_time(self) -> float:
        """Average per-process search time (Fig 14's y-axis)."""
        return self.search_time_total / self.nranks

    @property
    def mean_session_duration(self) -> float:
        """Average work-discovery session duration (Fig 10's y-axis)."""
        return self.sessions.mean_duration

    # ------------------------------------------------------------------
    # Scheduling-latency metric
    # ------------------------------------------------------------------

    def occupancy_curve(self) -> OccupancyCurve:
        if self.trace is None:
            raise ReproError(
                "run was not traced; pass trace=True in the config"
            )
        return OccupancyCurve(self.trace, self.nranks, self.total_time)

    def latency_profile(
        self, occupancies: np.ndarray | None = None
    ) -> LatencyProfile:
        if self.trace is None:
            raise ReproError(
                "run was not traced; pass trace=True in the config"
            )
        if occupancies is None:
            if self._profile is None:
                self._profile = latency_profile(
                    self.trace, self.nranks, self.total_time
                )
            return self._profile
        return latency_profile(
            self.trace, self.nranks, self.total_time, occupancies
        )

    # ------------------------------------------------------------------

    @classmethod
    def from_outcome(
        cls, outcome: SimOutcome, baseline_time: float | None = None
    ) -> "RunResult":
        """Derive the refined result from a raw simulation outcome.

        ``baseline_time`` defaults to the paper's extrapolation: the
        node count times the per-node compute time (what a single
        process traversing the same tree would take).
        """
        cfg = outcome.config
        workers = outcome.workers
        if baseline_time is None:
            baseline_time = outcome.total_nodes * cfg.per_node_time
        sessions: list[Session] = []
        for w in workers:
            sessions.extend(w.sessions)
        trace = None
        if outcome.recorders is not None:
            raw = ActivityTrace.from_recorders(outcome.recorders)
            # Undo the simulated clock skew, as the paper does.
            trace = (
                raw.corrected(outcome.clock.offsets)
                if outcome.clock.enabled
                else raw
            )
        events = None
        if outcome.event_recorders is not None:
            # Deferred import: repro.trace.events is also imported by
            # the sim layer; resolving it lazily keeps RunResult free
            # of import-order coupling.  Event timestamps are true
            # simulation time (no skew to correct).
            from repro.trace.events import EventTrace

            events = EventTrace.from_recorders(outcome.event_recorders)
        # Config resolution is guaranteed by WorkStealingConfig's
        # __post_init__; the .name accesses below raise cleanly if not.
        return cls(
            label=cfg.label(),
            tree_name=cfg.tree.name,
            nranks=cfg.nranks,
            allocation=cfg.allocation.name,
            selector=cfg.selector.name,
            steal_policy=cfg.steal_policy.name,
            compute_rounds=cfg.compute_rounds,
            total_nodes=outcome.total_nodes,
            total_time=outcome.total_time,
            baseline_time=baseline_time,
            steal_requests=sum(w.steal_requests_sent for w in workers),
            failed_steals=sum(w.failed_steals for w in workers),
            successful_steals=sum(w.successful_steals for w in workers),
            nodes_stolen=sum(w.nodes_received for w in workers),
            chunks_stolen=sum(w.chunks_received for w in workers),
            search_time_total=sum(w.search_time for w in workers),
            sessions=summarize_sessions(sessions, cfg.nranks),
            per_rank_nodes=np.array([w.nodes_processed for w in workers]),
            per_rank_search_time=np.array([w.search_time for w in workers]),
            events_processed=outcome.events_processed,
            messages_dropped=outcome.messages_dropped,
            probes_started=outcome.probes_started,
            requests_forwarded=sum(w.requests_forwarded for w in workers),
            trace=trace,
            events=events,
        )

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.label}: T={self.total_time * 1e3:.2f}ms "
            f"speedup={self.speedup:.1f} eff={self.efficiency:.2f} "
            f"failed={self.failed_steals} "
            f"search={self.mean_search_time * 1e3:.2f}ms"
        )

    # ------------------------------------------------------------------
    # Serialization (the repro.exec contract): run_uts, run_many and
    # the on-disk result cache all speak this one format.
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data form of the result; see :meth:`from_dict`.

        Exact round-trip: ints stay ints, floats survive via JSON's
        shortest-repr encoding, the activity trace (when present) is
        stored transition-by-transition.  The lazily-computed latency
        profile is derived data and deliberately not serialized.
        """
        trace = None
        if self.trace is not None:
            trace = [
                [times.tolist(), states.tolist()]
                for times, states in self.trace.transitions
            ]
        return {
            "label": self.label,
            "tree_name": self.tree_name,
            "nranks": self.nranks,
            "allocation": self.allocation,
            "selector": self.selector,
            "steal_policy": self.steal_policy,
            "compute_rounds": self.compute_rounds,
            "total_nodes": self.total_nodes,
            "total_time": self.total_time,
            "baseline_time": self.baseline_time,
            "steal_requests": self.steal_requests,
            "failed_steals": self.failed_steals,
            "successful_steals": self.successful_steals,
            "nodes_stolen": self.nodes_stolen,
            "chunks_stolen": self.chunks_stolen,
            "search_time_total": self.search_time_total,
            "sessions": asdict(self.sessions),
            "per_rank_nodes": self.per_rank_nodes.tolist(),
            "per_rank_search_time": self.per_rank_search_time.tolist(),
            "events_processed": self.events_processed,
            "messages_dropped": self.messages_dropped,
            "probes_started": self.probes_started,
            "requests_forwarded": self.requests_forwarded,
            "trace": trace,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise ReproError(
                f"result data must be a dict, got {type(data).__name__}"
            )
        kwargs = dict(data)
        try:
            sessions = SessionStats(**kwargs.pop("sessions"))
            trace_data = kwargs.pop("trace")
            kwargs["per_rank_nodes"] = np.asarray(
                kwargs["per_rank_nodes"], dtype=np.int64
            )
            kwargs["per_rank_search_time"] = np.asarray(
                kwargs["per_rank_search_time"], dtype=np.float64
            )
        except (KeyError, TypeError) as exc:
            raise ReproError(f"malformed result data: {exc}") from None
        trace = None
        if trace_data is not None:
            trace = ActivityTrace(
                [
                    (
                        np.asarray(times, dtype=np.float64),
                        np.asarray(states, dtype=bool),
                    )
                    for times, states in trace_data
                ]
            )
        try:
            return cls(sessions=sessions, trace=trace, **kwargs)
        except TypeError as exc:
            raise ReproError(f"malformed result data: {exc}") from None

    def to_json(self) -> str:
        """Compact JSON encoding of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_json(cls, payload: str) -> "RunResult":
        """Inverse of :meth:`to_json`."""
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ReproError(f"malformed result JSON: {exc}") from None
        return cls.from_dict(data)
