"""High-level distributed work-stealing API.

:func:`repro.ws.runner.run_uts` is the front door of the library: give
it a :class:`~repro.core.config.WorkStealingConfig` (or the pieces of
one) and get back a :class:`~repro.ws.results.RunResult` with every
number the paper reports — runtime, speedup, efficiency, failed
steals, search times, work-discovery sessions and the activity trace
feeding the scheduling-latency metric.
"""

from repro.ws.results import RunResult
from repro.ws.runner import run_uts, sequential_baseline

__all__ = ["RunResult", "run_uts", "sequential_baseline"]
