"""CLI for the perf harness: ``python -m repro.perf``.

Usage::

    python -m repro.perf                 # full suite, writes BENCH_2.json
    python -m repro.perf --quick         # CI smoke sizes (~seconds)
    python -m repro.perf --out perf.json --trials 5

The JSON artifact carries both halves of the before/after record: the
pre-optimisation baseline (:data:`repro.perf.PRE_PR_BASELINE`, measured
on the commit before the DES optimisation pass) and the numbers from
this run, plus their ratio.  Absolute numbers vary per machine — the
meaningful figure is the speedup of the headline events/sec, measured
on the same machine as the baseline it is compared against.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time

from repro.perf import (
    PRE_PR_BASELINE,
    bench_event_throughput,
    bench_placement_scale,
    bench_selector_sampling,
    bench_tree_generation,
)


def _git_commit() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Time the simulator's hot paths and emit BENCH JSON.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes for CI smoke runs (seconds, not minutes)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_2.json",
        help="output JSON path (default: BENCH_2.json)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        metavar="N",
        help="event-throughput trials (default: 3, quick: 2)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        trials = args.trials or 2
        sizes = dict(
            gen_nodes=30_000,
            sel_draws=10_000,
            throughput_tree="T3S",
            throughput_ranks=16,
            placement_ranks=1024,
        )
    else:
        trials = args.trials or 3
        sizes = dict(
            gen_nodes=200_000,
            sel_draws=50_000,
            throughput_tree="T3M",
            throughput_ranks=32,
            placement_ranks=8192,
        )

    def stage(label):
        print(f"[perf] {label} ...", file=sys.stderr, flush=True)

    stage("tree generation")
    tree_gen = bench_tree_generation(max_nodes=sizes["gen_nodes"])
    stage("selector sampling")
    selectors = bench_selector_sampling(draws=sizes["sel_draws"])
    stage(
        f"event throughput ({sizes['throughput_tree']}, "
        f"{sizes['throughput_ranks']} ranks, {trials} trials)"
    )
    throughput = bench_event_throughput(
        tree=sizes["throughput_tree"],
        nranks=sizes["throughput_ranks"],
        trials=trials,
    )
    stage(f"placement scale ({sizes['placement_ranks']} ranks)")
    placement = bench_placement_scale(nranks=sizes["placement_ranks"])

    headline = {
        "events_per_sec": throughput["events_per_sec"],
        "baseline_events_per_sec": PRE_PR_BASELINE["events_per_sec"],
        "speedup": round(
            throughput["events_per_sec"] / PRE_PR_BASELINE["events_per_sec"], 2
        ),
        "comparable_to_baseline": not args.quick,
    }
    report = {
        "schema": "repro-perf-v1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "commit": _git_commit(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": args.quick,
        "baseline": PRE_PR_BASELINE,
        "results": {
            "tree_generation": tree_gen,
            "selector_sampling": selectors,
            "event_throughput": throughput,
            "placement_scale": placement,
        },
        "headline": headline,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(json.dumps(headline, indent=2))
    print(f"[perf] wrote {args.out}", file=sys.stderr)
    if args.quick:
        print(
            "[perf] note: --quick sizes differ from the baseline config; "
            "the speedup field is not machine-comparable in this mode",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
