"""Microbenchmark harness for the simulator's hot paths.

``python -m repro.perf`` times the layers the DES optimisation work
targets and emits a ``BENCH_<n>.json`` with before/after numbers:

* **tree generation** — raw node-expansion rate of the UTS generator
  driven through the chunked stack (the simulator's inner loop without
  any event machinery);
* **selector sampling** — ``next_victim()`` draw rate for the paper's
  three selector families over a real placement;
* **event throughput** — the headline number: events/second of a full
  ``Cluster.run`` on the Fig 2 configuration (T3M tree, 32 ranks,
  reference selector);
* **end-to-end** — wall time of that same run;
* **placement scale** — building an 8192-rank placement and proving
  the lazy :class:`~repro.net.pairwise.PairwiseMetric` rows never
  materialise a dense N x N matrix;
* **sharded throughput** — events/second of the sharded
  conservative-lookahead engine vs shard count, against an interleaved
  same-machine single-queue baseline (``python -m repro.perf.sharded``
  writes this rung as ``BENCH_4.json``);
* **parallel shards** — wall time of the multiprocess sharded driver
  vs ``shard_workers`` and transport, with the coordinator-vs-worker
  time split that an Amdahl read-out needs
  (``python -m repro.perf.sharded --parallel`` writes ``BENCH_5.json``).

Scenario functions are plain callables returning dicts so tests can
drive them with small sizes; the CLI composes them into the JSON
artifact (see ``__main__``).
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.bench.experiments import experiment_config
from repro.net.allocation import allocation_by_name, build_placement
from repro.sim.cluster import Cluster
from repro.uts.stack import ChunkedStack
from repro.uts.tree import TreeGenerator
from repro.uts.params import tree_by_name

__all__ = [
    "PRE_PR_BASELINE",
    "bench_tree_generation",
    "bench_selector_sampling",
    "bench_event_throughput",
    "bench_placement_scale",
    "bench_sharded_throughput",
    "bench_parallel_shards",
]

#: Event throughput of the Fig 2 configuration measured at the commit
#: immediately before the DES optimisation pass.  The "before" half of
#: the before/after record.  Measured *interleaved* with the optimised
#: build on the same machine state (alternating subprocess runs against
#: a worktree of the baseline commit, best of 8) so the ratio is not
#: polluted by container CPU-speed drift.
PRE_PR_BASELINE = {
    "events_per_sec": 53333,
    "commit": "8a80598",
    "config": "T3M, 32 ranks, 1/N, reference, steal-one",
    "method": "interleaved best-of-8 vs optimised build, same machine state",
}


def bench_tree_generation(
    tree: str = "T3M", max_nodes: int = 200_000, poll_interval: int = 2
) -> dict:
    """Expand ``tree`` through the chunked stack; report nodes/sec.

    Mirrors the simulator's quantum loop (pop a quantum, expand, push
    children) with no event queue, isolating generator + stack cost.
    """
    generator = TreeGenerator(tree_by_name(tree))
    stack = ChunkedStack(20)
    state, depth = generator.root()
    t0 = time.perf_counter()
    stack.push_batch_list([state], [depth])
    nodes = 0
    use_list = generator.supports_list_path
    while stack._chunks and nodes < max_nodes:
        if use_list:
            states, depths = stack.pop_batch_list(poll_interval)
            cs, cd = generator.children_list(states, depths)
            if cs:
                stack.push_batch_list(cs, cd)
            nodes += len(states)
        else:
            states, depths = stack.pop_batch(poll_interval)
            cs, cd, _ = generator.children_batch(states, depths)
            if len(cs):
                stack.push_batch(cs, cd)
            nodes += len(states)
    elapsed = time.perf_counter() - t0
    return {
        "tree": tree,
        "nodes": nodes,
        "seconds": round(elapsed, 6),
        "nodes_per_sec": round(nodes / elapsed) if elapsed else None,
    }


def bench_selector_sampling(
    nranks: int = 64, draws: int = 50_000, seed: int = 0
) -> dict:
    """Victim-draw rate for the paper's selector families."""
    from repro.core.victim import selector_by_name

    placement = build_placement(nranks, allocation_by_name("1/N"))
    out: dict[str, dict] = {}
    for name in ("reference", "rand", "tofu"):
        factory = selector_by_name(name)
        selector = factory.make(0, nranks, placement, seed=seed)
        next_victim = selector.next_victim
        t0 = time.perf_counter()
        for _ in range(draws):
            next_victim()
        elapsed = time.perf_counter() - t0
        out[name] = {
            "draws": draws,
            "seconds": round(elapsed, 6),
            "draws_per_sec": round(draws / elapsed) if elapsed else None,
        }
    return {"nranks": nranks, "selectors": out}


def bench_event_throughput(
    tree: str = "T3M", nranks: int = 32, trials: int = 3
) -> dict:
    """The headline: full ``Cluster.run`` on the Fig 2 configuration.

    Reports the best events/sec over ``trials`` runs (the run is
    deterministic; trials only absorb machine noise) plus the wall
    time of the best run as the end-to-end figure.
    """
    cfg = experiment_config(
        tree, nranks, allocation="1/N", selector="reference", steal_policy="one"
    )
    best_evps = 0.0
    best_seconds = None
    events = nodes = 0
    for _ in range(trials):
        cluster = Cluster(cfg)
        t0 = time.perf_counter()
        outcome = cluster.run()
        elapsed = time.perf_counter() - t0
        events = outcome.events_processed
        nodes = outcome.total_nodes
        evps = events / elapsed
        if evps > best_evps:
            best_evps = evps
            best_seconds = elapsed
    return {
        "tree": tree,
        "nranks": nranks,
        "trials": trials,
        "events": events,
        "nodes": nodes,
        "seconds": round(best_seconds, 6) if best_seconds else None,
        "events_per_sec": round(best_evps),
    }


def bench_sharded_throughput(
    tree: str = "T3L",
    nranks: int = 1024,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    trials: int = 2,
    sequential_trials: int | None = None,
) -> dict:
    """Events/sec of the sharded engine vs shard count, with the
    single-queue engine measured *interleaved* on the same machine.

    Each trial is one round: a sequential ``Cluster.run`` followed by a
    ``ShardedCluster.run`` per shard count, so the engines see the same
    machine state within a round and the ratio is not polluted by CPU
    drift (the BENCH_2 method).  ``sequential_trials`` caps the
    baseline runs separately — at 4096 ranks the sequential engine is
    the very bottleneck this rung documents, and one ~half-hour
    baseline is enough.

    NIC contention is off for both engines (the sharded engine rejects
    it; the sequential run must match the configuration bit for bit).
    """
    from repro.sim.shard import ShardedCluster

    cfg = experiment_config(
        tree,
        nranks,
        allocation="1/N",
        selector="reference",
        steal_policy="one",
        nic_service_time=0.0,
    )
    if sequential_trials is None:
        sequential_trials = trials

    best: dict[str, dict] = {}

    def record(key: str, outcome, elapsed: float, extra: dict) -> None:
        evps = outcome.events_processed / elapsed if elapsed else 0.0
        slot = best.get(key)
        if slot is None or evps > slot["events_per_sec"]:
            best[key] = {
                "events": outcome.events_processed,
                "nodes": outcome.total_nodes,
                "seconds": round(elapsed, 6),
                "events_per_sec": round(evps),
                **extra,
            }

    for trial in range(max(trials, sequential_trials)):
        if trial < sequential_trials:
            t0 = time.perf_counter()
            outcome = Cluster(cfg).run()
            record(
                "sequential",
                outcome,
                time.perf_counter() - t0,
                {"engine": "sequential"},
            )
        if trial < trials:
            for shards in shard_counts:
                sharded_cfg = replace(cfg, engine="sharded", shards=shards)
                t0 = time.perf_counter()
                outcome = ShardedCluster(sharded_cfg).run()
                record(
                    f"sharded-{shards}",
                    outcome,
                    time.perf_counter() - t0,
                    {"engine": "sharded", "shards": shards},
                )

    seq = best.get("sequential")
    rows = [best[f"sharded-{s}"] for s in shard_counts]
    if seq is not None:
        for row in rows:
            row["speedup_vs_sequential"] = round(
                row["events_per_sec"] / seq["events_per_sec"], 2
            )
            # Both engines must have simulated the identical job.
            if (row["events"], row["nodes"]) != (seq["events"], seq["nodes"]):
                raise AssertionError(
                    f"engines diverged on {tree}@{nranks}: "
                    f"sequential {seq['events']}/{seq['nodes']} vs "
                    f"sharded-{row['shards']} {row['events']}/{row['nodes']}"
                )
    return {
        "tree": tree,
        "nranks": nranks,
        "trials": trials,
        "sequential_trials": sequential_trials,
        "method": "interleaved rounds, best-of per engine, same machine",
        "sequential": seq,
        "sharded": rows,
    }


def bench_parallel_shards(
    tree: str = "T3XL",
    nranks: int = 4096,
    shards: int = 8,
    worker_counts: tuple[int, ...] = (1, 2, 4, 8),
    transports: tuple[str, ...] = ("pipe", "shm"),
    trials: int = 1,
) -> dict:
    """Wall time of the sharded engine vs ``shard_workers``, with the
    coordinator/worker time split.

    ``shard_workers=1`` is the in-process driver — the baseline every
    multiprocess row is normalised against.  Rows with ``workers > 1``
    are run once per transport; every row must process the identical
    event/node totals (the bit-identity contract's cheap proxy — the
    full byte compare lives in tests/sim/test_sharded.py).

    Per multiprocess row the engine's :attr:`parallel_stats` are folded
    in: ``coordinator_wait_s`` (time the coordinator spent blocked on
    child replies), per-child busy seconds, round/RTT counts and wire
    bytes.  ``sum(worker_busy_s)`` vs wall time is the Amdahl read-out:
    on a single-core host wall ~= coordinator work + the *sum* of child
    busy time and the sweep documents overhead, not speedup — which is
    why ``cpu_count`` is recorded alongside.
    """
    import os

    from repro.sim.shard import ShardedCluster

    cfg = experiment_config(
        tree,
        nranks,
        allocation="1/N",
        selector="reference",
        steal_policy="one",
        nic_service_time=0.0,
    )
    plan: list[tuple[int, str]] = []
    for workers in worker_counts:
        if workers <= 1:
            plan.append((1, "inprocess"))
        else:
            plan.extend((workers, t) for t in transports)

    best: dict[tuple[int, str], dict] = {}
    for _ in range(max(1, trials)):
        for workers, transport in plan:
            sharded_cfg = replace(
                cfg,
                engine="sharded",
                shards=shards,
                shard_workers=workers,
                shard_transport=transport if workers > 1 else "pipe",
            )
            cluster = ShardedCluster(sharded_cfg)
            t0 = time.perf_counter()
            outcome = cluster.run()
            elapsed = time.perf_counter() - t0
            row = {
                "workers": workers,
                "transport": transport,
                "events": outcome.events_processed,
                "nodes": outcome.total_nodes,
                "seconds": round(elapsed, 6),
                "events_per_sec": round(outcome.events_processed / elapsed)
                if elapsed
                else None,
            }
            stats = cluster.parallel_stats
            if stats is not None:
                busy = stats["worker_busy_s"]
                row.update(
                    {
                        "transport": stats["transport"],
                        "rounds": stats["rounds"],
                        "round_trips": stats["round_trips"],
                        "skipped_child_steps": stats["skipped_child_steps"],
                        "coordinator_wait_s": round(
                            stats["coordinator_wait_s"], 6
                        ),
                        "worker_busy_s": [round(b, 6) for b in busy],
                        "sum_worker_busy_s": round(sum(busy), 6),
                        "max_worker_busy_s": round(max(busy), 6),
                        "bytes_sent": stats["bytes_sent"],
                        "bytes_recv": stats["bytes_recv"],
                    }
                )
            key = (workers, transport)
            slot = best.get(key)
            if slot is None or row["seconds"] < slot["seconds"]:
                best[key] = row

    rows = [best[key] for key in ((w, t) for w, t in plan)]
    base = next((r for r in rows if r["workers"] == 1), None)
    for row in rows:
        if base is not None:
            row["speedup_vs_workers1"] = round(
                base["seconds"] / row["seconds"], 2
            )
            if (row["events"], row["nodes"]) != (
                base["events"],
                base["nodes"],
            ):
                raise AssertionError(
                    f"drivers diverged on {tree}@{nranks}: workers=1 "
                    f"{base['events']}/{base['nodes']} vs "
                    f"workers={row['workers']}/{row['transport']} "
                    f"{row['events']}/{row['nodes']}"
                )
    return {
        "tree": tree,
        "nranks": nranks,
        "shards": shards,
        "trials": trials,
        "cpu_count": os.cpu_count(),
        "method": "interleaved rounds, best-of per row, same machine",
        "rows": rows,
    }


def bench_placement_scale(nranks: int = 8192, sample_rows: int = 16) -> dict:
    """Build a large placement and prove the lazy-row path held.

    Touches a spread of latency/euclidean/hops rows (what selectors
    and the transport do) and asserts no metric materialised a dense
    N x N matrix along the way.
    """
    t0 = time.perf_counter()
    placement = build_placement(nranks, allocation_by_name("1/N"))
    build_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    step = max(1, nranks // sample_rows)
    for i in range(0, nranks, step):
        placement.latency.row(i)
        placement.euclidean.row(i)
        placement.hops.row(i)
    row_seconds = time.perf_counter() - t0

    dense_calls = (
        placement.latency.dense_calls
        + placement.euclidean.dense_calls
        + placement.hops.dense_calls
    )
    if dense_calls:
        raise AssertionError(
            f"{nranks}-rank placement took the dense escape hatch "
            f"{dense_calls} times"
        )
    return {
        "nranks": nranks,
        "build_seconds": round(build_seconds, 6),
        "row_sample_seconds": round(row_seconds, 6),
        "rows_sampled": 3 * len(range(0, nranks, step)),
        "dense_calls": dense_calls,
        "materialised": any(
            m.materialised
            for m in (placement.latency, placement.euclidean, placement.hops)
        ),
    }
