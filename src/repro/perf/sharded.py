"""Sharded-engine throughput rung: ``python -m repro.perf.sharded``.

Writes ``BENCH_4.json``: events/second of the conservative-lookahead
sharded engine (:mod:`repro.sim.shard`) versus shard count, with the
single-queue engine measured interleaved on the same machine (the
BENCH_2 method).  Two rungs by default:

* **T3L @ 1024 ranks** — the old top of the large ladder, where the
  shard-count curve is cheap enough to sweep;
* **T3XL @ 4096 ranks** — the scale the single-queue engine cannot
  reach in practice; its one baseline run is the point of the rung.

Usage::

    python -m repro.perf.sharded                 # full, ~30+ min
    python -m repro.perf.sharded --quick         # CI smoke (~seconds)
    python -m repro.perf.sharded --skip-4096     # only the 1024 rung
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time

from repro.perf import bench_sharded_throughput


def _git_commit() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.sharded",
        description="Benchmark the sharded engine and emit BENCH JSON.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes for CI smoke runs (seconds, not minutes)",
    )
    parser.add_argument(
        "--skip-4096",
        action="store_true",
        help="skip the 4096-rank rung (its sequential baseline is slow)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_4.json",
        help="output JSON path (default: BENCH_4.json)",
    )
    args = parser.parse_args(argv)

    def stage(label):
        print(f"[perf.sharded] {label} ...", file=sys.stderr, flush=True)

    rungs = []
    if args.quick:
        stage("quick rung (T3S, 64 ranks)")
        rungs.append(
            bench_sharded_throughput(
                tree="T3S", nranks=64, shard_counts=(1, 2), trials=1
            )
        )
    else:
        stage("T3L, 1024 ranks, shard sweep")
        rungs.append(
            bench_sharded_throughput(
                tree="T3L",
                nranks=1024,
                shard_counts=(1, 2, 4, 8),
                trials=2,
                sequential_trials=1,
            )
        )
        if not args.skip_4096:
            stage("T3XL, 4096 ranks (sequential baseline is ~30 min)")
            rungs.append(
                bench_sharded_throughput(
                    tree="T3XL",
                    nranks=4096,
                    shard_counts=(8,),
                    trials=1,
                    sequential_trials=1,
                )
            )

    headline = {}
    top = rungs[-1]
    if top["sequential"] is not None and top["sharded"]:
        best = max(top["sharded"], key=lambda r: r["events_per_sec"])
        headline = {
            "rung": f"{top['tree']}@{top['nranks']}",
            "sharded_events_per_sec": best["events_per_sec"],
            "sequential_events_per_sec": top["sequential"]["events_per_sec"],
            "speedup": best["speedup_vs_sequential"],
            "shards": best["shards"],
        }

    report = {
        "schema": "repro-perf-sharded-v1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "commit": _git_commit(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": args.quick,
        "results": rungs,
        "headline": headline,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(json.dumps(headline, indent=2))
    print(f"[perf.sharded] wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
