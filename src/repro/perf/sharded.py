"""Sharded-engine throughput rung: ``python -m repro.perf.sharded``.

Writes ``BENCH_4.json``: events/second of the conservative-lookahead
sharded engine (:mod:`repro.sim.shard`) versus shard count, with the
single-queue engine measured interleaved on the same machine (the
BENCH_2 method).  Two rungs by default:

* **T3L @ 1024 ranks** — the old top of the large ladder, where the
  shard-count curve is cheap enough to sweep;
* **T3XL @ 4096 ranks** — the scale the single-queue engine cannot
  reach in practice; its one baseline run is the point of the rung.

``--parallel`` switches to the multiprocess rung and writes
``BENCH_5.json``: wall time of the sharded engine versus
``shard_workers`` and transport at T3XL @ 4096 ranks / 8 shards, with
the coordinator-vs-worker time split from
:func:`repro.perf.bench_parallel_shards`.  ``cpu_count`` is recorded in
the artifact — on a single-core host the sweep documents protocol
overhead (wall ~= coordinator + *sum* of child busy time), and the
per-child busy seconds are what a multi-core wall clock would approach.

Usage::

    python -m repro.perf.sharded                 # full, ~30+ min
    python -m repro.perf.sharded --quick         # CI smoke (~seconds)
    python -m repro.perf.sharded --skip-4096     # only the 1024 rung
    python -m repro.perf.sharded --parallel      # workers sweep -> BENCH_5
    python -m repro.perf.sharded --parallel --quick
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time

from repro.perf import bench_parallel_shards, bench_sharded_throughput


def _git_commit() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.sharded",
        description="Benchmark the sharded engine and emit BENCH JSON.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes for CI smoke runs (seconds, not minutes)",
    )
    parser.add_argument(
        "--skip-4096",
        action="store_true",
        help="skip the 4096-rank rung (its sequential baseline is slow)",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="sweep shard_workers x transport instead of shard counts "
        "(writes BENCH_5.json)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="output JSON path (default: BENCH_4.json, "
        "or BENCH_5.json with --parallel)",
    )
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = "BENCH_5.json" if args.parallel else "BENCH_4.json"

    def stage(label):
        print(f"[perf.sharded] {label} ...", file=sys.stderr, flush=True)

    if args.parallel:
        return _main_parallel(args, stage)

    rungs = []
    if args.quick:
        stage("quick rung (T3S, 64 ranks)")
        rungs.append(
            bench_sharded_throughput(
                tree="T3S", nranks=64, shard_counts=(1, 2), trials=1
            )
        )
    else:
        stage("T3L, 1024 ranks, shard sweep")
        rungs.append(
            bench_sharded_throughput(
                tree="T3L",
                nranks=1024,
                shard_counts=(1, 2, 4, 8),
                trials=2,
                sequential_trials=1,
            )
        )
        if not args.skip_4096:
            stage("T3XL, 4096 ranks (sequential baseline is ~30 min)")
            rungs.append(
                bench_sharded_throughput(
                    tree="T3XL",
                    nranks=4096,
                    shard_counts=(8,),
                    trials=1,
                    sequential_trials=1,
                )
            )

    headline = {}
    top = rungs[-1]
    if top["sequential"] is not None and top["sharded"]:
        best = max(top["sharded"], key=lambda r: r["events_per_sec"])
        headline = {
            "rung": f"{top['tree']}@{top['nranks']}",
            "sharded_events_per_sec": best["events_per_sec"],
            "sequential_events_per_sec": top["sequential"]["events_per_sec"],
            "speedup": best["speedup_vs_sequential"],
            "shards": best["shards"],
        }

    report = {
        "schema": "repro-perf-sharded-v1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "commit": _git_commit(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": args.quick,
        "results": rungs,
        "headline": headline,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(json.dumps(headline, indent=2))
    print(f"[perf.sharded] wrote {args.out}", file=sys.stderr)
    return 0


def _main_parallel(args, stage) -> int:
    if args.quick:
        stage("quick parallel rung (T3S, 64 ranks, 4 shards)")
        rung = bench_parallel_shards(
            tree="T3S",
            nranks=64,
            shards=4,
            worker_counts=(1, 2),
            transports=("pipe", "shm"),
            trials=1,
        )
    else:
        stage("T3XL, 4096 ranks, 8 shards, shard_workers sweep")
        rung = bench_parallel_shards(
            tree="T3XL",
            nranks=4096,
            shards=8,
            worker_counts=(1, 2, 4, 8),
            transports=("pipe", "shm"),
            trials=1,
        )

    base = next((r for r in rung["rows"] if r["workers"] == 1), None)
    multi = [r for r in rung["rows"] if r["workers"] > 1]
    headline = {}
    if base is not None and multi:
        best = min(multi, key=lambda r: r["seconds"])
        headline = {
            "rung": f"{rung['tree']}@{rung['nranks']}/{rung['shards']} shards",
            "cpu_count": rung["cpu_count"],
            "workers1_seconds": base["seconds"],
            "best_parallel_seconds": best["seconds"],
            "best_parallel_workers": best["workers"],
            "best_parallel_transport": best["transport"],
            "speedup_vs_workers1": best["speedup_vs_workers1"],
            "best_parallel_max_worker_busy_s": best.get("max_worker_busy_s"),
        }

    report = {
        "schema": "repro-perf-parallel-shards-v1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "commit": _git_commit(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": args.quick,
        "results": [rung],
        "headline": headline,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(json.dumps(headline, indent=2))
    print(f"[perf.sharded] wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
