"""repro.service — simulation-as-a-service over :mod:`repro.exec`.

A long-running asyncio job front-end for the work-stealing simulator:

* :class:`SimulationService` — accepts sweep submissions, dedups them
  against the artifact store *and* against work already in flight
  (one fingerprint, one execution), schedules with priority +
  weighted fair share onto a shared worker pool, and streams typed
  :class:`~repro.core.jobs.JobEvent`\\ s;
* :class:`SweepHandle` — one submission's progress stream and results;
* :class:`FairShareScheduler` — the deterministic queue discipline
  (priority bands, stride-scheduled weighted fair share, per-client
  FIFO);
* :class:`ArtifactStore` — the versioned result + artifact store with
  size-bounded LRU eviction (a drop-in ``run_many(store=...)`` value);
* :func:`run_service_sweep` — the one-call synchronous wrapper;
* ``python -m repro.service`` — submit preset sweeps from the shell;
* ``python -m repro.service.loadgen`` — the service load benchmark.
"""

from repro.core.jobs import (
    ArtifactRef,
    Job,
    JobEvent,
    JobFailure,
    JobState,
)
from repro.service.scheduler import ClientShare, FairShareScheduler
from repro.service.service import (
    ServiceStats,
    SimulationService,
    SweepHandle,
    run_service_sweep,
)
from repro.service.store import ArtifactStore, StoreStats

__all__ = [
    "SimulationService",
    "SweepHandle",
    "ServiceStats",
    "run_service_sweep",
    "FairShareScheduler",
    "ClientShare",
    "ArtifactStore",
    "StoreStats",
    "ArtifactRef",
    "Job",
    "JobEvent",
    "JobFailure",
    "JobState",
]
