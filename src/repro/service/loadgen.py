"""Service load benchmark: ``python -m repro.service.loadgen``.

Drives a :class:`~repro.service.SimulationService` with closed-loop
clients drawing configs from a **zipfian popularity distribution** —
the canonical shape of a shared result cache's traffic (a few sweeps
everyone reruns, a long tail of one-offs) — and reports BENCH-style
JSON:

* sustained **sweeps/sec** over the measured window,
* **p50/p99 submit-to-result latency**, reported separately for
  *cold* requests (the client waited on a real execution) and *warm*
  ones (served terminal at submit: a store hit) — the two populations
  differ by orders of magnitude, so pooled percentiles are kept only
  for cross-report continuity,
* **cache hit rate** (store hits + in-flight joins over submissions),
* executed-vs-distinct counts proving the one-fingerprint-one-execution
  dedup guarantee.

Usage::

    python -m repro.service.loadgen --duration 10 --clients 4
    python -m repro.service.loadgen --duration 10 \\
        --require-throughput 5 --require-hit-rate 0.9   # CI gate

The config universe is ``--universe`` small-tree (T3XS) configs
differing only by seed, ranked by popularity; client *c* requests rank
*i* with probability proportional to ``1 / (i+1)**s`` (``--zipf``).
Every run is milliseconds long, so the benchmark measures the service
stack — submission, dedup, scheduling, store round-trips — not the
simulator.

``--engine sharded --shard-workers N`` routes every request through
the sharded engine's multiprocess driver nested inside the service's
worker pool.  Results are bit-identical to sequential runs (the knobs
share fingerprints and store entries by design), so the scenario
exercises the routing and nested process management, not new physics.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import random
import subprocess
import sys
import tempfile
import time

from repro.core.config import WorkStealingConfig
from repro.uts.params import T3XS
from repro.service.service import SimulationService
from repro.service.store import ArtifactStore

__all__ = ["run_load", "main"]


def _universe(
    size: int,
    engine: str = "sequential",
    shards: int = 2,
    shard_workers: int = 1,
    shard_transport: str = "pipe",
) -> list[WorkStealingConfig]:
    """Popularity-ranked distinct configs (rank 0 = most popular).

    ``engine="sharded"`` routes every request through the sharded DES
    (optionally multiprocess via ``shard_workers``); results are
    bit-identical to the sequential engine, so the engine knobs change
    only where the service's CPU time goes — they share fingerprints,
    dedup slots and store entries with sequential runs by design.
    """
    engine_kw: dict = {}
    if engine != "sequential":
        engine_kw = {
            "engine": engine,
            "shards": shards,
            "shard_workers": shard_workers,
            "shard_transport": shard_transport,
        }
    return [
        WorkStealingConfig(tree=T3XS, nranks=4, seed=seed, **engine_kw)
        for seed in range(size)
    ]


def _zipf_weights(size: int, exponent: float) -> list[float]:
    return [1.0 / (rank + 1) ** exponent for rank in range(size)]


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    return sorted_values[lo] + (sorted_values[hi] - sorted_values[lo]) * (pos - lo)


async def _client(
    service: SimulationService,
    name: str,
    universe: list[WorkStealingConfig],
    weights: list[float],
    deadline: float,
    rng: random.Random,
    cold: list[float],
    warm: list[float],
) -> int:
    """Closed loop: submit one config, wait for its result, repeat.

    Each request's latency lands in one of two distributions: *warm*
    when the sweep's job was already terminal at submit time (a store
    hit — pure service overhead), *cold* when the client had to wait
    for a real execution (a fresh run, or a dedup join onto one still
    in flight).  Pooling them hides the bimodality: the hit-dominated
    percentiles say fractions of a millisecond while the max is a full
    simulation, and neither population is characterised.
    """
    sweeps = 0
    while time.monotonic() < deadline:
        config = rng.choices(universe, weights=weights)[0]
        start = time.monotonic()
        handle = await service.submit([config], client=name)
        hit = all(job.terminal for job in handle.jobs)
        await handle.results()
        (warm if hit else cold).append(time.monotonic() - start)
        sweeps += 1
    return sweeps


async def _drive(
    *,
    duration: float,
    clients: int,
    universe_size: int,
    zipf: float,
    workers: int,
    store_dir: str | None,
    seed: int,
    engine: str = "sequential",
    shards: int = 2,
    shard_workers: int = 1,
    shard_transport: str = "pipe",
) -> dict:
    universe = _universe(
        universe_size,
        engine=engine,
        shards=shards,
        shard_workers=shard_workers,
        shard_transport=shard_transport,
    )
    weights = _zipf_weights(universe_size, zipf)
    store = ArtifactStore(store_dir) if store_dir else ArtifactStore(
        tempfile.mkdtemp(prefix="repro-loadgen-")
    )
    cold: list[float] = []
    warm: list[float] = []
    async with SimulationService(workers, store) as service:
        start = time.monotonic()
        deadline = start + duration
        counts = await asyncio.gather(
            *(
                _client(
                    service,
                    f"client-{i}",
                    universe,
                    weights,
                    deadline,
                    random.Random(seed + i),
                    cold,
                    warm,
                )
                for i in range(clients)
            )
        )
        elapsed = time.monotonic() - start
        stats = service.stats()

    cold.sort()
    warm.sort()
    pooled = sorted(cold + warm)
    sweeps = sum(counts)
    submitted = stats.submitted
    hits = stats.cache_hits + stats.dedup_joins

    def _dist(values: list[float]) -> dict:
        return {
            "count": len(values),
            "p50_ms": round(_percentile(values, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(values, 0.99) * 1e3, 3),
            "max_ms": round(values[-1] * 1e3, 3) if values else 0.0,
        }

    return {
        "duration_s": round(elapsed, 3),
        "clients": clients,
        "workers": workers,
        "engine": engine,
        **(
            {
                "shards": shards,
                "shard_workers": shard_workers,
                "shard_transport": shard_transport,
            }
            if engine != "sequential"
            else {}
        ),
        "universe": universe_size,
        "zipf_exponent": zipf,
        "sweeps": sweeps,
        "sweeps_per_sec": round(sweeps / elapsed, 2) if elapsed else 0.0,
        "submitted": submitted,
        "cache_hits": stats.cache_hits,
        "dedup_joins": stats.dedup_joins,
        "hit_rate": round(hits / submitted, 4) if submitted else 0.0,
        "executed": stats.executed,
        "distinct_configs": universe_size,
        "failed": stats.failed,
        # Pooled percentiles kept for continuity with BENCH_3-era
        # reports; read the split distributions instead — pooling a
        # bimodal population makes both numbers misleading.
        "latency_p50_ms": round(_percentile(pooled, 0.50) * 1e3, 3),
        "latency_p99_ms": round(_percentile(pooled, 0.99) * 1e3, 3),
        "latency_max_ms": round(pooled[-1] * 1e3, 3) if pooled else 0.0,
        "latency_cold": _dist(cold),
        "latency_warm": _dist(warm),
    }


def run_load(
    duration: float = 10.0,
    clients: int = 4,
    universe: int = 25,
    zipf: float = 1.1,
    workers: int = 2,
    store_dir: str | None = None,
    seed: int = 0,
    engine: str = "sequential",
    shards: int = 2,
    shard_workers: int = 1,
    shard_transport: str = "pipe",
) -> dict:
    """Run the load benchmark and return its results dict."""
    return asyncio.run(
        _drive(
            duration=duration,
            clients=clients,
            universe_size=universe,
            zipf=zipf,
            workers=workers,
            store_dir=store_dir,
            seed=seed,
            engine=engine,
            shards=shards,
            shard_workers=shard_workers,
            shard_transport=shard_transport,
        )
    )


def _git_commit() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="Load-benchmark the simulation service and emit BENCH JSON.",
    )
    parser.add_argument("--duration", type=float, default=10.0, metavar="S")
    parser.add_argument("--clients", type=int, default=4, metavar="N")
    parser.add_argument(
        "--universe",
        type=int,
        default=25,
        metavar="N",
        help="distinct configs in the popularity ranking (default: 25)",
    )
    parser.add_argument(
        "--zipf",
        type=float,
        default=1.1,
        metavar="S",
        help="zipf exponent of config popularity (default: 1.1)",
    )
    parser.add_argument("--workers", type=int, default=2, metavar="N")
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="artifact store directory (default: fresh temp dir = cold start)",
    )
    parser.add_argument("--seed", type=int, default=0, metavar="N")
    parser.add_argument(
        "--engine",
        choices=("sequential", "sharded"),
        default="sequential",
        help="simulation engine for every config in the universe "
        "(results are bit-identical; only service CPU routing changes)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        metavar="N",
        help="shard count when --engine sharded (default: 2)",
    )
    parser.add_argument(
        "--shard-workers",
        type=int,
        default=1,
        metavar="N",
        help="OS processes per sharded run; 0 = one per core (default: 1)",
    )
    parser.add_argument(
        "--shard-transport",
        choices=("pipe", "shm"),
        default="pipe",
        help="cross-process transport when --shard-workers != 1",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also write the full BENCH JSON report here",
    )
    parser.add_argument(
        "--require-throughput",
        type=float,
        default=None,
        metavar="SPS",
        help="exit nonzero below this sweeps/sec (CI gate)",
    )
    parser.add_argument(
        "--require-hit-rate",
        type=float,
        default=None,
        metavar="FRAC",
        help="exit nonzero below this cache hit rate (CI gate)",
    )
    args = parser.parse_args(argv)

    print(
        f"[loadgen] {args.clients} clients x {args.duration}s, "
        f"universe={args.universe} zipf={args.zipf} workers={args.workers}",
        file=sys.stderr,
        flush=True,
    )
    results = run_load(
        duration=args.duration,
        clients=args.clients,
        universe=args.universe,
        zipf=args.zipf,
        workers=args.workers,
        store_dir=args.store,
        seed=args.seed,
        engine=args.engine,
        shards=args.shards,
        shard_workers=args.shard_workers,
        shard_transport=args.shard_transport,
    )
    report = {
        "schema": "repro-service-load-v1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "commit": _git_commit(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }
    print(json.dumps(report, indent=2))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"[loadgen] wrote {args.out}", file=sys.stderr)

    ok = True
    if args.require_throughput is not None and (
        results["sweeps_per_sec"] < args.require_throughput
    ):
        print(
            f"[loadgen] FAIL: {results['sweeps_per_sec']} sweeps/sec "
            f"< required {args.require_throughput}",
            file=sys.stderr,
        )
        ok = False
    if args.require_hit_rate is not None and (
        results["hit_rate"] < args.require_hit_rate
    ):
        print(
            f"[loadgen] FAIL: hit rate {results['hit_rate']} "
            f"< required {args.require_hit_rate}",
            file=sys.stderr,
        )
        ok = False
    if results["failed"]:
        print(f"[loadgen] FAIL: {results['failed']} jobs failed", file=sys.stderr)
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
