"""Versioned artifact store with a size-bounded LRU eviction policy.

:class:`ArtifactStore` promotes the plain result cache
(``benchmarks/_cache/``, :class:`~repro.exec.cache.ResultCache`) into
the durable storage layer of the simulation service:

* **same layout, same entries** — results live as
  ``<root>/<version>/<fingerprint>.json`` in exactly the cache's entry
  format, so every cache written by earlier releases reads back
  unchanged and ``run_many(store=...)`` accepts either class;
* **artifacts** — arbitrary by-products of a run (Chrome-trace
  exports, reports) stored next to their result under
  ``<root>/<version>/artifacts/<fingerprint>.<kind>``;
* **LRU eviction** — an optional byte budget (``max_bytes``); reads
  refresh an entry's recency (mtime), writes trigger eviction of the
  least-recently-used entries (result + its artifacts evict together)
  until the store fits the budget;
* **version hygiene** — entries of other package versions are invisible
  (inherited from the cache); :meth:`purge_stale_versions` reclaims
  their disk space.

Everything is crash-safe the way the cache is: writes are atomic
(temp file + ``os.replace``), corrupt entries read as misses, and
eviction tolerates files disappearing underneath it (two services may
share one store directory).
"""

from __future__ import annotations

import os
import re
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro._version import __version__
from repro.core.jobs import ArtifactRef
from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache
from repro.ws.results import RunResult

__all__ = ["ArtifactStore", "StoreStats"]

#: Artifact kinds are path components; keep them boring.
_KIND_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass(frozen=True)
class StoreStats:
    """Point-in-time accounting of one store version directory."""

    #: Result entries of the active version.
    entries: int
    #: Artifact files of the active version.
    artifacts: int
    #: Bytes held (results + artifacts).
    total_bytes: int
    #: Configured budget (``None`` = unbounded).
    max_bytes: int | None
    #: Entries evicted since this store object was created.
    evicted: int


class ArtifactStore(ResultCache):
    """Fingerprint-keyed result + artifact store with LRU eviction.

    Parameters
    ----------
    root:
        Store root (default: the cache's ``benchmarks/_cache``, or
        ``$REPRO_CACHE_DIR``).
    version:
        Version directory to serve (default: the package version).
    max_bytes:
        Byte budget for the active version directory.  ``None`` (the
        default) disables eviction — the store behaves like the plain
        cache plus artifacts.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        version: str = __version__,
        max_bytes: int | None = None,
    ):
        super().__init__(root, version)
        if max_bytes is not None and max_bytes < 1:
            raise ConfigurationError(
                f"max_bytes must be >= 1 or None, got {max_bytes}"
            )
        self.max_bytes = max_bytes
        self._evicted = 0

    # ------------------------------------------------------------------
    # Results (cache-compatible, recency-tracked)
    # ------------------------------------------------------------------

    def get(self, fingerprint: str) -> RunResult | None:
        """Cached result for ``fingerprint``; refreshes LRU recency."""
        result = super().get(fingerprint)
        if result is not None:
            self._touch(self.path_for(fingerprint))
        return result

    def put(
        self,
        fingerprint: str,
        result: RunResult,
        config: dict | None = None,
        elapsed: float | None = None,
    ) -> Path:
        """Persist ``result``; evicts LRU entries past the byte budget."""
        path = super().put(fingerprint, result, config=config, elapsed=elapsed)
        self.evict()
        return path

    # ------------------------------------------------------------------
    # Artifacts
    # ------------------------------------------------------------------

    @property
    def artifacts_dir(self) -> Path:
        """Directory holding artifacts for the active version."""
        return self.dir / "artifacts"

    def artifact_path(self, fingerprint: str, kind: str) -> Path:
        return self.artifacts_dir / f"{fingerprint}.{self._check_kind(kind)}"

    def put_artifact(
        self, fingerprint: str, kind: str, payload: bytes | str
    ) -> ArtifactRef:
        """Store one artifact atomically; returns its reference."""
        if isinstance(payload, str):
            payload = payload.encode("utf-8")
        path = self.artifact_path(fingerprint, kind)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{fingerprint[:12]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.evict()
        return ArtifactRef(
            fingerprint=fingerprint, kind=kind, path=path, nbytes=len(payload)
        )

    def get_artifact(self, fingerprint: str, kind: str) -> bytes | None:
        """Artifact payload, or ``None`` when absent; refreshes recency."""
        path = self.artifact_path(fingerprint, kind)
        try:
            payload = path.read_bytes()
        except OSError:
            return None
        self._touch(path)
        # An artifact read also keeps its result entry warm: evicting
        # the result while its trace is in active use would split the
        # entry.
        self._touch(self.path_for(fingerprint))
        return payload

    def artifacts_for(self, fingerprint: str) -> dict[str, Path]:
        """``{kind: path}`` of every stored artifact of ``fingerprint``."""
        out: dict[str, Path] = {}
        prefix = f"{fingerprint}."
        try:
            names = sorted(p.name for p in self.artifacts_dir.iterdir())
        except OSError:
            return out
        for name in names:
            if name.startswith(prefix) and not name.endswith(".tmp"):
                out[name[len(prefix):]] = self.artifacts_dir / name
        return out

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------

    def total_bytes(self) -> int:
        """Bytes held by the active version (results + artifacts)."""
        return sum(size for _, _, size in self._entries())

    def evict(self) -> list[str]:
        """Drop least-recently-used entries until the budget fits.

        A result entry and its artifacts evict as one unit, keyed by
        the *most recent* access of any of the unit's files.  Returns
        the evicted fingerprints (empty without a budget).  The newest
        entry is evicted last — but even it goes if it alone exceeds
        the budget; the budget is a hard ceiling, not advice.
        """
        if self.max_bytes is None:
            return []
        entries = self._entries()
        total = sum(size for _, _, size in entries)
        if total <= self.max_bytes:
            return []
        #: Oldest first; fingerprint tie-break keeps eviction stable on
        #: coarse-mtime filesystems.
        entries.sort(key=lambda e: (e[1], e[0]))
        evicted: list[str] = []
        for fingerprint, _, size in entries:
            if total <= self.max_bytes:
                break
            self._remove_entry(fingerprint)
            evicted.append(fingerprint)
            total -= size
        self._evicted += len(evicted)
        return evicted

    def stats(self) -> StoreStats:
        """Current accounting (used by the service's status surface)."""
        entries = self._entries()
        n_artifacts = 0
        try:
            n_artifacts = sum(
                1
                for p in self.artifacts_dir.iterdir()
                if not p.name.endswith(".tmp")
            )
        except OSError:
            pass
        return StoreStats(
            entries=sum(1 for fp, _, _ in entries if self.path_for(fp).exists()),
            artifacts=n_artifacts,
            total_bytes=sum(size for _, _, size in entries),
            max_bytes=self.max_bytes,
            evicted=self._evicted,
        )

    def purge_stale_versions(self) -> int:
        """Delete entry directories of other package versions.

        Returns the number of files removed.  The active version is
        never touched.
        """
        removed = 0
        try:
            version_dirs = [p for p in self.root.iterdir() if p.is_dir()]
        except OSError:
            return 0
        for vdir in version_dirs:
            if vdir.name == self.version:
                continue
            for path in sorted(vdir.rglob("*"), reverse=True):
                try:
                    if path.is_dir():
                        path.rmdir()
                    else:
                        path.unlink()
                        removed += 1
                except OSError:
                    pass
            try:
                vdir.rmdir()
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------

    @staticmethod
    def _check_kind(kind: str) -> str:
        if not _KIND_RE.match(kind):
            raise ConfigurationError(
                f"artifact kind must match {_KIND_RE.pattern}, got {kind!r}"
            )
        return kind

    @staticmethod
    def _touch(path: Path) -> None:
        try:
            os.utime(path)
        except OSError:
            pass

    def _entries(self) -> list[tuple[str, float, int]]:
        """``(fingerprint, last_access, unit_bytes)`` per stored unit.

        Artifact-only units (result already gone) are included so
        eviction can reclaim orphaned artifacts too.
        """
        units: dict[str, tuple[float, int]] = {}

        def _add(fingerprint: str, path: Path) -> None:
            try:
                st = path.stat()
            except OSError:
                return
            mtime, size = units.get(fingerprint, (0.0, 0))
            units[fingerprint] = (max(mtime, st.st_mtime), size + st.st_size)

        try:
            for path in self.dir.glob("*.json"):
                _add(path.stem, path)
        except OSError:
            pass
        try:
            for path in self.artifacts_dir.iterdir():
                if path.name.endswith(".tmp"):
                    continue
                fingerprint = path.name.split(".", 1)[0]
                _add(fingerprint, path)
        except OSError:
            pass
        return [(fp, mtime, size) for fp, (mtime, size) in units.items()]

    def _remove_entry(self, fingerprint: str) -> None:
        paths = [self.path_for(fingerprint)]
        paths.extend(self.artifacts_for(fingerprint).values())
        for path in paths:
            try:
                path.unlink()
            except OSError:
                pass
