"""Priority + weighted fair-share job scheduling.

The service's queue discipline, deterministic and independently
testable:

1. **Priority bands** — higher :attr:`Job.priority` always dispatches
   first; bands never mix.
2. **Weighted fair share inside a band** — clients share dispatch
   slots by *stride scheduling*: every dispatched job advances its
   client's virtual time by ``1 / weight``, and the client with the
   smallest virtual time goes next.  A client with weight 3 therefore
   receives three dispatches for every one of a weight-1 client,
   interleaved (not bursty), regardless of how many jobs either has
   queued.
3. **FIFO per client** — one client's jobs run in submission order.

Ties (equal virtual time) break on the client name, then submission
order, so dispatch order is a pure function of the submission
sequence — the fairness tests assert exact orders.

A client returning after idling does not get to "bank" the time it
did not use: its virtual time is advanced to the minimum virtual time
of the currently-queued clients when it rejoins (the standard fix for
stride-scheduling starvation).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.jobs import Job
from repro.errors import ConfigurationError

__all__ = ["FairShareScheduler", "ClientShare"]


@dataclass
class ClientShare:
    """Fair-share accounting for one client."""

    name: str
    weight: float = 1.0
    #: Stride-scheduling virtual time: advances by ``1/weight`` per
    #: dispatched job; the smallest virtual time dispatches next.
    vtime: float = 0.0
    #: Queued jobs per priority, FIFO.
    queues: dict[int, deque[Job]] = field(default_factory=dict)
    dispatched: int = 0

    @property
    def queued(self) -> int:
        return sum(len(q) for q in self.queues.values())


class FairShareScheduler:
    """Deterministic priority + weighted fair-share queue of jobs."""

    def __init__(self) -> None:
        self._clients: dict[str, ClientShare] = {}

    # ------------------------------------------------------------------

    def set_weight(self, client: str, weight: float) -> None:
        """Set ``client``'s fair-share weight (> 0; default 1.0)."""
        if not weight > 0:
            raise ConfigurationError(
                f"client weight must be > 0, got {weight}"
            )
        self._share(client).weight = float(weight)

    def weight_of(self, client: str) -> float:
        share = self._clients.get(client)
        return share.weight if share is not None else 1.0

    def push(self, job: Job) -> None:
        """Enqueue ``job`` under its client and priority."""
        share = self._share(job.client)
        share.queues.setdefault(job.priority, deque()).append(job)

    def pop(self) -> Job | None:
        """Dispatch the next job (or ``None`` when idle).

        Highest priority band first; within the band, the queued
        client with the smallest ``(vtime, name)`` wins and pays
        ``1/weight`` virtual time.
        """
        backlog = [s for s in self._clients.values() if s.queued]
        if not backlog:
            return None
        top = max(p for s in backlog for p, q in s.queues.items() if q)
        candidates = [s for s in backlog if s.queues.get(top)]
        share = min(candidates, key=lambda s: (s.vtime, s.name))
        job = share.queues[top].popleft()
        if not share.queues[top]:
            del share.queues[top]
        share.vtime += 1.0 / share.weight
        share.dispatched += 1
        return job

    def remove(self, job: Job) -> bool:
        """Withdraw a queued job (cancellation); False when not queued."""
        share = self._clients.get(job.client)
        if share is None:
            return False
        queue = share.queues.get(job.priority)
        if queue is None:
            return False
        try:
            queue.remove(job)
        except ValueError:
            return False
        if not queue:
            del share.queues[job.priority]
        return True

    def drain(self) -> list[Job]:
        """Withdraw every queued job (service shutdown)."""
        jobs: list[Job] = []
        for share in self._clients.values():
            for priority in sorted(share.queues, reverse=True):
                jobs.extend(share.queues[priority])
            share.queues.clear()
        return jobs

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(s.queued for s in self._clients.values())

    def __bool__(self) -> bool:
        return any(s.queued for s in self._clients.values())

    def clients(self) -> dict[str, ClientShare]:
        """Live accounting view (read-only by convention)."""
        return dict(self._clients)

    def _share(self, client: str) -> ClientShare:
        share = self._clients.get(client)
        if share is None:
            # A (re)joining client starts at the queued minimum: it
            # cannot retroactively claim the share it did not use.
            floor = min(
                (s.vtime for s in self._clients.values() if s.queued),
                default=0.0,
            )
            share = ClientShare(name=client, vtime=floor)
            self._clients[client] = share
        elif not share.queued:
            floor = min(
                (s.vtime for s in self._clients.values() if s.queued),
                default=share.vtime,
            )
            share.vtime = max(share.vtime, floor)
        return share
