"""CLI for the simulation service: ``python -m repro.service``.

Usage::

    # run the fig02 preset sweep through the service
    python -m repro.service submit fig02 --store /tmp/store --workers 2

    # CI smoke: resubmit and demand the store answers everything
    python -m repro.service submit fig02 --store /tmp/store --require-cached

    # shrink the preset for smoke runs
    python -m repro.service submit fig02 --tree T3XS --ranks 8 16

    # inspect a store directory
    python -m repro.service stats --store /tmp/store

``submit`` builds the preset's configs (the same configs the bench CLI
runs, so stores are shared between both paths), pushes them through a
:class:`~repro.service.SimulationService` and prints one line per
terminal job event plus a summary.  ``--require-cached`` turns the
summary into a gate: exit nonzero unless *every* submission was
answered from the store.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

from repro.core.jobs import JobFailure
from repro.service.service import SimulationService
from repro.service.store import ArtifactStore

#: Preset name -> (tree, rank ladder, allocations, selector, steal policy).
PRESETS: dict[str, tuple[str, tuple[int, ...], tuple[str, ...], str, str]] = {
    "fig02": ("T3M", (8, 16, 32, 64), ("1/N", "8RR", "8G"), "reference", "one"),
}


def _preset_configs(args) -> list:
    from repro.bench.experiments import experiment_config

    tree, ladder, allocations, selector, steal_policy = PRESETS[args.preset]
    tree = args.tree or tree
    ladder = tuple(args.ranks) if args.ranks else ladder
    allocations = tuple(args.allocations) if args.allocations else allocations
    return [
        experiment_config(
            tree,
            nranks,
            allocation=allocation,
            selector=selector,
            steal_policy=steal_policy,
            trace=True,
        )
        for nranks in ladder
        for allocation in allocations
    ]


async def _submit(args) -> int:
    configs = _preset_configs(args)
    store = ArtifactStore(args.store) if args.store else None
    start = time.monotonic()
    async with SimulationService(args.workers, store) as service:
        handle = await service.submit(configs, client="cli")
        async for event in handle.events():
            if event.state.terminal:
                print(
                    f"[service] {event.state.value:>6} {event.label}"
                    + (f"  ({event.elapsed:.2f}s)" if event.elapsed else ""),
                    file=sys.stderr,
                    flush=True,
                )
        results = await handle.results()
        stats = service.stats()
    elapsed = time.monotonic() - start

    failures = [r for r in results if isinstance(r, JobFailure)]
    summary = {
        "preset": args.preset,
        "configs": len(configs),
        "cache_hits": stats.cache_hits,
        "dedup_joins": stats.dedup_joins,
        "executed": stats.executed,
        "failed": len(failures),
        "elapsed_s": round(elapsed, 2),
        "all_cached": stats.cache_hits == stats.submitted,
    }
    print(json.dumps(summary, indent=2))
    for failure in failures:
        print(f"[service] FAILED {failure.label}: {failure.error}", file=sys.stderr)
    if failures:
        return 1
    if args.require_cached and not summary["all_cached"]:
        print(
            f"[service] FAIL: expected every config cached, but "
            f"{stats.executed} executed",
            file=sys.stderr,
        )
        return 1
    return 0


def _stats(args) -> int:
    store = ArtifactStore(args.store)
    stats = store.stats()
    print(
        json.dumps(
            {
                "dir": str(store.dir),
                "entries": stats.entries,
                "artifacts": stats.artifacts,
                "total_bytes": stats.total_bytes,
                "max_bytes": stats.max_bytes,
            },
            indent=2,
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Submit sweeps to (and inspect) the simulation service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    submit = sub.add_parser("submit", help="run a preset sweep via the service")
    submit.add_argument("preset", choices=sorted(PRESETS))
    submit.add_argument("--store", metavar="DIR", default=None)
    submit.add_argument("--workers", type=int, default=2, metavar="N")
    submit.add_argument(
        "--tree", default=None, metavar="NAME", help="override the preset tree"
    )
    submit.add_argument(
        "--ranks",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="override the preset rank ladder",
    )
    submit.add_argument(
        "--allocations",
        nargs="+",
        default=None,
        metavar="A",
        help="override the preset allocations",
    )
    submit.add_argument(
        "--require-cached",
        action="store_true",
        help="exit nonzero unless every config was a store hit (CI gate)",
    )

    stats = sub.add_parser("stats", help="print a store directory's accounting")
    stats.add_argument("--store", metavar="DIR", required=True)

    args = parser.parse_args(argv)
    if args.command == "submit":
        return asyncio.run(_submit(args))
    return _stats(args)


if __name__ == "__main__":
    raise SystemExit(main())
