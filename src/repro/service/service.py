"""The asyncio simulation service: submit sweeps, stream progress.

:class:`SimulationService` is the long-running front-end over
:mod:`repro.exec`: clients submit sweeps (lists of
:class:`~repro.core.config.WorkStealingConfig`), the service dedups
them against the artifact store **and** against work already in
flight, schedules what remains with priority + weighted fair share
(:class:`~repro.service.scheduler.FairShareScheduler`) onto one shared
:class:`~repro.exec.pool.WorkerPool`, and streams typed
:class:`~repro.core.jobs.JobEvent`\\ s back to each submitter.

The dedup guarantee is the service's reason to exist: **one
fingerprint, one execution**.  A config found in the store is answered
without touching the simulator (``cached``); a config equal to one
already queued or running joins that job — both submitters stream its
events and both receive its result when it lands.

Typical use::

    async with SimulationService(workers=4, store=store) as service:
        handle = await service.submit(configs, client="alice")
        async for event in handle.events():
            print(event.state, event.label)
        results = await handle.results()

Synchronous callers (the bench CLI) use :func:`run_service_sweep`,
which wraps one submission in a private event loop.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import AsyncIterator, Callable, Iterable, Sequence

from repro.core.config import WorkStealingConfig
from repro.core.jobs import Job, JobEvent, JobFailure, JobState, next_job_id
from repro.errors import (
    ConfigurationError,
    JobCancelledError,
    JobTimeoutError,
    ServiceError,
)
from repro.exec.cache import ResultCache
from repro.exec.fingerprint import fingerprint_dict
from repro.exec.pool import WorkerPool, _normalize_store
from repro.service.scheduler import FairShareScheduler
from repro.service.store import ArtifactStore
from repro.ws.results import RunResult

__all__ = ["SimulationService", "SweepHandle", "ServiceStats", "run_service_sweep"]

#: Queue sentinel that ends a handle's event stream.
_STREAM_END = None


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time counters of one service instance."""

    #: Configs received by :meth:`SimulationService.submit`.
    submitted: int
    #: Submissions answered straight from the artifact store.
    cache_hits: int
    #: Submissions that joined a job already in flight.
    dedup_joins: int
    #: Simulations actually executed (== distinct cache misses).
    executed: int
    #: Jobs that ended ``failed`` (errors, timeouts, cancellations).
    failed: int
    #: Jobs currently queued for dispatch.
    queued: int
    #: Jobs currently executing.
    running: int


class SweepHandle:
    """One client's view of one submitted sweep.

    The handle streams every event of the sweep's jobs — including
    jobs it merely joined — and resolves to the sweep's results, in
    submission order.  :meth:`cancel` withdraws the sweep: jobs no
    other handle is watching are cancelled (surfacing as ``failed``
    with :class:`~repro.errors.JobCancelledError` attached), shared
    jobs keep running for their other watchers, and the event stream
    terminates either way.
    """

    def __init__(self, service: "SimulationService", jobs: Sequence[Job]):
        self._service = service
        self._jobs = list(jobs)
        # Every job starts open — even born-terminal (cached) ones,
        # whose terminal event is delivered right after construction
        # and closes them; this keeps the sentinel behind all events.
        self._open = {job.id for job in jobs}
        self._events: asyncio.Queue[JobEvent | None] = asyncio.Queue()
        self._done = asyncio.Event()
        self._cancelled = False
        if not self._open:  # empty sweep
            self._finish()

    # -- service-side delivery -----------------------------------------

    def _deliver(self, job: Job, event: JobEvent) -> None:
        if self._done.is_set():
            return
        self._events.put_nowait(event)
        if event.state.terminal:
            self._open.discard(job.id)
            if not self._open:
                self._finish()

    def _finish(self) -> None:
        if not self._done.is_set():
            self._done.set()
            self._events.put_nowait(_STREAM_END)

    # -- client surface ------------------------------------------------

    @property
    def jobs(self) -> list[Job]:
        """The sweep's jobs, in submission order (shared jobs repeat)."""
        return list(self._jobs)

    @property
    def done(self) -> bool:
        return self._done.is_set()

    async def events(self) -> AsyncIterator[JobEvent]:
        """Stream this sweep's job events until every job is terminal.

        Safe to iterate once; terminates on completion *and* on
        :meth:`cancel`.
        """
        while True:
            event = await self._events.get()
            if event is _STREAM_END:
                return
            yield event

    async def results(self) -> list[RunResult | JobFailure]:
        """Wait for the sweep; results in submission order.

        Failed jobs (including timeouts and cancellations) surface as
        :class:`~repro.core.jobs.JobFailure` slots, exception attached
        — the same shape ``run_many(..., return_exceptions=True)``
        returns.
        """
        await self._done.wait()
        out: list[RunResult | JobFailure] = []
        for job in self._jobs:
            if job.state is JobState.FAILED or job.result is None:
                error = job.error or JobCancelledError(
                    f"job {job.label!r} was withdrawn before it ran"
                )
                out.append(
                    JobFailure(
                        fingerprint=job.fingerprint,
                        label=job.label,
                        error=error,
                        elapsed=job.elapsed,
                    )
                )
            else:
                out.append(job.result)
        return out

    async def cancel(self) -> int:
        """Withdraw the sweep; returns the number of jobs cancelled.

        Jobs watched only by this handle are cancelled (queued jobs
        never run, running jobs are interrupted); jobs shared with
        other handles are left to finish for them.  The handle's event
        stream terminates.
        """
        self._cancelled = True
        cancelled = await self._service._cancel_jobs(self, self._jobs)
        for job in self._jobs:
            self._service._detach(job, self)
        self._open.clear()
        self._finish()
        return cancelled


class SimulationService:
    """Async job front-end over the :mod:`repro.exec` worker pool.

    Parameters
    ----------
    workers:
        Concurrent simulations (= worker processes).  ``None`` uses
        ``os.cpu_count()``.
    store:
        :class:`~repro.service.store.ArtifactStore` (or plain
        :class:`~repro.exec.cache.ResultCache`), a path, ``True`` for
        the default store, or ``None`` to run storeless (in-flight
        dedup still applies).
    max_events:
        Per-run event budget forwarded to the simulator.
    runner:
        Test seam: a synchronous callable ``runner(config_dict) ->
        RunResult`` executed on a thread instead of the process pool.
    """

    def __init__(
        self,
        workers: int | None = None,
        store: ArtifactStore | ResultCache | str | bool | None = None,
        *,
        max_events: int | None = None,
        runner: Callable[[dict], RunResult] | None = None,
    ):
        if store is True:
            store = ArtifactStore()
        elif isinstance(store, str):
            store = ArtifactStore(store)
        self.store = _normalize_store(store)
        self.max_events = max_events
        self._runner = runner
        self._pool = WorkerPool(workers)
        self._scheduler = FairShareScheduler()
        self._inflight: dict[str, Job] = {}
        self._watchers: dict[str, list[SweepHandle]] = {}
        self._tasks: dict[str, asyncio.Task] = {}
        self._timeouts: dict[str, float | None] = {}
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._dispatcher: asyncio.Task | None = None
        self._closing = False
        self._abandoned = False
        self._counts = {
            "submitted": 0,
            "cache_hits": 0,
            "dedup_joins": 0,
            "executed": 0,
            "failed": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "SimulationService":
        """Start dispatching.  Jobs may be submitted before this."""
        if self._closing:
            raise ServiceError("service is closed")
        if self._dispatcher is None:
            self._dispatcher = asyncio.create_task(
                self._dispatch(), name="repro-service-dispatcher"
            )
            self._wake.set()
        return self

    async def close(self, drain: bool = True) -> None:
        """Stop the service.

        ``drain=True`` (the default) finishes every accepted job
        first; ``drain=False`` cancels queued and running jobs (their
        watchers see ``failed`` events with
        :class:`~repro.errors.JobCancelledError` attached).
        """
        if self._closing:
            return
        self._closing = True
        if not drain:
            for job in self._scheduler.drain():
                self._fail(
                    job,
                    JobCancelledError(
                        f"job {job.label!r} cancelled: service shutting down"
                    ),
                )
            for task in list(self._tasks.values()):
                task.cancel()
        self._wake.set()
        await self._idle.wait()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        self._pool.shutdown(wait=not self._abandoned, cancel_pending=self._abandoned)

    async def __aenter__(self) -> "SimulationService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close(drain=exc_type is None)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def set_weight(self, client: str, weight: float) -> None:
        """Set ``client``'s fair-share weight (default 1.0)."""
        self._scheduler.set_weight(client, weight)

    async def submit(
        self,
        configs: Iterable[WorkStealingConfig | dict] | WorkStealingConfig,
        *,
        client: str = "default",
        priority: int = 0,
        weight: float | None = None,
        timeout: float | None = None,
    ) -> SweepHandle:
        """Submit a sweep; returns its :class:`SweepHandle` immediately.

        Every config is resolved in order: **store hit** (job is born
        terminal in state ``cached``), **in-flight join** (an equal
        fingerprint is already queued or running — this sweep watches
        that job instead of spawning another execution), or **fresh
        job** (queued under ``client``/``priority`` for fair-share
        dispatch).  ``timeout`` bounds each fresh job's execution
        wall-clock; an overrunning worker is abandoned and the job
        fails with :class:`~repro.errors.JobTimeoutError`.
        """
        if self._closing:
            raise ServiceError("service is closed; submit rejected")
        if isinstance(configs, (WorkStealingConfig, dict)):
            configs = [configs]
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {timeout}")
        if weight is not None:
            self._scheduler.set_weight(client, weight)

        jobs: list[Job] = []
        fresh = False
        now = time.monotonic()
        for config in configs:
            if isinstance(config, dict):
                config = WorkStealingConfig.from_dict(config)
            elif not isinstance(config, WorkStealingConfig):
                raise ConfigurationError(
                    "submit needs WorkStealingConfig objects or config "
                    f"dicts, got {type(config).__name__}"
                )
            config_dict = config.to_dict()
            fingerprint = fingerprint_dict(config_dict)
            self._counts["submitted"] += 1

            shared = self._inflight.get(fingerprint)
            if shared is not None:
                if shared not in jobs:
                    self._counts["dedup_joins"] += 1
                jobs.append(shared)
                continue

            hit = self.store.get(fingerprint) if self.store is not None else None
            job = Job(
                id=next_job_id(),
                fingerprint=fingerprint,
                config=config_dict,
                label=config.label(),
                client=client,
                priority=priority,
                submitted_at=now,
            )
            jobs.append(job)
            if hit is not None:
                self._counts["cache_hits"] += 1
                job.state = JobState.CACHED
                job.result = hit
                job.finished_at = time.monotonic()
                continue
            fresh = True
            self._inflight[fingerprint] = job
            self._timeouts[job.id] = timeout
            self._idle.clear()
            self._scheduler.push(job)

        handle = SweepHandle(self, jobs)
        seen: set[str] = set()
        for job in jobs:
            if job.id in seen:
                continue
            seen.add(job.id)
            if not job.terminal:
                self._watchers.setdefault(job.id, []).append(handle)
            self._emit_to(handle, job, job.state, cached=job.state is JobState.CACHED)
        if fresh:
            self._wake.set()
        return handle

    # ------------------------------------------------------------------
    # Dispatch and execution
    # ------------------------------------------------------------------

    async def _dispatch(self) -> None:
        slots = asyncio.Semaphore(self._pool.workers)
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._scheduler:
                await slots.acquire()
                job = self._scheduler.pop()
                if job is None:  # cancelled between wake and acquire
                    slots.release()
                    break
                task = asyncio.create_task(
                    self._run_job(job, slots), name=f"repro-{job.id}"
                )
                self._tasks[job.id] = task

    async def _run_job(self, job: Job, slots: asyncio.Semaphore) -> None:
        job.state = JobState.STARTED
        job.started_at = time.monotonic()
        self._emit(job, JobState.STARTED)
        timeout = self._timeouts.get(job.id)
        try:
            result, elapsed, artifact = await self._execute(job, timeout)
        except asyncio.CancelledError:
            # Cancellation is initiated by this service (handle.cancel
            # or close(drain=False)); surface it, don't re-raise.
            self._fail(
                job, JobCancelledError(f"job {job.label!r} was cancelled")
            )
        except asyncio.TimeoutError:
            self._abandoned = True
            self._fail(
                job,
                JobTimeoutError(
                    f"job {job.label!r} exceeded its {timeout}s budget "
                    "and was abandoned"
                ),
                elapsed=timeout or 0.0,
            )
        except Exception as exc:
            self._fail(job, exc)
        else:
            self._counts["executed"] += 1
            job.elapsed = elapsed
            if self.store is not None:
                self.store.put(
                    job.fingerprint, result, config=job.config, elapsed=elapsed
                )
                if artifact is not None:
                    put_artifact = getattr(self.store, "put_artifact", None)
                    if put_artifact is not None:
                        ref = put_artifact(job.fingerprint, "trace.json", artifact)
                        job.artifacts[ref.kind] = ref
            job.result = result
            job.state = JobState.DONE
            job.finished_at = time.monotonic()
            self._emit(job, JobState.DONE, elapsed=elapsed)
            self._settle(job)
        finally:
            slots.release()

    async def _execute(
        self, job: Job, timeout: float | None
    ) -> tuple[RunResult, float, str | None]:
        """One simulation, on the pool (or the injected runner)."""
        if self._runner is not None:
            loop = asyncio.get_running_loop()
            start = time.perf_counter()
            result = await asyncio.wait_for(
                loop.run_in_executor(None, self._runner, dict(job.config)),
                timeout,
            )
            return result, time.perf_counter() - start, None
        future = self._pool.submit(job.config, max_events=self.max_events)
        try:
            _, payload, elapsed, artifact = await asyncio.wait_for(
                asyncio.wrap_future(future), timeout
            )
        except (asyncio.TimeoutError, asyncio.CancelledError):
            future.cancel()  # abandon; the worker process runs on
            raise
        return RunResult.from_json(payload), elapsed, artifact

    # ------------------------------------------------------------------
    # Completion plumbing
    # ------------------------------------------------------------------

    def _fail(self, job: Job, error: BaseException, elapsed: float = 0.0) -> None:
        if job.terminal:
            return
        self._counts["failed"] += 1
        job.state = JobState.FAILED
        job.error = error
        job.elapsed = elapsed
        job.finished_at = time.monotonic()
        self._emit(job, JobState.FAILED, elapsed=elapsed, error=str(error))
        self._settle(job)

    def _settle(self, job: Job) -> None:
        """Terminal bookkeeping: leave the in-flight index, free watchers."""
        self._inflight.pop(job.fingerprint, None)
        self._tasks.pop(job.id, None)
        self._timeouts.pop(job.id, None)
        self._watchers.pop(job.id, None)
        if not self._inflight and not self._scheduler:
            self._idle.set()

    def _emit(
        self,
        job: Job,
        state: JobState,
        *,
        elapsed: float = 0.0,
        cached: bool = False,
        error: str | None = None,
    ) -> None:
        for handle in list(self._watchers.get(job.id, ())):
            self._emit_to(
                handle, job, state, elapsed=elapsed, cached=cached, error=error
            )

    def _emit_to(
        self,
        handle: SweepHandle,
        job: Job,
        state: JobState,
        *,
        elapsed: float = 0.0,
        cached: bool = False,
        error: str | None = None,
    ) -> None:
        handle._deliver(
            job,
            JobEvent(
                job_id=job.id,
                state=state,
                fingerprint=job.fingerprint,
                label=job.label,
                client=job.client,
                timestamp=time.monotonic(),
                elapsed=elapsed,
                cached=cached,
                error=error,
            ),
        )

    def _detach(self, job: Job, handle: SweepHandle) -> None:
        watchers = self._watchers.get(job.id)
        if watchers is not None:
            try:
                watchers.remove(handle)
            except ValueError:
                pass
            if not watchers:
                del self._watchers[job.id]

    async def _cancel_jobs(self, handle: SweepHandle, jobs: Iterable[Job]) -> int:
        """Cancel ``handle``'s sole-watched jobs; shared jobs run on."""
        cancelled = 0
        to_await: list[asyncio.Task] = []
        for job in {j.id: j for j in jobs}.values():
            if job.terminal:
                continue
            if self._watchers.get(job.id, []) != [handle]:
                continue  # someone else still wants this result
            if self._scheduler.remove(job):
                self._fail(
                    job, JobCancelledError(f"job {job.label!r} was cancelled")
                )
                cancelled += 1
            else:
                task = self._tasks.get(job.id)
                if task is not None:
                    task.cancel()
                    to_await.append(task)
                    cancelled += 1
        for task in to_await:
            try:
                await task
            except asyncio.CancelledError:
                pass
        return cancelled

    # ------------------------------------------------------------------

    def stats(self) -> ServiceStats:
        """Current counters (plus store stats via ``service.store``)."""
        return ServiceStats(
            submitted=self._counts["submitted"],
            cache_hits=self._counts["cache_hits"],
            dedup_joins=self._counts["dedup_joins"],
            executed=self._counts["executed"],
            failed=self._counts["failed"],
            queued=len(self._scheduler),
            running=len(self._tasks),
        )


def run_service_sweep(
    configs: Iterable[WorkStealingConfig | dict],
    *,
    workers: int | None = 1,
    store: ArtifactStore | ResultCache | str | bool | None = None,
    max_events: int | None = None,
    timeout: float | None = None,
    client: str = "default",
    priority: int = 0,
) -> list[RunResult | JobFailure]:
    """One synchronous sweep through a throwaway service.

    The blocking counterpart of ``service.submit(...)`` +
    ``handle.results()`` for scripts and the bench CLI; parameters
    match :class:`SimulationService` / :meth:`SimulationService.submit`.
    """

    async def _main() -> list[RunResult | JobFailure]:
        async with SimulationService(
            workers, store, max_events=max_events
        ) as service:
            handle = await service.submit(
                configs, client=client, priority=priority, timeout=timeout
            )
            return await handle.results()

    return asyncio.run(_main())
