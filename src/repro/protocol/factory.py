"""Build protocol plans and workers from a config.

The sequential engine (:class:`repro.sim.cluster.Cluster`) and every
shard of the sharded engine (:class:`repro.sim.shard._Shard`) used to
carry copies of the same worker-construction loop; both now call
:func:`build_plan` once per run and :func:`make_worker` once per rank,
so a protocol knob added to the config is automatically honoured by
every engine — the precondition for the bit-identity contract.

Worker classes are imported lazily inside :func:`make_worker`:
``repro.protocol`` must stay importable from ``repro.sim.worker``
(which the workers' own modules import), so this module cannot import
them at module level.
"""

from __future__ import annotations

from repro.protocol.core import ProtocolPlan
from repro.protocol.regions import RegionMap

__all__ = ["build_plan", "make_worker"]


def build_plan(config, placement) -> ProtocolPlan:
    """The run-wide :class:`ProtocolPlan` of ``config`` on ``placement``."""
    regions = (
        RegionMap.build(config.nranks, config.regions, placement.rank_nodes)
        if config.regions > 0 and config.nranks > 1
        else None
    )
    return ProtocolPlan(
        forward=config.protocol == "forward",
        forward_ttl=config.forward_ttl,
        regions=regions,
        region_attempts=config.region_attempts,
        lifeline_count=config.lifelines,
        lifeline_threshold=config.lifeline_threshold,
        lifeline_graph=config.lifeline_graph,
        seed=config.seed,
    )


def make_worker(
    rank: int,
    config,
    placement,
    plan: ProtocolPlan,
    generator,
    transport,
    trace=None,
    events=None,
):
    """Construct the rank's worker (lifeline composition included)."""
    from repro.sim.worker import Worker

    selector = (
        config.selector.make(rank, config.nranks, placement, seed=config.seed)
        if config.nranks > 1
        else None
    )
    kwargs = dict(
        rank=rank,
        nranks=config.nranks,
        generator=generator,
        selector=selector,
        policy=config.steal_policy,
        transport=transport,
        chunk_size=config.chunk_size,
        poll_interval=config.poll_interval,
        per_node_time=config.per_node_time,
        steal_service_time=config.steal_service_time,
        trace=trace,
        events=events,
        plan=plan,
    )
    if config.lifelines > 0:
        from repro.lifeline.worker import LifelineWorker

        return LifelineWorker(**kwargs)
    return Worker(**kwargs)
