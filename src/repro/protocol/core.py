"""The steal-protocol state machine, extracted from the worker.

:class:`StealProtocol` owns the complete steal lifecycle of one rank —
the idle transition, victim draws, request/response/forward/push
message handling, work-discovery session accounting and the
termination interaction — behind a four-method surface the execution
core (:class:`repro.sim.worker.Worker`) calls:

``on_idle(t)``
    The worker's stack drained; start a work-discovery session.
``on_message(now, msg)``
    A protocol message arrived (the worker dispatches *every* message
    here).
``serve_pending(now) -> t``
    Poll boundary: answer queued steal requests (and push to armed
    lifelines), returning the advanced local time.
``protocol.pending`` / ``protocol.plain_serve``
    The queued-request list (shared object, mutated in place) and the
    static "serving is a no-op when the queue is empty" flag the
    engines use for their burst/send-bound reasoning.

The split is what makes protocol *features* compositional instead of
subclass forks: lifelines (quiesce-and-wait work pushes), steal-request
forwarding (TTL-bounded relays carrying a visited set, after Project
Picasso) and locality regions (intra-region steals first, after
Suksompong et al., arXiv:1804.04773) are all branches inside one state
machine, configured by an immutable :class:`ProtocolPlan` shared by
every rank of a run.

Bit-identity argument (the contract the differential suite enforces):
the protocol layer performs *exactly* the sends, event appends and
counter updates of the pre-refactor worker, in the same order, from
the same message deliveries — the refactor moved code, not semantics.
New features only add behaviour on paths that previously denied
(forwarding) or change which victim a draw proposes (regions, lifeline
graphs) — all rank-local decisions driven by rank-local state, so the
sequential and sharded engines, which deliver each rank's events in
the same order by the global event-key design, keep producing
identical float sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sessions import Session
from repro.errors import SimulationError
from repro.protocol.messages import (
    TAG_FINISH,
    TAG_LIFELINE_DEREGISTER,
    TAG_LIFELINE_REGISTER,
    TAG_STEAL_FORWARD,
    TAG_STEAL_REQUEST,
    TAG_STEAL_RESPONSE,
    LifelineDeregister,
    LifelineRegister,
    StealForward,
    StealRequest,
    StealResponse,
)
from repro.protocol.regions import RegionMap
from repro.protocol.status import WorkerStatus
from repro.trace.events import (
    EV_DENY,
    EV_FINISH,
    EV_FORWARD_SERVE,
    EV_LIFELINE_PUSH,
    EV_LIFELINE_QUIESCE,
    EV_LIFELINE_WAKE,
    EV_PUSH_RECV,
    EV_SERVE,
    EV_STEAL_FAIL,
    EV_STEAL_FORWARD,
    EV_STEAL_OK,
    EV_STEAL_SENT,
    EV_VICTIM_DRAW,
)

__all__ = ["ProtocolPlan", "StealProtocol"]

#: Seed-stream constant separating the per-rank region-draw RNG from
#: the selector streams (``SeedSequence([seed, rank])``) and the
#: lifeline-graph stream (``repro.protocol.graphs._GRAPH_STREAM``).
_REGION_STREAM = 0x5247  # "RG"

#: Selector draws a relaying rank attempts when picking a forward
#: target outside its region before giving up and denying.
_FORWARD_TRIES = 4


@dataclass(frozen=True)
class ProtocolPlan:
    """Immutable per-run protocol configuration, shared by all ranks.

    Built once per run by :func:`repro.protocol.factory.build_plan`
    (or directly in unit tests); every field is physics — the
    corresponding config knobs participate in fingerprints.
    """

    #: Relay denied steal requests toward work instead of failing.
    forward: bool = False
    #: Maximum relay hops per request chain (the first victim spends
    #: none; each relay consumes one).
    forward_ttl: int = 2
    #: Locality regions (``None`` disables the localized discipline).
    regions: RegionMap | None = None
    #: Victim draws per session aimed intra-region before the
    #: configured selector takes over.
    region_attempts: int = 2
    #: Lifeline partners per rank; 0 disables the lifeline scheme.
    lifeline_count: int = 0
    #: Consecutive failed steals before a rank quiesces.
    lifeline_threshold: int = 8
    #: Registered lifeline-graph builder name.
    lifeline_graph: str = "hypercube"
    #: Run seed (region draws, randomised lifeline graphs).
    seed: int = 0

    @property
    def lifelines(self) -> bool:
        return self.lifeline_count > 0

    def partners_for(self, rank: int, nranks: int) -> list[int]:
        """Lifeline partners of ``rank`` under the configured graph."""
        if self.lifeline_count <= 0:
            return []
        from repro.protocol.graphs import graph_by_name

        builder = graph_by_name(self.lifeline_graph)
        return builder(
            rank,
            nranks,
            self.lifeline_count,
            seed=self.seed,
            regions=self.regions,
        )


class StealProtocol:
    """Steal-lifecycle state machine of one rank.

    Owns every protocol-side counter and session record; the worker
    exposes them through read-only delegating properties so the result
    layer (:mod:`repro.ws.results`) and the tests keep their surface.
    """

    __slots__ = (
        "worker",
        "rank",
        "nranks",
        "transport",
        "selector",
        "policy",
        "steal_service_time",
        "events",
        "pending",
        "plain_serve",
        # Session accounting.
        "sessions",
        "_session_start",
        "_session_attempts",
        # Thief-side counters.
        "steal_requests_sent",
        "consecutive_failed_steals",
        "_escalate_after",
        "failed_steals",
        "successful_steals",
        "chunks_received",
        "nodes_received",
        # Victim-side counters.
        "requests_served",
        "requests_denied",
        "requests_forwarded",
        "forwards_served",
        "chunks_sent",
        "nodes_sent",
        "service_time",
        # Forwarding.
        "_forward",
        "_forward_ttl",
        # Locality regions.
        "_region_peers",
        "_region_attempts",
        "_region_rng",
        # Lifelines.
        "_lifelines",
        "lifeline_threshold",
        "partners",
        "waiters",
        "_quiescent",
        "_armed",
        "lifeline_pushes",
        "lifeline_wakeups",
        "quiesce_episodes",
    )

    def __init__(self, worker, plan: ProtocolPlan):
        self.worker = worker
        self.rank = worker.rank
        self.nranks = worker.nranks
        # The transport *object* is cached (fixed for the worker's
        # lifetime); its methods are looked up per call — tests patch
        # them on the instance.
        self.transport = worker.transport
        self.selector = worker.selector
        self.policy = worker.policy
        self.steal_service_time = worker.steal_service_time
        self.events = worker.events

        #: Queued steal requests/forwards, answered at poll boundaries.
        #: The worker aliases this exact list object; it is mutated in
        #: place (append/clear), never rebound.
        self.pending: list = []
        #: True when ``serve_pending`` is a no-op on an empty queue —
        #: the engines' burst/send-bound precondition.  Lifeline
        #: workers push spontaneously to armed waiters; forwarding and
        #: regions add no spontaneous serving.
        self.plain_serve = not plan.lifelines

        self.sessions: list[Session] = []
        self._session_start: float | None = None
        self._session_attempts = 0

        self.steal_requests_sent = 0
        self.consecutive_failed_steals = 0
        self._escalate_after = getattr(worker.policy, "escalate_after", None)
        self.failed_steals = 0
        self.successful_steals = 0
        self.chunks_received = 0
        self.nodes_received = 0

        self.requests_served = 0
        self.requests_denied = 0
        self.requests_forwarded = 0
        self.forwards_served = 0
        self.chunks_sent = 0
        self.nodes_sent = 0
        self.service_time = 0.0

        self._forward = plan.forward and plan.forward_ttl > 0
        self._forward_ttl = plan.forward_ttl

        regions = plan.regions
        if regions is not None and self.nranks > 1:
            peers = regions.peers(self.rank)
            self._region_peers = peers if peers else None
            self._region_rng = (
                np.random.default_rng(
                    np.random.SeedSequence(
                        [plan.seed, self.rank, _REGION_STREAM]
                    )
                )
                if peers
                else None
            )
        else:
            self._region_peers = None
            self._region_rng = None
        self._region_attempts = plan.region_attempts

        self._lifelines = plan.lifelines
        self.lifeline_threshold = plan.lifeline_threshold
        self.partners = plan.partners_for(self.rank, self.nranks)
        self.waiters: list[int] = []
        self._quiescent = False
        self._armed = False
        self.lifeline_pushes = 0
        self.lifeline_wakeups = 0
        self.quiesce_episodes = 0

    # ------------------------------------------------------------------
    # Worker-facing surface
    # ------------------------------------------------------------------

    def on_idle(self, t: float) -> None:
        """Stack exhausted: start a work-discovery session.

        The worker has already recorded the activity-trace transition;
        everything protocol-side happens here.
        """
        self.consecutive_failed_steals = 0
        self.worker.status = WorkerStatus.WAITING
        self._session_start = t
        self._session_attempts = 0
        self.transport.rank_became_idle(self.rank, t)
        if self.nranks > 1:
            self._send_steal_request(t)
        # nranks == 1: termination fires via rank_became_idle.

    def on_message(self, now: float, msg: object) -> None:
        """A message arrived at this rank at (true) time ``now``."""
        w = self.worker
        if w.status is WorkerStatus.DONE:
            return  # post-termination stragglers are dropped
        tag = getattr(msg, "tag", None)
        if tag == TAG_STEAL_REQUEST:
            if w.status is WorkerStatus.RUNNING:
                self.pending.append(msg)
            else:
                # Idle ranks have nothing to give; relay or deny now.
                self._relay_or_deny(
                    now,
                    msg.thief,
                    msg.escalated,
                    self._forward_ttl,
                    (msg.thief, self.rank),
                )
        elif tag == TAG_STEAL_RESPONSE:
            if (
                self._lifelines
                and msg.has_work
                and w.status is WorkerStatus.RUNNING
            ):
                # A lifeline push raced our own recovery: merge the work.
                w.stack.receive_chunks(msg.chunks)
                self.chunks_received += len(msg.chunks)
                self.nodes_received += msg.nodes
                if self.events is not None:
                    self.events.append(now, EV_PUSH_RECV, msg.victim, msg.nodes)
                return
            self._on_response(now, msg)
        elif tag == TAG_STEAL_FORWARD:
            if w.status is WorkerStatus.RUNNING:
                self.pending.append(msg)
            else:
                self._relay_or_deny(
                    now, msg.thief, msg.escalated, msg.ttl, msg.visited
                )
        elif tag == TAG_FINISH:
            self._on_finish(now)
        elif self._lifelines and tag == TAG_LIFELINE_REGISTER:
            if msg.thief not in self.waiters:
                self.waiters.append(msg.thief)
        elif self._lifelines and tag == TAG_LIFELINE_DEREGISTER:
            if msg.thief in self.waiters:
                self.waiters.remove(msg.thief)
        else:
            raise SimulationError(
                f"rank {self.rank}: unexpected message {msg!r}"
            )

    def serve_pending(self, now: float) -> float:
        """Answer queued steal requests; returns the advanced local time.

        Queued *forwards* are served exactly like requests — the
        response (and its transfer cost) flows straight to the
        originator — and are relayed onward (TTL permitting) when the
        stack has nothing stealable.  After the queue drains, a
        lifeline worker pushes work to armed waiters.
        """
        t = now
        pending = self.pending
        if pending:
            ev = self.events
            stack = self.worker.stack
            policy = self.policy
            for req in pending:
                stealable = stack.stealable_chunks
                take = (
                    policy.chunks_for_request(stealable, req.escalated)
                    if stealable
                    else 0
                )
                if take > 0:
                    # Packaging work costs the victim compute time.
                    t += self.steal_service_time
                    self.service_time += self.steal_service_time
                    chunks = stack.steal_chunks(take)
                    nodes = sum(c.size for c in chunks)
                    self.requests_served += 1
                    self.chunks_sent += len(chunks)
                    self.nodes_sent += nodes
                    if req.tag == TAG_STEAL_FORWARD:
                        self.forwards_served += 1
                        if ev is not None:
                            ev.append(t, EV_FORWARD_SERVE, req.thief, nodes)
                    elif ev is not None:
                        ev.append(t, EV_SERVE, req.thief, nodes)
                    self.transport.work_sent(self.rank)
                    self.transport.send(
                        self.rank, req.thief, StealResponse(self.rank, chunks), t
                    )
                elif req.tag == TAG_STEAL_FORWARD:
                    self._relay_or_deny(
                        t, req.thief, req.escalated, req.ttl, req.visited
                    )
                else:
                    self._relay_or_deny(
                        t,
                        req.thief,
                        req.escalated,
                        self._forward_ttl,
                        (req.thief, self.rank),
                    )
            pending.clear()
        if self._lifelines:
            stack = self.worker.stack
            while self.waiters and stack.stealable_chunks > 0:
                thief = self.waiters.pop(0)
                # A quiesced waiter is starving by definition: grant it
                # the escalated amount (a no-op for static policies).
                take = self.policy.chunks_for_request(
                    stack.stealable_chunks, escalated=True
                )
                if take == 0:
                    break
                t += self.steal_service_time
                self.service_time += self.steal_service_time
                chunks = stack.steal_chunks(take)
                nodes = sum(c.size for c in chunks)
                self.chunks_sent += len(chunks)
                self.nodes_sent += nodes
                self.lifeline_pushes += 1
                if self.events is not None:
                    self.events.append(t, EV_LIFELINE_PUSH, thief, nodes)
                self.transport.work_sent(self.rank)
                self.transport.send(
                    self.rank, thief, StealResponse(self.rank, chunks), t
                )
        return t

    def on_finish(self, now: float) -> None:
        w = self.worker
        if w.status is WorkerStatus.RUNNING or not w.stack.is_empty:
            raise SimulationError(
                f"rank {self.rank}: Finish while holding work "
                "(termination detected too early)"
            )
        if self._session_start is not None:
            self._close_session(now, found_work=False)
        if self.events is not None:
            self.events.append(now, EV_FINISH)
        w.status = WorkerStatus.DONE
        w.finish_time = now

    # Internal alias used by on_message dispatch.
    _on_finish = on_finish

    # ------------------------------------------------------------------
    # Thief side
    # ------------------------------------------------------------------

    def _draw_victim(self) -> int:
        """Propose the next victim of the current session.

        With locality regions, the first ``region_attempts`` draws of a
        session are uniform over the rank's region peers (the localized
        discipline: steal back owned work first); afterwards — or
        without regions — the configured selector decides.
        """
        if (
            self._region_peers is not None
            and self._session_attempts < self._region_attempts
        ):
            peers = self._region_peers
            return peers[int(self._region_rng.integers(len(peers)))]
        assert self.selector is not None
        return self.selector.next_victim()

    def _send_steal_request(self, t: float) -> None:
        victim = self._draw_victim()
        self.steal_requests_sent += 1
        self._session_attempts += 1
        escalated = (
            self._escalate_after is not None
            and self.consecutive_failed_steals >= self._escalate_after
        )
        ev = self.events
        if ev is not None:
            ev.append(t, EV_VICTIM_DRAW, victim, self._session_attempts)
            ev.append(t, EV_STEAL_SENT, victim, int(escalated))
        self.transport.send(
            self.rank, victim, StealRequest(self.rank, escalated), t
        )

    def _on_response(self, now: float, msg: StealResponse) -> None:
        w = self.worker
        # With lifelines a deny may legitimately land while RUNNING: a
        # stale push (partner served before our deregister arrived) can
        # wake the thief while a real request is still in flight.  The
        # chain continues as if the thief were still hunting.  Without
        # lifelines any non-WAITING response is a protocol violation.
        if w.status is not WorkerStatus.WAITING and not (
            self._lifelines and not msg.has_work
        ):
            raise SimulationError(
                f"rank {self.rank}: steal response while {w.status.name}"
            )
        if msg.has_work:
            if self._armed:
                self._disarm(now)
                self.lifeline_wakeups += 1
                if self.events is not None:
                    self.events.append(now, EV_LIFELINE_WAKE, msg.victim)
            assert msg.chunks is not None
            received = w.stack.receive_chunks(msg.chunks)
            self.successful_steals += 1
            self.chunks_received += len(msg.chunks)
            self.nodes_received += received
            if self.events is not None:
                self.events.append(now, EV_STEAL_OK, msg.victim, received)
            if self.selector is not None:
                self.selector.notify(msg.victim, success=True)
            self.consecutive_failed_steals = 0
            self._close_session(now, found_work=True)
            w._record(now, active=True)
            w.status = WorkerStatus.RUNNING
            self.transport.schedule_exec(self.rank, now)
        else:
            # Shares one failure accounting point (counter, trace
            # event, selector notify) so the three can never diverge;
            # only the spin-vs-quiesce decision is lifeline-specific.
            self._steal_failed(now, msg.victim)
            if (
                self._lifelines
                and self.consecutive_failed_steals >= self.lifeline_threshold
            ):
                if not self._quiescent:
                    self._quiesce(now)
                # Quiescent: no further requests; wait for a push or
                # Finish.
            else:
                self._send_steal_request(now)

    def _steal_failed(self, now: float, victim: int) -> None:
        self.failed_steals += 1
        self.consecutive_failed_steals += 1
        if self.events is not None:
            self.events.append(now, EV_STEAL_FAIL, victim)
        if self.selector is not None:
            self.selector.notify(victim, success=False)

    def _close_session(self, end: float, found_work: bool) -> None:
        assert self._session_start is not None
        self.sessions.append(
            Session(
                rank=self.rank,
                start=self._session_start,
                end=end,
                found_work=found_work,
                attempts=self._session_attempts,
            )
        )
        self._session_start = None
        self._session_attempts = 0

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------

    def _relay_or_deny(
        self,
        now: float,
        thief: int,
        escalated: bool,
        ttl: int,
        visited: tuple[int, ...],
    ) -> None:
        """This rank cannot serve the chain: relay it onward or end it.

        Relays are control traffic — no service time, no termination
        blackening (exactly like the deny they replace); only the
        eventual serve moves work.  The terminal deny replies to the
        *originator*, which closes the chain: every chain produces
        exactly one :class:`StealResponse`, preserving the
        one-outstanding-request invariant the trace analysis and the
        termination argument rely on.
        """
        if self._forward and ttl > 0:
            target = self._forward_target(visited)
            if target is not None:
                self.requests_forwarded += 1
                if self.events is not None:
                    self.events.append(now, EV_STEAL_FORWARD, target, thief)
                self.transport.send(
                    self.rank,
                    target,
                    StealForward(thief, escalated, ttl - 1, visited + (target,)),
                    now,
                )
                return
        self.requests_denied += 1
        if self.events is not None:
            self.events.append(now, EV_DENY, thief)
        self.transport.send(self.rank, thief, StealResponse(self.rank, None), now)

    def _forward_target(self, visited: tuple[int, ...]) -> int | None:
        """Pick the next hop: unvisited region peers first, then the
        relaying rank's own selector (bounded draws), else give up."""
        peers = self._region_peers
        if peers is not None:
            n = len(peers)
            start = self.requests_forwarded % n
            for i in range(n):
                cand = peers[(start + i) % n]
                if cand not in visited:
                    return cand
        selector = self.selector
        if selector is not None:
            for _ in range(_FORWARD_TRIES):
                cand = selector.next_victim()
                if cand not in visited:
                    return cand
        return None

    # ------------------------------------------------------------------
    # Lifelines
    # ------------------------------------------------------------------

    def _quiesce(self, now: float) -> None:
        self._quiescent = True
        self._armed = True
        self.quiesce_episodes += 1
        if self.events is not None:
            self.events.append(now, EV_LIFELINE_QUIESCE)
        for partner in self.partners:
            self.transport.send(
                self.rank, partner, LifelineRegister(self.rank), now
            )

    def _disarm(self, now: float) -> None:
        self._armed = False
        self._quiescent = False
        self.consecutive_failed_steals = 0
        for partner in self.partners:
            self.transport.send(
                self.rank, partner, LifelineDeregister(self.rank), now
            )

    # ------------------------------------------------------------------

    @property
    def search_time(self) -> float:
        """Total time this rank spent in work-discovery sessions."""
        return sum(s.duration for s in self.sessions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StealProtocol(rank={self.rank}, "
            f"forward={self._forward}, "
            f"regions={self._region_peers is not None}, "
            f"lifelines={self._lifelines})"
        )
