"""Worker lifecycle states.

A leaf module (no simulator imports) so both the execution core
(:mod:`repro.sim.worker`) and the steal-protocol layer
(:mod:`repro.protocol`) can share the enum without an import cycle.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["WorkerStatus"]


class WorkerStatus(IntEnum):
    """Lifecycle of a rank."""

    RUNNING = 0  # has work; an EXEC event is outstanding
    WAITING = 1  # empty stack; one steal request outstanding
    DONE = 2  # received the termination broadcast
