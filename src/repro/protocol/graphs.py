"""Lifeline graph builders (registry kind ``"lifeline_graph"``).

A lifeline graph assigns every rank a small set of *partner* ranks it
arms when quiescing (see :mod:`repro.lifeline`).  The original scheme
hard-coded the cyclic hypercube of Saraswat et al.; the protocol layer
makes the graph a configuration axis so coverage/diameter trade-offs
can be measured:

``hypercube``
    Partners at power-of-two offsets ``(r + 2^i) mod N`` — ``O(log N)``
    diameter, the reference graph (and the backward-compatible
    default).
``ring``
    Nearest neighbours ``r ± 1, r ± 2, ...`` — symmetric by
    construction, minimal wiring, linear diameter.
``random``
    Seeded uniform draw of distinct partners per rank — expander-like
    in expectation, no structure.
``regtree``
    Binary tree *within* each locality region (regions from
    :class:`repro.protocol.regions.RegionMap`; one region covering the
    job when regions are off), region roots linked in a ring — work
    percolates within a region before crossing region boundaries.

Every builder returns partners in a deterministic order with the same
guarantees (pinned by the hypothesis suite in ``tests/protocol``): no
self-edges, no duplicates, every partner in ``range(nranks)``, at most
``count`` partners.  ``ring`` is additionally symmetric (``a`` lists
``b`` iff ``b`` lists ``a``); ``regtree`` is symmetric once ``count >=
4`` admits every tree/ring edge.
"""

from __future__ import annotations

import numpy as np

from repro.core import registry

__all__ = [
    "hypercube_partners",
    "ring_partners",
    "random_partners",
    "regtree_partners",
    "SYMMETRIC_GRAPHS",
]

#: Seed-stream constant separating the per-rank graph RNG from the
#: selector streams (``SeedSequence([seed, rank])`` in repro.core.victim)
#: and the region-draw stream (:data:`repro.protocol.core._REGION_STREAM`).
_GRAPH_STREAM = 0x4C47  # "LG"

#: Graph names whose partner relation is symmetric (``regtree`` only
#: once ``count >= 4`` admits parent + both children + the root ring).
SYMMETRIC_GRAPHS = frozenset({"ring"})


def hypercube_partners(
    rank: int, nranks: int, count: int, seed: int = 0, regions=None
) -> list[int]:
    """Cyclic-hypercube lifeline graph: partners at power-of-two offsets.

    Rank ``r`` links to ``(r + 2^i) mod N`` for ``i = 0, 1, ...`` —
    the outgoing edges of a cyclic hypercube, at most ``count`` of
    them.  Every rank is reachable from every other in ``O(log N)``
    lifeline hops, the property the original paper relies on for
    work to percolate to starving corners.
    """
    partners: list[int] = []
    offset = 1
    while len(partners) < count and offset < nranks:
        partner = (rank + offset) % nranks
        if partner != rank and partner not in partners:
            partners.append(partner)
        offset <<= 1
    return partners


def ring_partners(
    rank: int, nranks: int, count: int, seed: int = 0, regions=None
) -> list[int]:
    """Nearest-neighbour ring: ``r ± 1, r ± 2, ...``, symmetric.

    Offsets are added in ``+o, -o`` pairs, so whenever ``a`` lists
    ``b`` the reverse offset sits at the adjacent slot of ``b``'s list
    — the relation is symmetric for every ``count``.
    """
    partners: list[int] = []
    offset = 1
    while len(partners) + 2 <= count and offset < nranks:
        for cand in ((rank + offset) % nranks, (rank - offset) % nranks):
            if cand != rank and cand not in partners:
                partners.append(cand)
        offset += 1
    return partners


def random_partners(
    rank: int, nranks: int, count: int, seed: int = 0, regions=None
) -> list[int]:
    """Seeded uniform draw of distinct partners (expander-ish)."""
    eligible = nranks - 1
    k = min(count, eligible)
    if k <= 0:
        return []
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, rank, _GRAPH_STREAM])
    )
    # Draw from 0..nranks-2 and shift past self: uniform over others.
    draw = rng.choice(eligible, size=k, replace=False)
    return [int(d) if d < rank else int(d) + 1 for d in draw]


def regtree_partners(
    rank: int, nranks: int, count: int, seed: int = 0, regions=None
) -> list[int]:
    """Binary tree within each region; region roots linked in a ring.

    Within region ``[lo, hi)`` the local index ``i = rank - lo`` gets
    parent ``lo + (i - 1) // 2`` and children ``lo + 2i + 1``,
    ``lo + 2i + 2``; each region root additionally links the next and
    previous region's root.  With no region map the whole job is one
    region (a plain binary tree rooted at rank 0).
    """
    if regions is not None:
        region = regions.region_of(rank)
        lo, hi = regions.bounds_of(region)
        roots = [regions.bounds_of(s)[0] for s in range(regions.nregions)]
    else:
        region, lo, hi = 0, 0, nranks
        roots = [0]
    i = rank - lo
    links: list[int] = []
    if i > 0:
        links.append(lo + (i - 1) // 2)
    else:
        nroots = len(roots)
        if nroots > 1:
            nxt = roots[(region + 1) % nroots]
            prv = roots[(region - 1) % nroots]
            links.append(nxt)
            if prv != nxt:
                links.append(prv)
    for child in (lo + 2 * i + 1, lo + 2 * i + 2):
        if child < hi:
            links.append(child)
    partners: list[int] = []
    for cand in links:
        if cand != rank and cand not in partners and len(partners) < count:
            partners.append(cand)
    return partners


_GRAPHS = registry.registry_for("lifeline_graph")
_GRAPHS.register("hypercube", lambda: hypercube_partners)
_GRAPHS.register("ring", lambda: ring_partners)
_GRAPHS.register("random", lambda: random_partners)
_GRAPHS.register("regtree", lambda: regtree_partners)


def graph_by_name(name: str):
    """Resolve a lifeline-graph builder by registered name."""
    return _GRAPHS.resolve(name)
