"""The composable steal-protocol layer.

The execution core (:class:`repro.sim.worker.Worker`) runs quanta and
keeps the clock; everything about *finding and moving work* — the idle
transition, victim draws, request/response/forward/push handling,
session accounting and the termination handshake — lives in
:class:`~repro.protocol.core.StealProtocol`, configured per run by an
immutable :class:`~repro.protocol.core.ProtocolPlan`.

On that seam three protocol features compose (with each other and with
every victim selector):

* **Forwarding** (``protocol="forward"``): a victim with nothing to
  give relays the request toward work — TTL-bounded, cycle-free via a
  visited set on the message — and the eventual server responds
  straight to the originator (the Project Picasso idiom).
* **Locality regions** (``regions=R``): victim draws try the rank's
  own allocation-aligned region first and escalate outward after
  ``region_attempts`` misses (localized stealing, arXiv:1804.04773).
* **Lifeline graphs** (``lifelines=K, lifeline_graph=G``): the
  quiesce-and-push scheme over a configurable partner graph
  (:mod:`repro.protocol.graphs`) instead of the hard-coded hypercube.

All knobs are physics: they participate in result fingerprints (with
default elision, so pre-existing fingerprints are unchanged) and hold
the engine bit-identity contract — see ``DESIGN.md``.
"""

from repro.protocol.core import ProtocolPlan, StealProtocol
from repro.protocol.factory import build_plan, make_worker
from repro.protocol.graphs import (
    SYMMETRIC_GRAPHS,
    hypercube_partners,
    random_partners,
    regtree_partners,
    ring_partners,
)
from repro.protocol.regions import RegionMap
from repro.protocol.variants import protocol_overrides, protocol_tag

__all__ = [
    "ProtocolPlan",
    "StealProtocol",
    "build_plan",
    "make_worker",
    "RegionMap",
    "hypercube_partners",
    "ring_partners",
    "random_partners",
    "regtree_partners",
    "SYMMETRIC_GRAPHS",
    "protocol_overrides",
    "protocol_tag",
]
