"""Protocol-variant shorthand grammar (registry kind ``"protocol"``).

The tournament harness and the bench sweeps name protocol
configurations with compact "+"-joined specs; this module owns the
grammar in both directions:

:func:`protocol_overrides`
    spec string -> :class:`~repro.core.config.WorkStealingConfig`
    override dict, e.g. ``"forward[3]+regions[8]"`` ->
    ``{"protocol": "forward", "forward_ttl": 3, "regions": 8}``.
:func:`protocol_tag`
    config -> canonical short tag (``"steal"``, ``"fwd2+reg8"``,
    ``"ll2:ring"``) — the stable row/label vocabulary of leaderboards.

Atoms (combine with ``+``; each may appear once):

======================  ==============================================
``steal``               baseline request/response stealing (no knobs)
``forward``             relay denied requests; ``forward[T]`` sets the
                        TTL (default 2)
``regions[R]``          R locality regions, region-first victim draws;
                        ``regions[R:A]`` also sets the per-session
                        intra-region attempt budget A
``lifelines[K]``        K lifeline partners; ``lifelines[K:G]`` also
                        picks graph G (``hypercube``, ``ring``,
                        ``random``, ``regtree``)
======================  ==============================================

The grammar is registered under registry kind ``"protocol"`` (exact
name ``"steal"`` plus a pattern for everything else), so
``registry.available("protocol")`` documents it alongside the selector
and policy families.
"""

from __future__ import annotations

import re

from repro.core import registry
from repro.errors import RegistryError

__all__ = ["protocol_overrides", "protocol_tag"]

_FORWARD_RE = re.compile(r"^forward(?:\[(\d+)\])?$")
_REGIONS_RE = re.compile(r"^regions\[(\d+)(?::(\d+))?\]$")
_LIFELINES_RE = re.compile(r"^lifelines\[(\d+)(?::([a-z_]+))?\]$")


def _parse_atom(atom: str) -> dict:
    if atom == "steal":
        return {}
    m = _FORWARD_RE.match(atom)
    if m:
        out = {"protocol": "forward"}
        if m.group(1) is not None:
            out["forward_ttl"] = int(m.group(1))
        return out
    m = _REGIONS_RE.match(atom)
    if m:
        out = {"regions": int(m.group(1))}
        if m.group(2) is not None:
            out["region_attempts"] = int(m.group(2))
        return out
    m = _LIFELINES_RE.match(atom)
    if m:
        out = {"lifelines": int(m.group(1))}
        if m.group(2) is not None:
            out["lifeline_graph"] = m.group(2)
        return out
    raise RegistryError(
        f"unknown protocol atom {atom!r}; expected 'steal', 'forward[T]', "
        "'regions[R[:A]]' or 'lifelines[K[:G]]'"
    )


def protocol_overrides(spec: str) -> dict:
    """Parse a protocol spec into config override kwargs.

    ``"steal"`` is the identity (empty dict); atoms joined with ``+``
    merge, and repeating a config key (``"forward+forward[3]"``) is an
    error — specs stay canonical.
    """
    if not isinstance(spec, str) or not spec:
        raise RegistryError(f"protocol spec must be a non-empty string, got {spec!r}")
    overrides: dict = {}
    for atom in spec.split("+"):
        part = _parse_atom(atom)
        dup = overrides.keys() & part.keys()
        if dup:
            raise RegistryError(
                f"protocol spec {spec!r} sets {sorted(dup)} more than once"
            )
        overrides.update(part)
    return overrides


def protocol_tag(config) -> str:
    """Canonical short tag of ``config``'s protocol configuration.

    The empty (all-default) configuration tags as ``"steal"``; the tag
    mentions only non-default axes, so it is stable as new knobs grow.
    """
    parts = []
    if config.protocol == "forward":
        parts.append(f"fwd{config.forward_ttl}")
    if config.regions > 0:
        reg = f"reg{config.regions}"
        if config.region_attempts != 2:
            reg += f":{config.region_attempts}"
        parts.append(reg)
    if config.lifelines > 0:
        ll = f"ll{config.lifelines}"
        if config.lifeline_graph != "hypercube":
            ll += f":{config.lifeline_graph}"
        parts.append(ll)
    return "+".join(parts) if parts else "steal"


def _pattern_parser(spec: str):
    # Only specs shaped like the grammar resolve; anything else returns
    # None so other (future) patterns get a chance.
    if not re.match(r"^(steal|forward|regions|lifelines)", spec):
        return None
    return protocol_overrides(spec)


_PROTOCOLS = registry.registry_for("protocol")
_PROTOCOLS.register("steal", lambda: {})
_PROTOCOLS.register_pattern(
    "forward[T]+regions[R:A]+lifelines[K:G]", _pattern_parser
)
