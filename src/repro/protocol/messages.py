"""Messages of the simulated work-stealing protocol.

The protocol mirrors the reference MPI UTS (§II-A of the paper): the
implementation "does not respect the work-first principle.  Indeed, a
process stealing work will in fact post a request to its victim by a
message, and the victim will stop working on its queue to package work
and send it to the stealer."

* :class:`StealRequest` — thief asks a victim for work;
* :class:`StealResponse` — victim answers with chunks (success) or
  ``None`` (failed steal);
* :class:`Token` — the termination-detection token (white/black);
* :class:`Finish` — rank 0's broadcast that the computation is over.

Every message class carries an integer ``tag`` class attribute (the
``TAG_*`` constants).  The event loop and the workers dispatch on the
tag with plain integer comparisons instead of ``isinstance`` chains —
one attribute load and an int compare per message on the DES hot path.

Messages compare by value (``__eq__``) so the cross-shard wire codec
(:mod:`repro.sim.shardcodec`) can assert encode→decode identity; they
keep identity hashing — the engine never keys containers by message
value, and per-instance hashing would silently change that contract.
"""

from __future__ import annotations

from repro.uts.stack import Chunk

__all__ = [
    "StealRequest",
    "StealResponse",
    "StealForward",
    "Token",
    "Finish",
    "LifelineRegister",
    "LifelineDeregister",
    "WHITE",
    "BLACK",
    "TAG_STEAL_REQUEST",
    "TAG_STEAL_RESPONSE",
    "TAG_TOKEN",
    "TAG_FINISH",
    "TAG_LIFELINE_REGISTER",
    "TAG_LIFELINE_DEREGISTER",
    "TAG_STEAL_FORWARD",
]

WHITE = 0
BLACK = 1

# Integer dispatch tags, one per message class (see module docs).
TAG_STEAL_REQUEST = 0
TAG_STEAL_RESPONSE = 1
TAG_TOKEN = 2
TAG_FINISH = 3
TAG_LIFELINE_REGISTER = 4
TAG_LIFELINE_DEREGISTER = 5
TAG_STEAL_FORWARD = 6


class StealRequest:
    """A steal attempt posted by ``thief``.

    ``escalated`` is thief-side state carried to the victim: after K
    consecutive failed steals an adaptive steal policy
    (:class:`repro.select.adaptive.AdaptiveStealPolicy`) asks for a
    larger transfer.  Keeping the flag on the message — instead of
    state on the shared policy object — is what keeps the policy
    stateless and the engines bit-identical across shard layouts.
    """

    tag = TAG_STEAL_REQUEST

    __slots__ = ("thief", "escalated")

    def __init__(self, thief: int, escalated: bool = False):
        self.thief = thief
        self.escalated = escalated

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is StealRequest
            and other.thief == self.thief
            and other.escalated == self.escalated
        )

    __hash__ = object.__hash__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        esc = ", escalated" if self.escalated else ""
        return f"StealRequest(thief={self.thief}{esc})"


class StealResponse:
    """The victim's answer: ``chunks`` is None for a failed steal."""

    tag = TAG_STEAL_RESPONSE

    __slots__ = ("victim", "chunks")

    def __init__(self, victim: int, chunks: list[Chunk] | None):
        self.victim = victim
        self.chunks = chunks

    @property
    def has_work(self) -> bool:
        return self.chunks is not None

    @property
    def nodes(self) -> int:
        return sum(c.size for c in self.chunks) if self.chunks else 0

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is StealResponse
            and other.victim == self.victim
            and other.chunks == self.chunks
        )

    __hash__ = object.__hash__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        what = f"{len(self.chunks)} chunks" if self.chunks else "no work"
        return f"StealResponse(victim={self.victim}, {what})"


class StealForward:
    """A relayed steal request hunting for work (forwarding extension).

    A victim with nothing to give relays the originating thief's
    request toward likely work instead of replying fail (the Project
    Picasso idiom; see :mod:`repro.protocol`).  ``thief`` is always
    the *originator* — a serving rank replies straight to it with a
    plain :class:`StealResponse`, so the thief side of the protocol is
    unchanged.  ``ttl`` bounds the remaining relay hops and
    ``visited`` (an ordered tuple: originator, then every rank the
    request has passed through) prevents cycles; both travel on the
    message, keeping every rank's state machine memoryless about
    in-flight chains — the same design that keeps ``escalated`` on
    :class:`StealRequest`.
    """

    tag = TAG_STEAL_FORWARD

    __slots__ = ("thief", "escalated", "ttl", "visited")

    def __init__(
        self, thief: int, escalated: bool, ttl: int, visited: tuple[int, ...]
    ):
        self.thief = thief
        self.escalated = escalated
        self.ttl = ttl
        self.visited = tuple(visited)

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is StealForward
            and other.thief == self.thief
            and other.escalated == self.escalated
            and other.ttl == self.ttl
            and other.visited == self.visited
        )

    __hash__ = object.__hash__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        esc = ", escalated" if self.escalated else ""
        return (
            f"StealForward(thief={self.thief}{esc}, ttl={self.ttl}, "
            f"visited={self.visited})"
        )


class Token:
    """Termination token circulating the ring (see ``termination``)."""

    tag = TAG_TOKEN

    __slots__ = ("color",)

    def __init__(self, color: int):
        if color not in (WHITE, BLACK):
            raise ValueError(f"token color must be WHITE/BLACK, got {color}")
        self.color = color

    def __eq__(self, other: object) -> bool:
        return type(other) is Token and other.color == self.color

    __hash__ = object.__hash__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({'white' if self.color == WHITE else 'black'})"


class Finish:
    """Termination broadcast from rank 0."""

    tag = TAG_FINISH

    __slots__ = ()

    def __eq__(self, other: object) -> bool:
        return type(other) is Finish

    __hash__ = object.__hash__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Finish()"


class LifelineRegister:
    """A starving thief arms its lifeline at a partner (extension)."""

    tag = TAG_LIFELINE_REGISTER

    __slots__ = ("thief",)

    def __init__(self, thief: int):
        self.thief = thief

    def __eq__(self, other: object) -> bool:
        return type(other) is LifelineRegister and other.thief == self.thief

    __hash__ = object.__hash__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LifelineRegister(thief={self.thief})"


class LifelineDeregister:
    """A woken thief disarms its lifelines (extension)."""

    tag = TAG_LIFELINE_DEREGISTER

    __slots__ = ("thief",)

    def __init__(self, thief: int):
        self.thief = thief

    def __eq__(self, other: object) -> bool:
        return type(other) is LifelineDeregister and other.thief == self.thief

    __hash__ = object.__hash__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LifelineDeregister(thief={self.thief})"
