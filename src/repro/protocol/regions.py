"""Locality regions for localized work stealing.

Suksompong, Leiserson & Schardl ("On the Efficiency of Localized Work
Stealing", arXiv:1804.04773) analyse the regime where a processor
first tries to *steal back* work owned by its own locality region and
only then escalates to remote victims.  :class:`RegionMap` is the
repro's geometry for that discipline: the rank space is cut into
contiguous blocks aligned with the allocation's node blocks (the same
:func:`~repro.net.allocation.aligned_block_bounds` partition the
sharded engine uses), so intra-region steals are intra-node-block —
the cheap traffic class of the paper's Tofu hierarchy.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.errors import ConfigurationError
from repro.net.allocation import aligned_block_bounds

__all__ = ["RegionMap"]


class RegionMap:
    """Partition of the rank space into contiguous locality regions."""

    __slots__ = ("bounds", "nregions", "aligned")

    def __init__(self, bounds: list[int], aligned: bool = True):
        if len(bounds) < 2 or bounds[0] != 0:
            raise ConfigurationError(
                f"region bounds must start at 0, got {bounds!r}"
            )
        for a, b in zip(bounds, bounds[1:]):
            if b <= a:
                raise ConfigurationError(
                    f"region bounds must be strictly increasing, got {bounds!r}"
                )
        self.bounds = list(bounds)
        self.nregions = len(bounds) - 1
        self.aligned = aligned

    @classmethod
    def build(cls, nranks: int, nregions: int, rank_nodes) -> "RegionMap":
        """Cut ``nranks`` into ``nregions`` node-aligned blocks."""
        bounds, aligned = aligned_block_bounds(nranks, nregions, rank_nodes)
        return cls(bounds, aligned)

    @property
    def nranks(self) -> int:
        return self.bounds[-1]

    def region_of(self, rank: int) -> int:
        """Index of the region hosting ``rank``."""
        return bisect_right(self.bounds, rank) - 1

    def bounds_of(self, region: int) -> tuple[int, int]:
        """``(lo, hi)`` rank range of ``region``."""
        return self.bounds[region], self.bounds[region + 1]

    def peers(self, rank: int) -> list[int]:
        """Every other rank in ``rank``'s region, ascending."""
        lo, hi = self.bounds_of(self.region_of(rank))
        return [r for r in range(lo, hi) if r != rank]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RegionMap(nregions={self.nregions}, nranks={self.nranks}, "
            f"aligned={self.aligned})"
        )
