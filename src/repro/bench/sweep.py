"""Parameter sweeps over the experiment space.

Sweeps are the batch workload of the repo: every figure is a grid of
independent runs.  They are built as config lists and executed through
:func:`repro.bench.experiments.run_configs`, which layers the
in-process memo, the optional on-disk cache and the
:mod:`repro.exec` worker pool (``--jobs``) under one roof.
"""

from __future__ import annotations

from typing import Iterable

from repro.bench.experiments import (
    CALIBRATION,
    Calibration,
    experiment_config,
    run_configs,
)
from repro.uts.params import TreeParams
from repro.ws.results import RunResult

__all__ = ["sweep"]


def sweep(
    tree: TreeParams | str,
    ladder: Iterable[int],
    allocations: Iterable[str] = ("1/N",),
    selector: str = "reference",
    steal_policy: str = "one",
    calibration: Calibration = CALIBRATION,
    jobs: int | None = None,
    **overrides,
) -> dict[tuple[int, str], RunResult]:
    """Run ``selector/steal_policy`` over ``ladder x allocations``.

    Returns ``{(nranks, allocation): RunResult}``; results come from
    the shared memo cache, so overlapping sweeps are free.  The grid
    is executed as one batch: with ``jobs`` (or the harness-wide
    :func:`~repro.bench.experiments.configure` setting) above 1, its
    points run on worker processes in parallel.
    """
    keys: list[tuple[int, str]] = []
    configs = []
    for nranks in ladder:
        for allocation in allocations:
            keys.append((nranks, allocation))
            configs.append(
                experiment_config(
                    tree,
                    nranks,
                    allocation=allocation,
                    selector=selector,
                    steal_policy=steal_policy,
                    calibration=calibration,
                    **overrides,
                )
            )
    results = run_configs(configs, jobs=jobs)
    return dict(zip(keys, results))
