"""Parameter sweeps over the experiment space."""

from __future__ import annotations

from typing import Iterable

from repro.bench.experiments import CALIBRATION, Calibration, cached_run, experiment_config
from repro.uts.params import TreeParams
from repro.ws.results import RunResult

__all__ = ["sweep"]


def sweep(
    tree: TreeParams | str,
    ladder: Iterable[int],
    allocations: Iterable[str] = ("1/N",),
    selector: str = "reference",
    steal_policy: str = "one",
    calibration: Calibration = CALIBRATION,
    **overrides,
) -> dict[tuple[int, str], RunResult]:
    """Run ``selector/steal_policy`` over ``ladder x allocations``.

    Returns ``{(nranks, allocation): RunResult}``; results come from
    the shared memo cache, so overlapping sweeps are free.
    """
    results: dict[tuple[int, str], RunResult] = {}
    for nranks in ladder:
        for allocation in allocations:
            cfg = experiment_config(
                tree,
                nranks,
                allocation=allocation,
                selector=selector,
                steal_policy=steal_policy,
                calibration=calibration,
                **overrides,
            )
            results[(nranks, allocation)] = cached_run(cfg)
    return results
