"""Calibrated experiment space for the paper reproduction.

The paper ran on 1024—8192 K Computer nodes with trees of 2.8e9 and
1.57e11 nodes.  The reproduction compresses both axes (DESIGN.md §2):

* rank ladders — :data:`SMALL_LADDER` (8—128, Fig 2's band) and
  :data:`LARGE_LADDER` (64—512, standing in for 1024—8192);
* trees — ``T3S`` for the small band, ``T3L`` for the large one;
* the latency model keeps the K Computer's hierarchy (node / blade /
  cube / torus) with a per-hop cost scaled up (2 µs) to restore the
  near/far spread that physical scale provided — at 512 ranks the
  compact job box spans far fewer hops than 8192 nodes did, so the
  per-hop price compensates (see EXPERIMENTS.md "Calibration");
* a NIC serialisation cost of 0.1 µs/message models the shared
  per-node injection path that penalised 8-processes-per-node runs.

:func:`cached_run` memoises simulations by config fingerprint: the
benchmark suite's figures share sweeps (Fig 3's runs are also Fig 7's,
Fig 9's also Fig 10's, ...), so each distinct simulation runs once per
process.  :func:`configure` layers the :mod:`repro.exec` machinery on
top: worker processes for batch runs (:func:`run_configs`) and the
on-disk result cache, both wired to the CLI's ``--jobs`` /
``--no-cache`` flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.config import WorkStealingConfig
from repro.exec.cache import ResultCache
from repro.exec.fingerprint import fingerprint_dict
from repro.exec.pool import run_many
from repro.net.latency import HierarchicalLatency
from repro.uts.params import TreeParams, tree_by_name
from repro.ws.results import RunResult

__all__ = [
    "Calibration",
    "CALIBRATION",
    "SMALL_LADDER",
    "LARGE_LADDER",
    "experiment_config",
    "configure",
    "cached_run",
    "run_configs",
    "clear_cache",
]

#: Rank counts for the small-scale experiments (paper Fig 2: 8—128).
SMALL_LADDER = (8, 16, 32, 64)

#: Rank counts standing in for the paper's 1024—8192 (Figs 3—15).
LARGE_LADDER = (64, 128, 256, 512)


@dataclass(frozen=True)
class Calibration:
    """Timing constants shared by every benchmark experiment."""

    node_time: float = 1e-6  # ~ the K's 970k nodes/s
    poll_interval: int = 2  # near per-node polling of the MPI code
    chunk_size: int = 20  # the paper's default chunk size
    nic_service_time: float = 1e-7
    steal_service_time: float = 1e-6
    intra_node: float = 4e-7
    blade: float = 8e-7
    cube: float = 1.2e-6
    base: float = 1.0e-6
    per_hop: float = 2e-6  # scaled up: restores the near/far spread
    small_tree: str = "T3M"
    large_tree: str = "T3L"

    def latency_model(self) -> HierarchicalLatency:
        return HierarchicalLatency(
            intra_node=self.intra_node,
            blade=self.blade,
            cube=self.cube,
            base=self.base,
            per_hop=self.per_hop,
        )


CALIBRATION = Calibration()


def experiment_config(
    tree: TreeParams | str,
    nranks: int,
    allocation: str = "1/N",
    selector: str = "reference",
    steal_policy: str = "one",
    calibration: Calibration = CALIBRATION,
    **overrides,
) -> WorkStealingConfig:
    """Build a run config with the benchmark calibration applied."""
    if isinstance(tree, str):
        tree = tree_by_name(tree)
    kwargs = dict(
        tree=tree,
        nranks=nranks,
        allocation=allocation,
        selector=selector,
        steal_policy=steal_policy,
        latency_model=calibration.latency_model(),
        node_time=calibration.node_time,
        poll_interval=calibration.poll_interval,
        chunk_size=calibration.chunk_size,
        nic_service_time=calibration.nic_service_time,
        steal_service_time=calibration.steal_service_time,
    )
    kwargs.update(overrides)
    return WorkStealingConfig(**kwargs)


#: In-process memo: fingerprint -> result (shared across all figures).
_MEMO: dict[str, RunResult] = {}
#: Default worker count for batch runs (1 = serial, None = cpu_count).
_JOBS: int | None = 1
#: Optional on-disk cache shared by cached_run / run_configs.
_DISK: ResultCache | None = None
#: Route batch runs through the simulation service (the CLI's --service).
_SERVICE: bool = False

#: configure() sentinel: "leave this setting unchanged".
_UNSET = object()


def configure(jobs: int | None = _UNSET, cache=_UNSET, service=_UNSET) -> None:
    """Set the harness-wide execution knobs (the CLI's flags).

    Parameters
    ----------
    jobs:
        Worker processes for batch runs: ``1`` serial (the default),
        ``None`` for ``os.cpu_count()``, or an explicit count.
    cache:
        On-disk result cache: ``True`` for the default
        ``benchmarks/_cache/``, a path or
        :class:`~repro.exec.cache.ResultCache`, or ``None``/``False``
        to disable (the default — pytest runs stay self-contained).
    service:
        ``True`` routes batch runs through a
        :class:`~repro.service.SimulationService` sweep (same pool,
        same store, plus the service's dedup and scheduling layers)
        instead of calling :func:`repro.exec.run_many` directly.
    """
    global _JOBS, _DISK, _SERVICE
    if jobs is not _UNSET:
        _JOBS = jobs
    if cache is not _UNSET:
        if cache is True:
            _DISK = ResultCache()
        elif cache is None or cache is False:
            _DISK = None
        elif isinstance(cache, ResultCache):
            _DISK = cache
        else:
            _DISK = ResultCache(cache)
    if service is not _UNSET:
        _SERVICE = bool(service)


def _lookup(data: dict, fingerprint: str) -> RunResult | None:
    """Memo/disk lookup with traced-run subsumption.

    Traced runs subsume untraced ones: if a traced result for the same
    physics exists, an untraced request returns it (the trace only adds
    data, it never changes timing).
    """
    hit = _MEMO.get(fingerprint)
    if hit is not None:
        return hit
    traced_fp = None
    if not data["trace"]:
        traced_fp = fingerprint_dict({**data, "trace": True})
        hit = _MEMO.get(traced_fp)
        if hit is not None:
            return hit
    if _DISK is not None:
        hit = _DISK.get(fingerprint)
        if hit is not None:
            _MEMO[fingerprint] = hit
            return hit
        if traced_fp is not None:
            hit = _DISK.get(traced_fp)
            if hit is not None:
                _MEMO[traced_fp] = hit
                return hit
    return None


def cached_run(cfg: WorkStealingConfig) -> RunResult:
    """Run a config, memoised on its fingerprint (single-run form)."""
    return run_configs([cfg])[0]


def run_configs(
    configs: Sequence[WorkStealingConfig] | Iterable[WorkStealingConfig],
    jobs: int | None = None,
) -> list[RunResult]:
    """Run many configs through the memo + executor, in input order.

    Cache hits (in-process memo, then on-disk cache when enabled)
    never touch the simulator; the remainder goes to
    :func:`repro.exec.run_many` with ``jobs`` workers (defaulting to
    the :func:`configure` setting).
    """
    configs = list(configs)
    dicts = [cfg.to_dict() for cfg in configs]
    fingerprints = [fingerprint_dict(d) for d in dicts]

    results: list[RunResult | None] = [None] * len(configs)
    pending: list[int] = []
    pending_fps: set[str] = set()
    for i, (data, fp) in enumerate(zip(dicts, fingerprints)):
        hit = _lookup(data, fp)
        if hit is not None:
            results[i] = hit
        elif fp not in pending_fps:
            pending.append(i)
            pending_fps.add(fp)

    if pending:
        workers = jobs if jobs is not None else _JOBS
        to_run = [configs[i] for i in pending]
        if _SERVICE:
            from repro.core.jobs import JobFailure
            from repro.service.service import run_service_sweep

            fresh = run_service_sweep(to_run, workers=workers, store=_DISK)
            for slot in fresh:
                if isinstance(slot, JobFailure):
                    raise slot.error
        else:
            fresh = run_many(to_run, jobs=workers, store=_DISK)
        for i, result in zip(pending, fresh):
            _MEMO[fingerprints[i]] = result
    # Second pass: fill every slot (duplicates resolve via the memo).
    for i, (data, fp) in enumerate(zip(dicts, fingerprints)):
        if results[i] is None:
            results[i] = _lookup(data, fp)
    return results  # type: ignore[return-value]


def clear_cache() -> int:
    """Drop all in-process memoised results; returns how many were held.

    The on-disk cache (when configured) is left untouched; use
    ``ResultCache.clear()`` for that.
    """
    n = len(_MEMO)
    _MEMO.clear()
    return n
