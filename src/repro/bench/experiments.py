"""Calibrated experiment space for the paper reproduction.

The paper ran on 1024—8192 K Computer nodes with trees of 2.8e9 and
1.57e11 nodes.  The reproduction compresses both axes (DESIGN.md §2):

* rank ladders — :data:`SMALL_LADDER` (8—128, Fig 2's band) and
  :data:`LARGE_LADDER` (64—512, standing in for 1024—8192);
* trees — ``T3S`` for the small band, ``T3L`` for the large one;
* the latency model keeps the K Computer's hierarchy (node / blade /
  cube / torus) with a per-hop cost scaled up (2 µs) to restore the
  near/far spread that physical scale provided — at 512 ranks the
  compact job box spans far fewer hops than 8192 nodes did, so the
  per-hop price compensates (see EXPERIMENTS.md "Calibration");
* a NIC serialisation cost of 0.1 µs/message models the shared
  per-node injection path that penalised 8-processes-per-node runs.

:func:`cached_run` memoises simulations by config signature: the
benchmark suite's figures share sweeps (Fig 3's runs are also Fig 7's,
Fig 9's also Fig 10's, ...), so each distinct simulation runs once per
process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import WorkStealingConfig
from repro.net.latency import HierarchicalLatency
from repro.uts.params import TreeParams, tree_by_name
from repro.ws.results import RunResult
from repro.ws.runner import run_uts

__all__ = [
    "Calibration",
    "CALIBRATION",
    "SMALL_LADDER",
    "LARGE_LADDER",
    "experiment_config",
    "cached_run",
    "clear_cache",
]

#: Rank counts for the small-scale experiments (paper Fig 2: 8—128).
SMALL_LADDER = (8, 16, 32, 64)

#: Rank counts standing in for the paper's 1024—8192 (Figs 3—15).
LARGE_LADDER = (64, 128, 256, 512)


@dataclass(frozen=True)
class Calibration:
    """Timing constants shared by every benchmark experiment."""

    node_time: float = 1e-6  # ~ the K's 970k nodes/s
    poll_interval: int = 2  # near per-node polling of the MPI code
    chunk_size: int = 20  # the paper's default chunk size
    nic_service_time: float = 1e-7
    steal_service_time: float = 1e-6
    intra_node: float = 4e-7
    blade: float = 8e-7
    cube: float = 1.2e-6
    base: float = 1.0e-6
    per_hop: float = 2e-6  # scaled up: restores the near/far spread
    small_tree: str = "T3M"
    large_tree: str = "T3L"

    def latency_model(self) -> HierarchicalLatency:
        return HierarchicalLatency(
            intra_node=self.intra_node,
            blade=self.blade,
            cube=self.cube,
            base=self.base,
            per_hop=self.per_hop,
        )


CALIBRATION = Calibration()


def experiment_config(
    tree: TreeParams | str,
    nranks: int,
    allocation: str = "1/N",
    selector: str = "reference",
    steal_policy: str = "one",
    calibration: Calibration = CALIBRATION,
    **overrides,
) -> WorkStealingConfig:
    """Build a run config with the benchmark calibration applied."""
    if isinstance(tree, str):
        tree = tree_by_name(tree)
    kwargs = dict(
        tree=tree,
        nranks=nranks,
        allocation=allocation,
        selector=selector,
        steal_policy=steal_policy,
        latency_model=calibration.latency_model(),
        node_time=calibration.node_time,
        poll_interval=calibration.poll_interval,
        chunk_size=calibration.chunk_size,
        nic_service_time=calibration.nic_service_time,
        steal_service_time=calibration.steal_service_time,
    )
    kwargs.update(overrides)
    return WorkStealingConfig(**kwargs)


_CACHE: dict[tuple, RunResult] = {}


def _signature(cfg: WorkStealingConfig) -> tuple:
    assert not isinstance(cfg.allocation, str)
    assert not isinstance(cfg.selector, str)
    assert not isinstance(cfg.steal_policy, str)
    assert not isinstance(cfg.rng_backend, str)
    lat = cfg.latency_model
    lat_sig = (type(lat).__name__,) + tuple(
        sorted((k, v) for k, v in vars(lat).items() if isinstance(v, float))
    )
    return (
        cfg.tree.name,
        cfg.nranks,
        cfg.allocation.name,
        cfg.selector.name,
        cfg.steal_policy.name,
        lat_sig,
        cfg.chunk_size,
        cfg.poll_interval,
        cfg.node_time,
        cfg.compute_rounds,
        cfg.steal_service_time,
        cfg.transfer_time_per_node,
        cfg.nic_service_time,
        cfg.clock_skew_std,
        cfg.rng_backend.name,
        cfg.seed,
        cfg.trace,
        cfg.lifelines,
        cfg.lifeline_threshold,
    )


def cached_run(cfg: WorkStealingConfig) -> RunResult:
    """Run a config, memoised on its full signature.

    Traced runs subsume untraced ones: if a traced result for the same
    physics exists, an untraced request returns it (the trace only adds
    data, it never changes timing).
    """
    sig = _signature(cfg)
    if sig in _CACHE:
        return _CACHE[sig]
    if not cfg.trace:
        traced_sig = sig[:-3] + (True,) + sig[-2:]
        if traced_sig in _CACHE:
            return _CACHE[traced_sig]
    result = run_uts(cfg)
    _CACHE[sig] = result
    return result


def clear_cache() -> int:
    """Drop all memoised results; returns how many were held."""
    n = len(_CACHE)
    _CACHE.clear()
    return n
