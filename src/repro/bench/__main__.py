"""Command-line entry point: run one paper experiment by id.

Usage::

    python -m repro.bench table1
    python -m repro.bench fig11 --jobs 4
    python -m repro.bench --only fig02 --jobs 2
    python -m repro.bench --list

Runs the same code paths as ``pytest benchmarks/`` (shapes asserted
there; here the series are just computed and printed).  ``--jobs N``
runs each experiment's sweep on N worker processes; results are cached
on disk under ``benchmarks/_cache/`` (disable with ``--no-cache``) so
re-running an experiment is instant.
"""

from __future__ import annotations

import argparse
import importlib
import sys

from repro.bench import experiments

#: experiment id -> (benchmarks module, series builder, description).
#: The ``benchmarks`` package must be importable (run from the repo root).
_EXPERIMENTS: dict[str, tuple[str, str, str]] = {
    "table1": ("test_table1_trees", "_rows", "Table I: tree parameters"),
    "fig02": ("test_fig02_reference_small", "_series", "Fig 2: small-scale efficiency"),
    "fig03": ("test_fig03_reference_large", "_series", "Fig 3: reference speedup"),
    "fig04": ("test_fig04_latency_small", "_profile", "Fig 4: SL/EL small run"),
    "fig05": ("test_fig05_latency_large", "_profile", "Fig 5: SL/EL large run"),
    "fig06": ("test_fig06_random_speedup", "_series", "Fig 6: random-selection speedup"),
    "fig07": ("test_fig07_random_failed_steals", "_series", "Fig 7: failed steals (rand)"),
    "fig08": ("test_fig08_probability_distribution", "_distribution", "Fig 8: p(0,x)"),
    "fig09": ("test_fig09_tofu_speedup", "_series", "Fig 9: Tofu speedup"),
    "fig10": ("test_fig10_discovery_sessions", "_series", "Fig 10: discovery sessions"),
    "fig11": ("test_fig11_steal_half", "_series", "Fig 11: steal-half variants"),
    "fig12": ("test_fig12_starting_latency", "_profiles", "Fig 12: starting latencies"),
    "fig13": ("test_fig13_ending_latency", "_profiles", "Fig 13: ending latencies"),
    "fig14": ("test_fig14_search_time", "_series", "Fig 14: search time"),
    "fig15": ("test_fig15_failed_steals", "_series", "Fig 15: failed steals (optimised)"),
    "fig16": ("test_fig16_granularity", "_series", "Fig 16: granularity sweep"),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate one of the paper's tables/figures.",
    )
    parser.add_argument("experiment", nargs="?", help="experiment id (e.g. fig11)")
    parser.add_argument(
        "--only", metavar="ID", help="experiment id (alias for the positional form)"
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the experiment's sweep (default: 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the on-disk result cache (benchmarks/_cache/)",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="run the sweep through the simulation service "
        "(repro.service) instead of calling the executor directly",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top 25 functions by "
        "cumulative time (forces --jobs 1 so the profile covers the "
        "actual simulation work)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="additionally run the experiment's representative config "
        "with structured event tracing and write a Chrome-trace JSON "
        "to benchmarks/_artifacts/<id>.trace.json (see repro.trace)",
    )
    args = parser.parse_args(argv)

    experiment = args.only or args.experiment
    if args.only and args.experiment and args.only != args.experiment:
        print("give the experiment id once (positional or --only)", file=sys.stderr)
        return 2

    if args.list or not experiment:
        for key, (_, _, desc) in _EXPERIMENTS.items():
            print(f"  {key:8s} {desc}")
        return 0

    try:
        module_name, fn_name, desc = _EXPERIMENTS[experiment]
    except KeyError:
        print(f"unknown experiment {experiment!r}; try --list", file=sys.stderr)
        return 2

    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    jobs = args.jobs
    if args.profile and jobs != 1:
        print("--profile forces --jobs 1", file=sys.stderr)
        jobs = 1
    experiments.configure(
        jobs=jobs, cache=not args.no_cache, service=args.service
    )

    module = importlib.import_module(f"benchmarks.{module_name}")
    print(f"running {desc} ...", file=sys.stderr)
    builder = getattr(module, fn_name)
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        payload = profiler.runcall(builder)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)
    else:
        payload = builder()
    # Reuse the module's own printing by invoking its test body is not
    # possible without the benchmark fixture; print the raw payload in
    # a readable form instead.
    from pprint import pprint

    pprint(payload)

    if args.trace:
        return _emit_trace(experiment)
    return 0


def _emit_trace(experiment: str) -> int:
    """Trace the experiment's representative config (``--trace``)."""
    from pathlib import Path

    from repro.trace import __main__ as trace_cli
    from repro.trace.presets import TRACE_PRESETS

    if experiment not in TRACE_PRESETS:
        print(
            f"no trace preset for {experiment!r}; available: "
            f"{list(TRACE_PRESETS)} (see python -m repro.trace --list)",
            file=sys.stderr,
        )
        return 2
    out_dir = Path("benchmarks") / "_artifacts"
    out_dir.mkdir(parents=True, exist_ok=True)
    out = out_dir / f"{experiment}.trace.json"
    return trace_cli.main(
        ["--config", experiment, "--out", str(out), "--check"]
    )


if __name__ == "__main__":
    raise SystemExit(main())
