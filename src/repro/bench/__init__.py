"""Experiment harness regenerating the paper's tables and figures.

* :mod:`repro.bench.experiments` — the calibrated configuration space
  (scaled trees, rank ladders, latency model) and a memoised runner so
  that benchmarks sharing underlying runs (e.g. Figs 3/7/10/14/15 all
  reuse the same sweeps) execute each simulation exactly once;
* :mod:`repro.bench.sweep` — sweep helpers over (selector, policy,
  allocation, scale);
* :mod:`repro.bench.report` — paper-style series/table rendering.
"""

from repro.bench.experiments import (
    CALIBRATION,
    LARGE_LADDER,
    SMALL_LADDER,
    Calibration,
    cached_run,
    clear_cache,
    experiment_config,
)
from repro.bench.report import format_series, format_table, render_ascii_curve
from repro.bench.sweep import sweep

__all__ = [
    "CALIBRATION",
    "LARGE_LADDER",
    "SMALL_LADDER",
    "Calibration",
    "cached_run",
    "clear_cache",
    "experiment_config",
    "format_series",
    "format_table",
    "render_ascii_curve",
    "sweep",
]
