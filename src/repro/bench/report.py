"""Paper-style rendering of experiment results.

Each benchmark prints the same rows/series the corresponding paper
figure plots, via :func:`format_series` (one line per x value, one
column per curve) and :func:`format_table`.  :func:`render_ascii_curve`
draws a quick in-terminal sparkline of a latency profile, useful for
eyeballing the SL/EL figures.

Benchmarks also persist their series with :func:`save_artifact` so
EXPERIMENTS.md can quote exact measured numbers.
"""

from __future__ import annotations

import json
import math
import os
from typing import Mapping, Sequence

__all__ = [
    "format_series",
    "format_table",
    "render_ascii_curve",
    "save_artifact",
    "artifact_dir",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    cols = [[str(h)] for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for k, cell in enumerate(row):
            if isinstance(cell, float):
                cols[k].append(f"{cell:.4g}")
            else:
                cols[k].append(str(cell))
    widths = [max(len(v) for v in col) for col in cols]
    lines = []
    for r in range(len(rows) + 1):
        line = "  ".join(cols[k][r].rjust(widths[k]) for k in range(len(cols)))
        lines.append(line)
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    curves: Mapping[str, Sequence[float]],
) -> str:
    """One paper figure as a table: x column + one column per curve."""
    headers = [x_label] + list(curves)
    rows = []
    for i, x in enumerate(xs):
        row: list[object] = [x]
        for name in curves:
            value = curves[name][i]
            row.append(value if value is not None else math.nan)
        rows.append(row)
    return f"== {title} ==\n" + format_table(headers, rows)


def render_ascii_curve(
    values: Sequence[float], width: int = 60, height: int = 8
) -> str:
    """Tiny ASCII plot of one curve (NaN-tolerant)."""
    clean = [v for v in values if v is not None and not math.isnan(v)]
    if not clean:
        return "(no data)"
    lo, hi = min(clean), max(clean)
    span = hi - lo or 1.0
    # Resample to `width` columns.
    n = len(values)
    cols = []
    for c in range(width):
        v = values[min(n - 1, int(c * n / width))]
        if v is None or math.isnan(v):
            cols.append(None)
        else:
            cols.append(int((v - lo) / span * (height - 1)))
    lines = []
    for level in range(height - 1, -1, -1):
        line = "".join(
            "*" if col is not None and col >= level else " " for col in cols
        )
        lines.append(line)
    lines.append(f"min={lo:.4g} max={hi:.4g}")
    return "\n".join(lines)


def artifact_dir() -> str:
    """Directory where benchmarks persist their measured series."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__))))
    path = os.environ.get(
        "REPRO_ARTIFACTS", os.path.join(here, "benchmarks", "_artifacts")
    )
    os.makedirs(path, exist_ok=True)
    return path


def save_artifact(name: str, payload: dict) -> str:
    """Persist one experiment's series as JSON; returns the path."""
    path = os.path.join(artifact_dir(), f"{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, default=float)
    return path
