"""Tree parameter sets for the UTS benchmark.

A :class:`TreeParams` value fully determines a tree: for a given RNG
backend, the same parameters always generate the same tree, node for
node.  The paper's evaluation uses two binomial trees, reproduced here
verbatim in :data:`T3XXL` and :data:`T3WL` (Table I of the paper) —
they are far too large to traverse in Python (2.8e9 and 1.57e11 nodes),
so the benchmark harness uses the *scaled* trees below, which keep the
binomial imbalance structure at 1e4—1e6 node sizes.

Binomial trees
--------------
The root has ``b0`` children.  Every other node has ``m`` children with
probability ``q`` and none with probability ``1 - q``.  With
``m * q < 1`` the process is subcritical: the expected size of the
subtree under each root child is ``1 / (1 - m*q)``, so the expected
tree size is ``1 + b0 / (1 - m*q)``.  The subtree-size distribution is
heavy-tailed, which is exactly what makes the workload unbalanced: some
root children die immediately, others expand into subtrees millions of
nodes deep.

Scaling strategy (documented in DESIGN.md): the paper's trees use
``q = 0.499995`` (expected subtree 1e5 nodes) and ``q = 0.4999995``
(1e6).  The scaled trees lower ``q`` so the expected subtree size — and
hence total work — shrinks while keeping ``m = 2`` and the same
root fan-out regime, preserving shape: imbalance, depth/size ratio, and
the need for load balancing during the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "TreeParams",
    "TREES",
    "tree_by_name",
    "T3XXL",
    "T3WL",
    "T3XS",
    "T3S",
    "T3M",
    "T3L",
    "T3XL",
    "T3H",
    "GEO_S",
    "GEO_M",
    "GEO_L",
    "HYB_S",
]

_TREE_TYPES = ("binomial", "geometric", "hybrid")
_GEO_SHAPES = ("linear", "fixed", "cyclic", "expdec")


@dataclass(frozen=True)
class TreeParams:
    """Complete description of a UTS tree.

    Parameters
    ----------
    name:
        Identifier used in reports and the experiment index.
    tree_type:
        ``"binomial"``, ``"geometric"`` or ``"hybrid"``.
    root_seed:
        Seed ``r`` of the root RNG state.
    b0:
        Root branching factor.  For geometric trees this is also the
        expected branching factor fed to the shape function.
    m, q:
        Binomial parameters: non-root nodes have ``m`` children with
        probability ``q``, else none.
    gen_mx:
        Depth limit for geometric (and the geometric phase of hybrid)
        trees; nodes at this depth are leaves.
    shape:
        Shape function of geometric trees: how the expected branching
        factor decays with depth (``linear``, ``fixed``, ``cyclic``,
        ``expdec``).
    shift:
        Hybrid trees: fraction of ``gen_mx`` below which generation is
        geometric, above which it is binomial.
    expected_size:
        Documented expected node count (for Table I style reporting);
        ``None`` when not published/derived.
    """

    name: str
    tree_type: str
    root_seed: int
    b0: int = 2000
    m: int = 2
    q: float = 0.2
    gen_mx: int = 6
    shape: str = "linear"
    shift: float = 0.5
    expected_size: float | None = None

    def __post_init__(self) -> None:
        if self.tree_type not in _TREE_TYPES:
            raise ConfigurationError(
                f"tree_type {self.tree_type!r} not in {_TREE_TYPES}"
            )
        if self.shape not in _GEO_SHAPES:
            raise ConfigurationError(f"shape {self.shape!r} not in {_GEO_SHAPES}")
        if self.b0 < 1:
            raise ConfigurationError(f"b0 must be >= 1, got {self.b0}")
        if self.m < 1:
            raise ConfigurationError(f"m must be >= 1, got {self.m}")
        if not 0.0 <= self.q <= 1.0:
            raise ConfigurationError(f"q must be in [0, 1], got {self.q}")
        if self.tree_type == "binomial" and self.m * self.q >= 1.0:
            raise ConfigurationError(
                f"binomial tree must be subcritical: m*q = {self.m * self.q} >= 1"
            )
        if self.gen_mx < 1:
            raise ConfigurationError(f"gen_mx must be >= 1, got {self.gen_mx}")
        if not 0.0 < self.shift <= 1.0:
            raise ConfigurationError(f"shift must be in (0, 1], got {self.shift}")

    @property
    def expected_subtree_size(self) -> float:
        """Expected size of the subtree below one root child (binomial)."""
        if self.tree_type != "binomial":
            raise ConfigurationError(
                "expected_subtree_size is defined for binomial trees only"
            )
        return 1.0 / (1.0 - self.m * self.q)

    @property
    def analytic_expected_size(self) -> float:
        """Analytic expected total size for binomial trees."""
        return 1.0 + self.b0 * self.expected_subtree_size


# ----------------------------------------------------------------------
# Paper trees (Table I).  Kept for documentation and for Table I
# regeneration; never traversed by the test/bench suites.
# ----------------------------------------------------------------------

#: Paper Table I, small-scale experiments (Fig 2): 2 793 220 501 nodes.
T3XXL = TreeParams(
    name="T3XXL",
    tree_type="binomial",
    root_seed=316,
    b0=2000,
    m=2,
    q=0.499995,
    expected_size=2_793_220_501,
)

#: Paper Table I, large-scale experiments (Fig 3+): 157 063 495 159 nodes.
T3WL = TreeParams(
    name="T3WL",
    tree_type="binomial",
    root_seed=559,
    b0=2000,
    m=2,
    q=0.4999995,
    expected_size=157_063_495_159,
)

# ----------------------------------------------------------------------
# Scaled stand-ins used by the reproduction (see DESIGN.md §2).
# expected analytic sizes: 1 + b0 / (1 - 2q)
# ----------------------------------------------------------------------

#: Tiny tree for unit tests: ~4e3 nodes expected.
T3XS = TreeParams(
    name="T3XS",
    tree_type="binomial",
    root_seed=316,
    b0=200,
    m=2,
    q=0.475,
    expected_size=4_001,
)

#: Small-scale stand-in for T3XXL (Fig 2 band, 8—128 ranks): ~8e4 nodes.
T3S = TreeParams(
    name="T3S",
    tree_type="binomial",
    root_seed=316,
    b0=2000,
    m=2,
    q=0.4875,
    expected_size=80_001,
)

#: Mid-size tree: ~3.2e5 nodes expected.
T3M = TreeParams(
    name="T3M",
    tree_type="binomial",
    root_seed=42,
    b0=2000,
    m=2,
    q=0.496875,
    expected_size=320_001,
)

#: Large-scale stand-in for T3WL (Fig 3+ band, 64—512 ranks): ~6.4e5
#: nodes expected.  The root fan-out is doubled relative to T3XXL so
#: the tree's average width (total nodes / depth, the available
#: parallelism) stays well above the simulated rank counts, the same
#: regime the paper's 1.57e11-node tree gave its 1024—8192 processes.
T3L = TreeParams(
    name="T3L",
    tree_type="binomial",
    root_seed=559,
    b0=4000,
    m=2,
    q=0.496875,
    expected_size=640_001,
)

#: Extra-large stand-in for deep sweeps: ~1.28e6 nodes expected.
T3XL = TreeParams(
    name="T3XL",
    tree_type="binomial",
    root_seed=559,
    b0=8000,
    m=2,
    q=0.496875,
    expected_size=1_280_001,
)

#: Huge tree for the sharded-engine band (4096+ ranks): ~2.56e7 nodes
#: expected, ~6e3 nodes per rank at 4096 — the work-per-rank regime the
#: 512-rank rungs could not reach (EXPERIMENTS.md "validity boundary").
T3H = TreeParams(
    name="T3H",
    tree_type="binomial",
    root_seed=559,
    b0=8000,
    m=2,
    q=0.49984375,
    expected_size=25_600_001,
)

#: Small geometric tree (UTS "GEO" family), linear shape.
GEO_S = TreeParams(
    name="GEO_S",
    tree_type="geometric",
    root_seed=29,
    b0=4,
    gen_mx=10,
    shape="linear",
)

#: Mid geometric tree, fixed shape.
GEO_M = TreeParams(
    name="GEO_M",
    tree_type="geometric",
    root_seed=7,
    b0=3,
    gen_mx=8,
    shape="fixed",
)

#: Large geometric tree (~1.3e5 nodes, depth 9): the shallow, wide
#: regime of the UTS GEO family — "billions of nodes with a depth in
#: the order of ten" at paper scale — the opposite balance profile of
#: the deep, spindly binomial trees the paper evaluates.
GEO_L = TreeParams(
    name="GEO_L",
    tree_type="geometric",
    root_seed=19,
    b0=4,
    gen_mx=9,
    shape="fixed",
)

#: Small hybrid tree: geometric top, binomial fringe.
HYB_S = TreeParams(
    name="HYB_S",
    tree_type="hybrid",
    root_seed=11,
    b0=4,
    m=2,
    q=0.45,
    gen_mx=8,
    shape="linear",
    shift=0.5,
)

#: Registry of all named trees.
TREES: dict[str, TreeParams] = {
    t.name: t
    for t in (
        T3XXL,
        T3WL,
        T3XS,
        T3S,
        T3M,
        T3L,
        T3XL,
        T3H,
        GEO_S,
        GEO_M,
        GEO_L,
        HYB_S,
    )
}


def tree_by_name(name: str) -> TreeParams:
    """Look up a named tree parameter set."""
    try:
        return TREES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown tree {name!r}; known: {sorted(TREES)}"
        ) from None
