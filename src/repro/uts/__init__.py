"""UTS (Unbalanced Tree Search) benchmark substrate.

This subpackage is a from-scratch Python implementation of the UTS
benchmark of Prins/Olivier et al.: an implicit, deterministic, heavily
unbalanced random tree whose parallel traversal requires dynamic load
balancing.  Each tree node carries a splittable RNG state from which
both its number of children and the children's states are derived, so
any process holding a node can generate its whole subtree without
communication.

Modules
-------
``rng``
    Splittable RNG backends (SHA-1 based, faithful to UTS; SplitMix64,
    vectorised and fast).
``params``
    Tree parameter sets, including the paper's T3XXL / T3WL trees and
    the scaled stand-ins used by the benchmarks.
``tree``
    Child-generation rules (binomial, geometric, hybrid), scalar and
    vectorised.
``stack``
    The chunked steal-stack with a private working chunk.
``sequential``
    Single-process traversal used as ground truth for node counts.
"""

from repro.uts.params import (
    TreeParams,
    TREES,
    tree_by_name,
    T3XXL,
    T3WL,
    T3XS,
    T3S,
    T3M,
    T3L,
    GEO_S,
    HYB_S,
)
from repro.uts.rng import RngBackend, Sha1Backend, SplitMix64Backend, backend_by_name
from repro.uts.tree import TreeGenerator
from repro.uts.stack import Chunk, ChunkedStack
from repro.uts.sequential import SequentialResult, sequential_count

__all__ = [
    "TreeParams",
    "TREES",
    "tree_by_name",
    "T3XXL",
    "T3WL",
    "T3XS",
    "T3S",
    "T3M",
    "T3L",
    "GEO_S",
    "HYB_S",
    "RngBackend",
    "Sha1Backend",
    "SplitMix64Backend",
    "backend_by_name",
    "TreeGenerator",
    "Chunk",
    "ChunkedStack",
    "SequentialResult",
    "sequential_count",
]
