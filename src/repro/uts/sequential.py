"""Single-process UTS traversal.

The sequential traversal serves three purposes:

* it is the *ground truth* for the distributed runs — the simulator's
  conservation tests assert that the sum of nodes processed across all
  ranks equals the sequential count for the same tree;
* it regenerates Table I (tree sizes and depths);
* its node-processing rate calibrates the single-process baseline used
  for speedup/efficiency, the same extrapolation the paper applies to
  T3WL ("all single MPI process executions, for the same type of
  generated trees, should have the same speed").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.uts.params import TreeParams
from repro.uts.rng import RngBackend
from repro.uts.tree import TreeGenerator

__all__ = ["SequentialResult", "sequential_count"]

#: Default runaway guard: abort a traversal past this many nodes.
DEFAULT_NODE_CAP = 50_000_000


@dataclass(frozen=True)
class SequentialResult:
    """Outcome of a sequential traversal."""

    total_nodes: int
    max_depth: int
    leaves: int

    @property
    def interior(self) -> int:
        return self.total_nodes - self.leaves


def sequential_count(
    params: TreeParams,
    backend: RngBackend | None = None,
    batch: int = 2048,
    node_cap: int = DEFAULT_NODE_CAP,
) -> SequentialResult:
    """Traverse the whole tree on one process and count it.

    Parameters
    ----------
    params:
        Tree to traverse.
    backend:
        RNG backend (defaults to SplitMix64).
    batch:
        Number of nodes expanded per vectorised step; affects speed
        only, never the result.
    node_cap:
        Hard limit guarding against a mis-parameterised (near-critical)
        tree running forever; exceeded -> :class:`ReproError`.
    """
    if batch < 1:
        raise ReproError(f"batch must be >= 1, got {batch}")
    gen = TreeGenerator(params, backend)
    root_state, root_depth = gen.root()
    stack_states: list[np.ndarray] = [np.array([root_state], dtype=np.uint64)]
    stack_depths: list[np.ndarray] = [np.array([root_depth], dtype=np.int32)]

    total = 0
    leaves = 0
    max_depth = 0
    while stack_states:
        states = stack_states.pop()
        depths = stack_depths.pop()
        if len(states) > batch:
            # Keep the overflow on the stack, expand only one batch.
            stack_states.append(states[batch:])
            stack_depths.append(depths[batch:])
            states = states[:batch]
            depths = depths[:batch]
        total += len(states)
        if total > node_cap:
            raise ReproError(
                f"traversal exceeded node cap {node_cap} for tree {params.name}"
            )
        max_depth = max(max_depth, int(depths.max()))
        child_states, child_depths, counts = gen.children_batch(states, depths)
        leaves += int((counts == 0).sum())
        if child_states.size:
            stack_states.append(child_states)
            stack_depths.append(child_depths)
    return SequentialResult(total_nodes=total, max_depth=max_depth, leaves=leaves)
