"""Chunked work stack with a private working chunk.

This mirrors the ``StealStack`` of the reference MPI UTS
implementation, as described in §II-A of the paper:

* work items (tree nodes) are managed in fixed-size *chunks* to
  amortise memory management and to set the steal granularity;
* the owner pushes and pops at the *top*; thieves remove whole chunks
  from the *bottom* (the oldest work, nearest the root, statistically
  the largest subtrees);
* the top chunk is always *private*: "if there is only one incomplete
  chunk in the stack of a process, no work can be stolen, as the first
  chunk is always considered private" — so a stack with ``k`` chunks
  has ``k - 1`` stealable chunks.

The structural invariant maintained throughout is that **every chunk
except the top one is full**: new chunks are only created when the top
chunk overflows, pops only drain the top, and steals only remove
bottom (full) chunks.  Tests assert this invariant under random
operation sequences.

Chunks store their nodes as plain Python lists.  The simulator expands
millions of quanta of a handful of nodes each, and at that granularity
list slicing beats ndarray round trips by a wide margin; the array API
(:meth:`ChunkedStack.push_batch` / :meth:`ChunkedStack.pop_batch`)
converts at the boundary, the list API
(:meth:`ChunkedStack.push_batch_list` /
:meth:`ChunkedStack.pop_batch_list`) never leaves Python.  Both APIs
produce identical stack layouts and identical node orderings.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StackError

__all__ = ["Chunk", "ChunkedStack"]


class Chunk:
    """A fixed-capacity block of tree nodes (states + depths).

    ``states``/``depths`` are Python lists whose length is always
    ``size``; the array-taking methods convert on entry and exit.
    """

    __slots__ = ("states", "depths", "size", "capacity")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise StackError(f"chunk capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.states: list[int] = []
        self.depths: list[int] = []
        self.size = 0

    @classmethod
    def from_arrays(cls, states: np.ndarray, depths: np.ndarray, capacity: int) -> "Chunk":
        """Build a chunk holding ``states``/``depths`` (must fit capacity)."""
        n = len(states)
        if n > capacity:
            raise StackError(f"{n} nodes exceed chunk capacity {capacity}")
        chunk = cls(capacity)
        chunk.states = np.asarray(states, dtype=np.uint64).tolist()
        chunk.depths = np.asarray(depths, dtype=np.int32).tolist()
        chunk.size = n
        return chunk

    @classmethod
    def from_lists(
        cls, states: list[int], depths: list[int], capacity: int
    ) -> "Chunk":
        """Adopt ready-made Python lists without ndarray round trips.

        The wire-codec decode path (:mod:`repro.sim.shardcodec`) builds
        chunks straight from buffer slices; the lists are adopted, not
        copied, so the caller must hand over ownership.
        """
        n = len(states)
        if n > capacity:
            raise StackError(f"{n} nodes exceed chunk capacity {capacity}")
        chunk = cls(capacity)
        chunk.states = states
        chunk.depths = depths
        chunk.size = n
        return chunk

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is Chunk
            and other.capacity == self.capacity
            and other.size == self.size
            and other.states == self.states
            and other.depths == self.depths
        )

    __hash__ = object.__hash__

    @property
    def is_full(self) -> bool:
        return self.size == self.capacity

    @property
    def is_empty(self) -> bool:
        return self.size == 0

    @property
    def free(self) -> int:
        return self.capacity - self.size

    def push(self, states: np.ndarray, depths: np.ndarray) -> int:
        """Append as many of the given nodes as fit; return how many."""
        n = min(len(states), self.free)
        if n:
            self.states.extend(np.asarray(states[:n], dtype=np.uint64).tolist())
            self.depths.extend(np.asarray(depths[:n], dtype=np.int32).tolist())
            self.size += n
        return n

    def pop(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Remove and return up to ``n`` nodes from the top of the chunk."""
        n = min(n, self.size)
        if n == 0:
            return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int32)
        self.size -= n
        s = self.states[-n:]
        d = self.depths[-n:]
        del self.states[-n:]
        del self.depths[-n:]
        return np.array(s, dtype=np.uint64), np.array(d, dtype=np.int32)

    def view(self) -> tuple[np.ndarray, np.ndarray]:
        """The live contents as arrays (copies; the chunk keeps lists)."""
        return (
            np.array(self.states, dtype=np.uint64),
            np.array(self.depths, dtype=np.int32),
        )

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Chunk(size={self.size}/{self.capacity})"


class ChunkedStack:
    """LIFO node stack for one worker, stealable in whole chunks.

    Parameters
    ----------
    chunk_size:
        Nodes per chunk — the steal granularity.  The paper (and this
        library's default config) uses 20.
    """

    def __init__(self, chunk_size: int):
        if chunk_size < 1:
            raise StackError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self._chunks: list[Chunk] = []
        # Lifetime accounting, used by conservation tests.
        self.total_pushed = 0
        self.total_popped = 0
        self.total_stolen_away = 0

    # ------------------------------------------------------------------
    # Size / introspection
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Total number of nodes currently held."""
        return sum(c.size for c in self._chunks)

    @property
    def num_chunks(self) -> int:
        return len(self._chunks)

    @property
    def is_empty(self) -> bool:
        return not self._chunks

    @property
    def stealable_chunks(self) -> int:
        """Chunks a thief may take: all but the private top chunk."""
        return max(0, len(self._chunks) - 1)

    def check_invariant(self) -> None:
        """Raise :class:`StackError` if a non-top chunk is not full."""
        for chunk in self._chunks[:-1]:
            if not chunk.is_full:
                raise StackError(
                    f"non-top chunk has {chunk.size}/{chunk.capacity} nodes"
                )
        if self._chunks and self._chunks[-1].is_empty:
            raise StackError("top chunk is empty but present")

    # ------------------------------------------------------------------
    # Owner operations (push/pop at the top)
    # ------------------------------------------------------------------

    def push_batch(self, states: np.ndarray, depths: np.ndarray) -> None:
        """Push nodes on top of the stack, spilling into new chunks."""
        states = np.asarray(states, dtype=np.uint64)
        depths = np.asarray(depths, dtype=np.int32)
        self.push_batch_list(states.tolist(), depths.tolist())

    def push_batch_list(self, states: list[int], depths: list[int]) -> None:
        """Push nodes held in plain Python lists (hot-path variant).

        Same spill behaviour and resulting chunk layout as
        :meth:`push_batch`, with no ndarray traffic.
        """
        n = len(states)
        if n == 0:
            return
        self.total_pushed += n
        chunks = self._chunks
        offset = 0
        if chunks:
            top = chunks[-1]
            free = top.capacity - top.size
            if free:
                if free >= n:
                    # Common case: the whole batch fits in the top chunk.
                    top.states += states
                    top.depths += depths
                    top.size += n
                    return
                top.states += states[:free]
                top.depths += depths[:free]
                top.size += free
                offset = free
        capacity = self.chunk_size
        while offset < n:
            take = min(capacity, n - offset)
            chunk = Chunk(capacity)
            chunk.states = states[offset : offset + take]
            chunk.depths = depths[offset : offset + take]
            chunk.size = take
            chunks.append(chunk)
            offset += take

    def pop_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Pop up to ``n`` nodes from the top of the stack."""
        states, depths = self.pop_batch_list(n)
        return (
            np.array(states, dtype=np.uint64),
            np.array(depths, dtype=np.int32),
        )

    def pop_batch_list(self, n: int) -> tuple[list[int], list[int]]:
        """Pop up to ``n`` nodes as plain Python lists (hot-path variant).

        Returns the same nodes in the same order as :meth:`pop_batch` —
        per drained chunk the popped segment keeps its in-chunk order,
        newest chunk first.
        """
        chunks = self._chunks
        if chunks:
            top = chunks[-1]
            if top.size > n > 0:
                # Common case: the top chunk covers the whole request.
                top.size -= n
                s = top.states[-n:]
                d = top.depths[-n:]
                del top.states[-n:]
                del top.depths[-n:]
                self.total_popped += n
                return s, d
        if n < 0:
            raise StackError(f"cannot pop {n} nodes")
        states: list[int] = []
        depths: list[int] = []
        remaining = n
        while remaining > 0 and chunks:
            top = chunks[-1]
            if remaining >= top.size:
                remaining -= top.size
                states += top.states
                depths += top.depths
                chunks.pop()
            else:
                top.size -= remaining
                states += top.states[-remaining:]
                depths += top.depths[-remaining:]
                del top.states[-remaining:]
                del top.depths[-remaining:]
                remaining = 0
        self.total_popped += len(states)
        return states, depths

    def expand_quantum(self, n: int, children_fn) -> int:
        """Pop up to ``n`` nodes, expand them, push the children.

        Exactly equivalent to ``pop_batch_list(n)`` + ``children_fn`` +
        ``push_batch_list(...)`` — one fused call for the simulator's
        per-quantum edge, with the single-top-chunk case (by far the
        most common at paper poll intervals) handled without any
        intermediate bookkeeping.  ``children_fn(states, depths)``
        must return ``(child_states, child_depths)`` lists.  Returns
        the number of nodes popped.
        """
        chunks = self._chunks
        if not chunks:
            return 0
        top = chunks[-1]
        if top.size > n > 0:
            top.size -= n
            ts = top.states
            td = top.depths
            states = ts[-n:]
            depths = td[-n:]
            del ts[-n:]
            del td[-n:]
            self.total_popped += n
            npop = n
        else:
            states, depths = self.pop_batch_list(n)
            npop = len(states)
        child_states, child_depths = children_fn(states, depths)
        nch = len(child_states)
        if nch:
            top = chunks[-1] if chunks else None
            if top is not None and top.capacity - top.size >= nch:
                top.states += child_states
                top.depths += child_depths
                top.size += nch
                self.total_pushed += nch
            else:
                self.push_batch_list(child_states, child_depths)
        return npop

    def expand_quanta(
        self,
        n: int,
        children_fn,
        t: float,
        t_stop: float,
        per_node_time: float,
    ) -> tuple[float, int, int]:
        """Run consecutive :meth:`expand_quantum` calls as one burst.

        The sharded engine's pure-compute fast path: the first quantum
        runs unconditionally (it corresponds to an already-popped EXEC
        event), each further quantum only while the stack still holds
        work and its start time is strictly below ``t_stop``.  ``t``
        advances by ``npop * per_node_time`` per quantum — exactly the
        arithmetic of the worker's EXEC handler, one quantum at a time,
        so the resulting node stream and timestamps are bit-identical
        to the event-by-event path.  Requires a non-empty stack.

        Returns ``(t, quanta, nodes)``: the start time of the next
        (un-run) quantum, how many quanta ran, and the nodes expanded.
        """
        chunks = self._chunks
        quanta = 0
        nodes = 0
        pop_list = self.pop_batch_list
        push_list = self.push_batch_list
        while True:
            # Inlined expand_quantum body (kept in lockstep with it;
            # the parity test in tests/uts drives both paths).
            top = chunks[-1]
            if top.size > n:
                top.size -= n
                ts = top.states
                td = top.depths
                states = ts[-n:]
                depths = td[-n:]
                del ts[-n:]
                del td[-n:]
                self.total_popped += n
                npop = n
            else:
                states, depths = pop_list(n)
                npop = len(states)
            child_states, child_depths = children_fn(states, depths)
            nch = len(child_states)
            if nch:
                top = chunks[-1] if chunks else None
                if top is not None and top.capacity - top.size >= nch:
                    top.states += child_states
                    top.depths += child_depths
                    top.size += nch
                    self.total_pushed += nch
                else:
                    push_list(child_states, child_depths)
            quanta += 1
            nodes += npop
            t += npop * per_node_time
            if not chunks or t >= t_stop:
                return t, quanta, nodes

    # ------------------------------------------------------------------
    # Thief operations (remove whole chunks from the bottom)
    # ------------------------------------------------------------------

    def steal_chunks(self, count: int) -> list[Chunk]:
        """Remove ``count`` chunks from the bottom of the stack.

        Raises :class:`StackError` if the request exceeds
        :attr:`stealable_chunks` — the steal *policy* must size the
        request; the stack only enforces the private-chunk rule.
        """
        if count < 0:
            raise StackError(f"cannot steal {count} chunks")
        if count > self.stealable_chunks:
            raise StackError(
                f"requested {count} chunks but only "
                f"{self.stealable_chunks} are stealable"
            )
        stolen = self._chunks[:count]
        del self._chunks[:count]
        self.total_stolen_away += sum(c.size for c in stolen)
        return stolen

    def receive_chunks(self, chunks: list[Chunk]) -> int:
        """Add stolen chunks to this (thief's) stack; return node count.

        The chunks arrive full (the stack invariant on the victim side
        guarantees it) and are placed below any existing chunks, so the
        thief's private chunk stays on top.
        """
        received = 0
        for chunk in chunks:
            if chunk.is_empty:
                raise StackError("received an empty chunk")
            if not chunk.is_full and self._chunks:
                raise StackError("received a partial chunk into a non-empty stack")
            received += chunk.size
        self._chunks[:0] = chunks
        self.total_pushed += received
        return received

    def drain(self) -> tuple[np.ndarray, np.ndarray]:
        """Remove and return everything (used by tests and shutdown)."""
        return self.pop_batch(self.size)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChunkedStack(chunks={self.num_chunks}, nodes={self.size}, "
            f"chunk_size={self.chunk_size})"
        )
