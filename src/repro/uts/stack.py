"""Chunked work stack with a private working chunk.

This mirrors the ``StealStack`` of the reference MPI UTS
implementation, as described in §II-A of the paper:

* work items (tree nodes) are managed in fixed-size *chunks* to
  amortise memory management and to set the steal granularity;
* the owner pushes and pops at the *top*; thieves remove whole chunks
  from the *bottom* (the oldest work, nearest the root, statistically
  the largest subtrees);
* the top chunk is always *private*: "if there is only one incomplete
  chunk in the stack of a process, no work can be stolen, as the first
  chunk is always considered private" — so a stack with ``k`` chunks
  has ``k - 1`` stealable chunks.

The structural invariant maintained throughout is that **every chunk
except the top one is full**: new chunks are only created when the top
chunk overflows, pops only drain the top, and steals only remove
bottom (full) chunks.  Tests assert this invariant under random
operation sequences.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StackError

__all__ = ["Chunk", "ChunkedStack"]


class Chunk:
    """A fixed-capacity block of tree nodes (states + depths)."""

    __slots__ = ("states", "depths", "size", "capacity")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise StackError(f"chunk capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.states = np.empty(capacity, dtype=np.uint64)
        self.depths = np.empty(capacity, dtype=np.int32)
        self.size = 0

    @classmethod
    def from_arrays(cls, states: np.ndarray, depths: np.ndarray, capacity: int) -> "Chunk":
        """Build a chunk holding ``states``/``depths`` (must fit capacity)."""
        n = len(states)
        if n > capacity:
            raise StackError(f"{n} nodes exceed chunk capacity {capacity}")
        chunk = cls(capacity)
        chunk.states[:n] = states
        chunk.depths[:n] = depths
        chunk.size = n
        return chunk

    @property
    def is_full(self) -> bool:
        return self.size == self.capacity

    @property
    def is_empty(self) -> bool:
        return self.size == 0

    @property
    def free(self) -> int:
        return self.capacity - self.size

    def push(self, states: np.ndarray, depths: np.ndarray) -> int:
        """Append as many of the given nodes as fit; return how many."""
        n = min(len(states), self.free)
        if n:
            self.states[self.size : self.size + n] = states[:n]
            self.depths[self.size : self.size + n] = depths[:n]
            self.size += n
        return n

    def pop(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Remove and return up to ``n`` nodes from the top of the chunk."""
        n = min(n, self.size)
        self.size -= n
        lo, hi = self.size, self.size + n
        return self.states[lo:hi].copy(), self.depths[lo:hi].copy()

    def view(self) -> tuple[np.ndarray, np.ndarray]:
        """Read-only views of the live portion (no copy)."""
        return self.states[: self.size], self.depths[: self.size]

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Chunk(size={self.size}/{self.capacity})"


class ChunkedStack:
    """LIFO node stack for one worker, stealable in whole chunks.

    Parameters
    ----------
    chunk_size:
        Nodes per chunk — the steal granularity.  The paper (and this
        library's default config) uses 20.
    """

    def __init__(self, chunk_size: int):
        if chunk_size < 1:
            raise StackError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self._chunks: list[Chunk] = []
        # Lifetime accounting, used by conservation tests.
        self.total_pushed = 0
        self.total_popped = 0
        self.total_stolen_away = 0

    # ------------------------------------------------------------------
    # Size / introspection
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Total number of nodes currently held."""
        return sum(c.size for c in self._chunks)

    @property
    def num_chunks(self) -> int:
        return len(self._chunks)

    @property
    def is_empty(self) -> bool:
        return not self._chunks

    @property
    def stealable_chunks(self) -> int:
        """Chunks a thief may take: all but the private top chunk."""
        return max(0, len(self._chunks) - 1)

    def check_invariant(self) -> None:
        """Raise :class:`StackError` if a non-top chunk is not full."""
        for chunk in self._chunks[:-1]:
            if not chunk.is_full:
                raise StackError(
                    f"non-top chunk has {chunk.size}/{chunk.capacity} nodes"
                )
        if self._chunks and self._chunks[-1].is_empty:
            raise StackError("top chunk is empty but present")

    # ------------------------------------------------------------------
    # Owner operations (push/pop at the top)
    # ------------------------------------------------------------------

    def push_batch(self, states: np.ndarray, depths: np.ndarray) -> None:
        """Push nodes on top of the stack, spilling into new chunks."""
        states = np.asarray(states, dtype=np.uint64)
        depths = np.asarray(depths, dtype=np.int32)
        n = len(states)
        if n == 0:
            return
        self.total_pushed += n
        offset = 0
        if self._chunks and not self._chunks[-1].is_full:
            offset = self._chunks[-1].push(states, depths)
        while offset < n:
            take = min(self.chunk_size, n - offset)
            self._chunks.append(
                Chunk.from_arrays(
                    states[offset : offset + take],
                    depths[offset : offset + take],
                    self.chunk_size,
                )
            )
            offset += take

    def pop_batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Pop up to ``n`` nodes from the top of the stack."""
        if n < 0:
            raise StackError(f"cannot pop {n} nodes")
        out_states: list[np.ndarray] = []
        out_depths: list[np.ndarray] = []
        remaining = n
        while remaining > 0 and self._chunks:
            top = self._chunks[-1]
            s, d = top.pop(remaining)
            out_states.append(s)
            out_depths.append(d)
            remaining -= len(s)
            if top.is_empty:
                self._chunks.pop()
        if not out_states:
            return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int32)
        states = np.concatenate(out_states)
        depths = np.concatenate(out_depths)
        self.total_popped += len(states)
        return states, depths

    # ------------------------------------------------------------------
    # Thief operations (remove whole chunks from the bottom)
    # ------------------------------------------------------------------

    def steal_chunks(self, count: int) -> list[Chunk]:
        """Remove ``count`` chunks from the bottom of the stack.

        Raises :class:`StackError` if the request exceeds
        :attr:`stealable_chunks` — the steal *policy* must size the
        request; the stack only enforces the private-chunk rule.
        """
        if count < 0:
            raise StackError(f"cannot steal {count} chunks")
        if count > self.stealable_chunks:
            raise StackError(
                f"requested {count} chunks but only "
                f"{self.stealable_chunks} are stealable"
            )
        stolen = self._chunks[:count]
        del self._chunks[:count]
        self.total_stolen_away += sum(c.size for c in stolen)
        return stolen

    def receive_chunks(self, chunks: list[Chunk]) -> int:
        """Add stolen chunks to this (thief's) stack; return node count.

        The chunks arrive full (the stack invariant on the victim side
        guarantees it) and are placed below any existing chunks, so the
        thief's private chunk stays on top.
        """
        received = 0
        for chunk in chunks:
            if chunk.is_empty:
                raise StackError("received an empty chunk")
            if not chunk.is_full and self._chunks:
                raise StackError("received a partial chunk into a non-empty stack")
            received += chunk.size
        self._chunks[:0] = chunks
        self.total_pushed += received
        return received

    def drain(self) -> tuple[np.ndarray, np.ndarray]:
        """Remove and return everything (used by tests and shutdown)."""
        return self.pop_batch(self.size)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChunkedStack(chunks={self.num_chunks}, nodes={self.size}, "
            f"chunk_size={self.chunk_size})"
        )
