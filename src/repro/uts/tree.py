"""Child generation rules for UTS trees.

The generator is stateless: given a node's ``(rng_state, depth)`` it
answers *how many children does this node have* and *what are their
states*.  Everything else (traversal order, who expands which node) is
the scheduler's business, which is exactly what lets work stealing
move nodes between processes freely.

Two code paths are provided and tested against each other:

* a scalar path (:meth:`TreeGenerator.count_children`,
  :meth:`TreeGenerator.children`) — the readable reference;
* a vectorised path (:meth:`TreeGenerator.children_batch`) that expands
  a whole batch of nodes with NumPy array operations — the hot path of
  the simulator, following the HPC guide rule that per-node Python
  loops must be vectorised away.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.uts.params import TreeParams
from repro.uts.rng import _GOLDEN, UINT31_MAX, RngBackend, SplitMix64Backend

__all__ = ["MAX_GEO_CHILDREN", "TreeGenerator"]

#: Safety cap on geometric child counts (UTS uses MAXNUMCHILDREN=100).
MAX_GEO_CHILDREN = 100

#: Batches at or below this size expand through the scalar fast path.
SCALAR_BATCH_CUTOFF = 64

_TWO_PI = 2.0 * math.pi


class TreeGenerator:
    """Deterministic child generation for one tree parameter set.

    Parameters
    ----------
    params:
        The tree description (type, seed, branching parameters).
    backend:
        Splittable RNG backend; defaults to the fast
        :class:`~repro.uts.rng.SplitMix64Backend`.
    """

    def __init__(self, params: TreeParams, backend: RngBackend | None = None):
        self.params = params
        self.backend = backend if backend is not None else SplitMix64Backend()
        # Precompute the 31-bit binomial threshold once; comparing
        # integer draws against it avoids float conversion per node.
        self._bin_threshold = int(params.q * UINT31_MAX)
        self._geo_depth_limit = params.gen_mx
        self._hybrid_switch = params.shift * params.gen_mx
        # The simulator expands millions of tiny batches; for binomial
        # trees over the SplitMix backend a fused array path cuts the
        # per-batch NumPy call count roughly in half.
        self._fast_binomial = params.tree_type == "binomial" and isinstance(
            self.backend, SplitMix64Backend
        )
        # Precomputed SplitMix spawn increments ((i+1) * GOLDEN mod
        # 2^64 for sibling i) so the scalar hot loop adds a cached
        # 64-bit constant instead of multiplying big ints per child.
        if self._fast_binomial:
            mask64 = 0xFFFFFFFFFFFFFFFF
            self._incs_m: tuple[int, ...] = tuple(
                (i * _GOLDEN) & mask64 for i in range(1, params.m + 1)
            )
        else:
            self._incs_m = ()
        self._incs_b0: tuple[int, ...] | None = None

    # ------------------------------------------------------------------
    # Root
    # ------------------------------------------------------------------

    def root(self) -> tuple[int, int]:
        """Return ``(state, depth)`` of the tree root."""
        return self.backend.root_state(self.params.root_seed), 0

    # ------------------------------------------------------------------
    # Scalar reference path
    # ------------------------------------------------------------------

    def count_children(self, state: int, depth: int) -> int:
        """Number of children of the node ``(state, depth)``."""
        kind = self.params.tree_type
        if kind == "binomial":
            return self._count_binomial(state, depth)
        if kind == "geometric":
            return self._count_geometric(state, depth)
        # hybrid: geometric in the upper part of the tree, binomial fringe
        if depth < self._hybrid_switch:
            return self._count_geometric(state, depth)
        return self._count_binomial(state, depth)

    def _count_binomial(self, state: int, depth: int) -> int:
        if depth == 0:
            return self.params.b0
        draw = self.backend.to_uint31(state)
        return self.params.m if draw < self._bin_threshold else 0

    def _expected_branching(self, depth: int) -> float:
        """Shape function: expected branching factor at ``depth`` (geometric)."""
        p = self.params
        if depth >= p.gen_mx:
            return 0.0
        if p.shape == "fixed":
            return float(p.b0)
        if p.shape == "linear":
            return p.b0 * (1.0 - depth / p.gen_mx)
        if p.shape == "expdec":
            alpha = math.log(max(p.b0, 2)) / p.gen_mx
            return p.b0 * math.exp(-alpha * depth)
        if p.shape == "cyclic":
            if depth > 5 * p.gen_mx:
                return 0.0
            return float(p.b0) ** math.sin(_TWO_PI * depth / p.gen_mx)
        raise ConfigurationError(f"unknown geometric shape {p.shape!r}")

    def _count_geometric(self, state: int, depth: int) -> int:
        b_i = self._expected_branching(depth)
        if b_i <= 0.0:
            return 0
        # Geometric distribution with mean b_i: success probability
        # p = 1/(1+b_i), count = floor(log(1-u)/log(1-p)).
        prob = 1.0 / (1.0 + b_i)
        u = self.backend.to_prob(state)
        count = int(math.floor(math.log(1.0 - u) / math.log(1.0 - prob)))
        return min(count, MAX_GEO_CHILDREN)

    def children(self, state: int, depth: int) -> tuple[list[int], int]:
        """Return ``(child_states, child_depth)`` of one node (scalar path)."""
        count = self.count_children(state, depth)
        spawn = self.backend.spawn
        return [spawn(state, i) for i in range(count)], depth + 1

    # ------------------------------------------------------------------
    # List fast path (simulator hot loop)
    # ------------------------------------------------------------------

    @property
    def supports_list_path(self) -> bool:
        """Whether :meth:`children_list` may be used for this tree.

        True for binomial trees over the SplitMix backend — the
        combination every paper experiment uses.
        """
        return self._fast_binomial

    def children_list(
        self, states: list[int], depths: list[int]
    ) -> tuple[list[int], list[int]]:
        """Expand nodes held in plain Python lists (hot-path variant).

        Produces exactly the children :meth:`children_batch` would —
        same values, parent-major order, siblings ``0..count-1`` —
        without any ndarray traffic.  Only valid when
        :attr:`supports_list_path` is true; handles the depth-0 root
        (``b0`` children) as well as interior nodes.
        """
        thr = self._bin_threshold
        mask64 = 0xFFFFFFFFFFFFFFFF
        m1 = 0xBF58476D1CE4E5B9
        m2 = 0x94D049BB133111EB
        incs_m = self._incs_m
        child_states: list[int] = []
        child_depths: list[int] = []
        append_s = child_states.append
        append_d = child_depths.append
        for s, dep in zip(states, depths):
            if dep:
                if (s >> 33) >= thr:
                    continue
                incs = incs_m
            else:
                incs = self._root_incs()
            d = dep + 1
            for inc in incs:
                # Inlined SplitMix64 spawn: add increment, Stafford mix.
                z = (s + inc) & mask64
                z = ((z ^ (z >> 30)) * m1) & mask64
                z = ((z ^ (z >> 27)) * m2) & mask64
                append_s(z ^ (z >> 31))
                append_d(d)
        return child_states, child_depths

    def _root_incs(self) -> tuple[int, ...]:
        """Spawn increments for the ``b0`` root children (built lazily)."""
        incs = self._incs_b0
        if incs is None:
            mask64 = 0xFFFFFFFFFFFFFFFF
            incs = tuple(
                (i * _GOLDEN) & mask64 for i in range(1, self.params.b0 + 1)
            )
            self._incs_b0 = incs
        return incs

    # ------------------------------------------------------------------
    # Vectorised batch path
    # ------------------------------------------------------------------

    def count_children_batch(self, states: np.ndarray, depths: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`count_children` over matching arrays."""
        states = np.asarray(states, dtype=np.uint64)
        depths = np.asarray(depths, dtype=np.int32)
        kind = self.params.tree_type
        if kind == "binomial":
            return self._count_binomial_batch(states, depths)
        if kind == "geometric":
            return self._count_geometric_batch(states, depths)
        geo_mask = depths < self._hybrid_switch
        counts = self._count_binomial_batch(states, depths)
        if geo_mask.any():
            counts[geo_mask] = self._count_geometric_batch(
                states[geo_mask], depths[geo_mask]
            )
        return counts

    def _count_binomial_batch(
        self, states: np.ndarray, depths: np.ndarray
    ) -> np.ndarray:
        draws = self.backend.to_uint31_array(states)
        counts = np.where(draws < self._bin_threshold, self.params.m, 0).astype(
            np.int64
        )
        counts[depths == 0] = self.params.b0
        return counts

    def _count_geometric_batch(
        self, states: np.ndarray, depths: np.ndarray
    ) -> np.ndarray:
        # The shape function is cheap; evaluate it per distinct depth
        # (a batch rarely spans more than a handful of depths).
        counts = np.zeros(states.shape[0], dtype=np.int64)
        draws = self.backend.to_uint31_array(states).astype(np.float64) / UINT31_MAX
        for depth in np.unique(depths):
            b_i = self._expected_branching(int(depth))
            mask = depths == depth
            if b_i <= 0.0:
                continue
            prob = 1.0 / (1.0 + b_i)
            log1mp = math.log(1.0 - prob)
            vals = np.floor(np.log1p(-draws[mask]) / log1mp).astype(np.int64)
            counts[mask] = np.minimum(vals, MAX_GEO_CHILDREN)
        return counts

    def children_batch(
        self, states: np.ndarray, depths: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expand a batch of nodes at once.

        Returns
        -------
        child_states : uint64 array
            States of all children, grouped by parent (parent order
            preserved, sibling order ``0..count-1`` within a parent).
        child_depths : int32 array
            Depth of each child.
        counts : int64 array
            Per-parent child counts (same length as ``states``).
        """
        states = np.asarray(states, dtype=np.uint64)
        depths = np.asarray(depths, dtype=np.int32)
        if self._fast_binomial and states.size and depths.min() > 0:
            # Non-root binomial batches (the root is always expanded on
            # its own at depth 0, never mixed into a batch).
            return self._children_batch_binomial(states, depths)
        counts = self.count_children_batch(states, depths)
        total = int(counts.sum())
        if total == 0:
            return (
                np.empty(0, dtype=np.uint64),
                np.empty(0, dtype=np.int32),
                counts,
            )
        parent_states = np.repeat(states, counts)
        parent_depths = np.repeat(depths, counts)
        # Sibling index within each parent: arange(total) minus each
        # child's parent's starting offset.
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        sibling = np.arange(total, dtype=np.uint64) - np.repeat(
            starts.astype(np.uint64), counts
        )
        child_states = self.backend.spawn_array(parent_states, sibling)
        child_depths = (parent_depths + 1).astype(np.int32)
        return child_states, child_depths, counts

    def _children_batch_binomial(
        self, states: np.ndarray, depths: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fused non-root binomial expansion (SplitMix backend only).

        Produces bit-identical children, in the same per-parent
        grouping, as the generic path — asserted by tests.  Batches at
        or below :data:`SCALAR_BATCH_CUTOFF` take a pure-Python loop:
        NumPy's fixed per-call overhead dwarfs the arithmetic on the
        ~10-node quanta the simulator expands.
        """
        from repro.uts.rng import _GOLDEN, _mix64  # local import: hot path

        n = states.size
        if n <= SCALAR_BATCH_CUTOFF:
            return self._children_small_binomial(states, depths)
        u64 = np.uint64
        m = self.params.m
        draws = (states >> u64(33)).astype(np.int64)
        mask = draws < self._bin_threshold
        counts = np.where(mask, m, 0).astype(np.int64)
        parents = states[mask]
        if not parents.size:
            return (
                np.empty(0, dtype=np.uint64),
                np.empty(0, dtype=np.int32),
                counts,
            )
        with np.errstate(over="ignore"):
            siblings = [
                _mix64(parents + u64((i + 1) * _GOLDEN & 0xFFFFFFFFFFFFFFFF))
                for i in range(m)
            ]
        child_states = np.stack(siblings, axis=1).ravel()
        child_depths = np.repeat((depths[mask] + 1).astype(np.int32), m)
        return child_states, child_depths, counts

    def _children_small_binomial(
        self, states: np.ndarray, depths: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Scalar expansion of a small non-root binomial batch.

        The SplitMix arithmetic is inlined (add increment, Stafford
        mix) so the loop body is pure int ops — bit-identical to the
        array path.
        """
        from repro.uts.rng import _GOLDEN

        thr = self._bin_threshold
        m = self.params.m
        mask64 = 0xFFFFFFFFFFFFFFFF
        counts = np.zeros(states.size, dtype=np.int64)
        child_states: list[int] = []
        child_depths: list[int] = []
        st = states.tolist()
        dp = depths.tolist()
        for k in range(len(st)):
            s = st[k]
            if (s >> 33) < thr:
                counts[k] = m
                d = dp[k] + 1
                for i in range(1, m + 1):
                    z = (s + i * _GOLDEN) & mask64
                    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask64
                    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask64
                    child_states.append(z ^ (z >> 31))
                    child_depths.append(d)
        return (
            np.array(child_states, dtype=np.uint64),
            np.array(child_depths, dtype=np.int32),
            counts,
        )
