"""Splittable random number generators for implicit tree generation.

UTS derives the whole tree from a single root seed: every node owns an
RNG *state*, its children's states are obtained by hashing
``(parent_state, child_index)``, and the node's own randomness (how
many children it has) is extracted from its state.  This makes the tree
a pure function of the parameters — every process can expand any node
it holds, with no communication and no coordination.

Two backends are provided:

:class:`Sha1Backend`
    Faithful to the reference UTS, which uses SHA-1 as the splitting
    hash.  States are 64-bit truncations of SHA-1 digests.  Scalar only
    (hashlib cannot be vectorised), so it is the *fidelity* backend:
    used in tests and small runs to pin down determinism.

:class:`SplitMix64Backend`
    A SplitMix64-style mixing function over uint64, fully vectorised
    with NumPy.  This is the *speed* backend used by the large
    simulation sweeps; per the HPC guides, the hot loop (millions of
    node expansions) must be array code, not Python-level hashing.

Both backends map ``uint64 state -> uint64 child state`` and extract a
31-bit uniform integer from a state, mirroring the 31-bit values the
reference UTS extracts from its SHA-1 digests.
"""

from __future__ import annotations

import hashlib
import struct
from abc import ABC, abstractmethod

import numpy as np

from repro.core.registry import registry_for
from repro.errors import ConfigurationError

__all__ = [
    "UINT31_MAX",
    "RngBackend",
    "Sha1Backend",
    "SplitMix64Backend",
    "backend_by_name",
]

#: Exclusive upper bound of the 31-bit uniform draws (matches UTS).
UINT31_MAX = 1 << 31

_U64 = np.uint64
_GOLDEN = 0x9E3779B97F4A7C15  # 2^64 / phi, the SplitMix64 increment
_SHA1_PAIR = struct.Struct(">QI")  # (parent_state, child_index) payload


class RngBackend(ABC):
    """Interface of a splittable RNG over 64-bit states.

    All methods are pure: the same inputs always produce the same
    outputs, on any platform, which is what makes UTS trees portable.
    """

    #: Short identifier used in configs and reports.
    name: str = "abstract"

    @abstractmethod
    def root_state(self, seed: int) -> int:
        """Return the state of the tree root for an integer ``seed``."""

    @abstractmethod
    def spawn(self, state: int, index: int) -> int:
        """Return the state of child ``index`` of a node with ``state``."""

    def to_uint31(self, state: int) -> int:
        """Extract a uniform integer in ``[0, 2**31)`` from ``state``.

        The top bits of the mixed state are used; for both backends the
        state is already the output of a strong mixing step.
        """
        return int(state) >> 33

    def to_prob(self, state: int) -> float:
        """Extract a uniform float in ``[0, 1)`` from ``state``."""
        return self.to_uint31(state) / UINT31_MAX

    # ------------------------------------------------------------------
    # Vectorised API.  The default implementations fall back to Python
    # loops so every backend is usable everywhere; fast backends
    # override them with array code.
    # ------------------------------------------------------------------

    def spawn_array(self, states: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`spawn` over matching arrays of states/indices."""
        states = np.asarray(states, dtype=np.uint64)
        indices = np.asarray(indices, dtype=np.uint64)
        if states.shape != indices.shape:
            raise ConfigurationError(
                f"states shape {states.shape} != indices shape {indices.shape}"
            )
        out = np.empty_like(states)
        flat_s = states.ravel()
        flat_i = indices.ravel()
        flat_o = out.ravel()
        for k in range(flat_s.size):
            flat_o[k] = self.spawn(int(flat_s[k]), int(flat_i[k]))
        return out

    def to_uint31_array(self, states: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`to_uint31`."""
        states = np.asarray(states, dtype=np.uint64)
        return (states >> _U64(33)).astype(np.int64)


class Sha1Backend(RngBackend):
    """SHA-1 splittable RNG, the hash family used by the reference UTS.

    A node state is the first 8 bytes (big-endian) of a SHA-1 digest.
    Spawning child ``i`` hashes the 8-byte parent state concatenated
    with the 4-byte child index, exactly one compression-function call
    per node, like UTS.
    """

    name = "sha1"

    def root_state(self, seed: int) -> int:
        digest = hashlib.sha1(struct.pack(">q", seed)).digest()
        return int.from_bytes(digest[:8], "big")

    def spawn(self, state: int, index: int) -> int:
        payload = _SHA1_PAIR.pack(state & 0xFFFFFFFFFFFFFFFF, index & 0xFFFFFFFF)
        digest = hashlib.sha1(payload).digest()
        return int.from_bytes(digest[:8], "big")

    def spawn_array(self, states: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Batched :meth:`spawn` without per-element boxing overhead.

        SHA-1 itself cannot be vectorised, but hoisting the struct
        packer, the hash constructor and the int conversion out of the
        loop — and iterating plain Python ints instead of NumPy
        scalars — makes batch spawning several times faster than the
        generic fallback while remaining bit-identical to it.
        """
        states = np.asarray(states, dtype=np.uint64)
        indices = np.asarray(indices, dtype=np.uint64)
        if states.shape != indices.shape:
            raise ConfigurationError(
                f"states shape {states.shape} != indices shape {indices.shape}"
            )
        pack = _SHA1_PAIR.pack
        sha1 = hashlib.sha1
        from_bytes = int.from_bytes
        out = [
            from_bytes(sha1(pack(s, i & 0xFFFFFFFF)).digest()[:8], "big")
            for s, i in zip(states.ravel().tolist(), indices.ravel().tolist())
        ]
        return np.array(out, dtype=np.uint64).reshape(states.shape)


def _mix64(z: np.ndarray) -> np.ndarray:
    """SplitMix64 finaliser (Stafford variant 13) over a uint64 array."""
    with np.errstate(over="ignore"):
        z = (z ^ (z >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> _U64(27))) * _U64(0x94D049BB133111EB)
        return z ^ (z >> _U64(31))


def _mix64_scalar(z: int) -> int:
    mask = 0xFFFFFFFFFFFFFFFF
    z &= mask
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask
    return z ^ (z >> 31)


class SplitMix64Backend(RngBackend):
    """SplitMix64-style splittable RNG, vectorised over NumPy arrays.

    Child states are ``mix64(parent + (index + 1) * GOLDEN)``: the
    golden-ratio increment decorrelates sibling indices and the
    finaliser provides avalanche, the same construction SplitMix64 uses
    for its output stream.  Roughly 100x faster than the SHA-1 backend
    when driven through :meth:`spawn_array`.
    """

    name = "splitmix64"

    def root_state(self, seed: int) -> int:
        return _mix64_scalar((seed & 0xFFFFFFFFFFFFFFFF) ^ 0xA076_1D64_78BD_642F)

    def spawn(self, state: int, index: int) -> int:
        mask = 0xFFFFFFFFFFFFFFFF
        z = (state + (index + 1) * _GOLDEN) & mask
        return _mix64_scalar(z)

    def spawn_array(self, states: np.ndarray, indices: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=np.uint64)
        indices = np.asarray(indices, dtype=np.uint64)
        if states.shape != indices.shape:
            raise ConfigurationError(
                f"states shape {states.shape} != indices shape {indices.shape}"
            )
        with np.errstate(over="ignore"):
            z = states + (indices + _U64(1)) * _U64(_GOLDEN)
            return _mix64(z)


_BACKENDS = registry_for("rng_backend")
_BACKENDS.register(Sha1Backend.name, Sha1Backend)
_BACKENDS.register(SplitMix64Backend.name, SplitMix64Backend)


def backend_by_name(name: str) -> RngBackend:
    """Instantiate an RNG backend by its :attr:`RngBackend.name`.

    Thin wrapper over ``registry.resolve("rng_backend", name)``.
    """
    return _BACKENDS.resolve(name)  # type: ignore[return-value]
