"""Chrome-trace (Perfetto) export of a traced run.

Emits the JSON object format of the Trace Event spec — the one both
``chrome://tracing`` and https://ui.perfetto.dev load directly:

* one thread lane per rank, with ``X`` (complete) slices for the
  active/searching phases from the activity trace;
* ``s``/``t``/``f`` flow events drawing each steal attempt as an
  arrow: thief request -> victim serve/deny -> thief reply;
* ``i`` (instant) marks for victim draws, lifeline transitions and
  the termination wave;
* a ``C`` (counter) track of the active-worker count — the paper's
  ``workers(t)`` rendered natively by the viewer.

Timestamps are converted from simulation seconds to the spec's
microseconds.  :func:`validate_chrome_trace` is the structural
validator CI runs over exported files.
"""

from __future__ import annotations

import json

from repro.core.tracing import ActivityTrace
from repro.errors import TraceError
from repro.trace.events import (
    EV_DENY,
    EV_FINISH,
    EV_FORWARD_SERVE,
    EV_LIFELINE_PUSH,
    EV_LIFELINE_QUIESCE,
    EV_LIFELINE_WAKE,
    EV_PUSH_RECV,
    EV_SERVE,
    EV_STEAL_FAIL,
    EV_STEAL_FORWARD,
    EV_STEAL_OK,
    EV_STEAL_SENT,
    EV_VICTIM_DRAW,
    EVENT_NAMES,
    EventTrace,
)

__all__ = ["chrome_trace", "write_chrome_trace", "validate_chrome_trace"]

_US = 1e6  # seconds -> microseconds

#: Instant-mark styling: etype -> (name, category).
_INSTANTS = {
    EV_VICTIM_DRAW: ("victim_draw", "steal"),
    EV_LIFELINE_QUIESCE: ("lifeline_quiesce", "lifeline"),
    EV_LIFELINE_WAKE: ("lifeline_wake", "lifeline"),
    EV_LIFELINE_PUSH: ("lifeline_push", "lifeline"),
    EV_PUSH_RECV: ("push_recv", "lifeline"),
    EV_FINISH: ("finish", "termination"),
}


def chrome_trace(
    events: EventTrace,
    activity: ActivityTrace | None = None,
    *,
    total_time: float | None = None,
    label: str = "work stealing",
) -> dict:
    """Build the Chrome-trace JSON object for one run.

    Parameters
    ----------
    events:
        Validated structured event trace.
    activity:
        Optional activity trace; adds the per-rank active/search lanes
        and the ``workers(t)`` counter track.
    total_time:
        Run duration; closes the trailing activity slice of ranks that
        were still active at termination.
    label:
        Process name shown in the viewer.
    """
    te: list[dict] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": label},
        }
    ]
    for rank in range(events.nranks):
        te.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "name": "thread_name",
                "args": {"name": f"rank {rank}"},
            }
        )

    if activity is not None:
        _activity_slices(te, activity, total_time)
        _worker_counter(te, activity)

    _steal_flows(te, events)
    _instants(te, events)

    return {
        "traceEvents": te,
        "displayTimeUnit": "ms",
        "otherData": {
            "ranks": events.nranks,
            "events": len(events),
            "dropped": sum(events.dropped),
            "total_time_s": total_time,
        },
    }


def _activity_slices(
    te: list[dict], activity: ActivityTrace, total_time: float | None
) -> None:
    for rank, (times, states) in enumerate(activity.transitions):
        start: float | None = None
        for t, active in zip(times, states):
            if active:
                start = float(t)
            elif start is not None:
                te.append(
                    {
                        "ph": "X",
                        "name": "active",
                        "cat": "activity",
                        "pid": 0,
                        "tid": rank,
                        "ts": start * _US,
                        "dur": (float(t) - start) * _US,
                    }
                )
                start = None
        if start is not None and total_time is not None:
            te.append(
                {
                    "ph": "X",
                    "name": "active",
                    "cat": "activity",
                    "pid": 0,
                    "tid": rank,
                    "ts": start * _US,
                    "dur": max(0.0, total_time - start) * _US,
                }
            )


def _worker_counter(te: list[dict], activity: ActivityTrace) -> None:
    times, counts = activity.active_count_curve()
    for t, c in zip(times, counts):
        te.append(
            {
                "ph": "C",
                "name": "active workers",
                "pid": 0,
                "ts": float(t) * _US,
                "args": {"active": int(c)},
            }
        )


def _steal_flows(te: list[dict], events: EventTrace) -> None:
    """One flow (arrow chain) per steal attempt.

    The protocol allows one outstanding request per thief, so walking
    the merged stream with a per-thief open-flow table pairs every
    victim-side serve/deny and thief-side reply with its request.
    Forward relays and forward serves join the same flow — a chained
    attempt renders as one arrow threading every rank it visited.
    """
    flow_id = 0
    open_flow: dict[int, int] = {}  # thief -> flow id
    for t, rank, etype, a, b in events.merged():
        ts = t * _US
        if etype == EV_STEAL_SENT:
            flow_id += 1
            open_flow[rank] = flow_id
            te.append(
                {
                    "ph": "s",
                    "name": "steal",
                    "cat": "steal",
                    "id": flow_id,
                    "pid": 0,
                    "tid": rank,
                    "ts": ts,
                }
            )
        elif etype in (EV_SERVE, EV_DENY):
            fid = open_flow.get(a)
            if fid is not None:
                te.append(
                    {
                        "ph": "t",
                        "name": "steal",
                        "cat": "steal",
                        "id": fid,
                        "pid": 0,
                        "tid": rank,
                        "ts": ts,
                        "args": {
                            "thief": a,
                            **({"nodes": b} if etype == EV_SERVE else {}),
                        },
                    }
                )
        elif etype == EV_STEAL_FORWARD:
            # Relay at `rank` toward `a` of the request thief `b` opened.
            fid = open_flow.get(b)
            if fid is not None:
                te.append(
                    {
                        "ph": "t",
                        "name": "steal",
                        "cat": "steal",
                        "id": fid,
                        "pid": 0,
                        "tid": rank,
                        "ts": ts,
                        "args": {"thief": b, "forwarded_to": a},
                    }
                )
        elif etype == EV_FORWARD_SERVE:
            # Serve of a forwarded request from thief `a`.
            fid = open_flow.get(a)
            if fid is not None:
                te.append(
                    {
                        "ph": "t",
                        "name": "steal",
                        "cat": "steal",
                        "id": fid,
                        "pid": 0,
                        "tid": rank,
                        "ts": ts,
                        "args": {"thief": a, "nodes": b, "forwarded": True},
                    }
                )
        elif etype in (EV_STEAL_OK, EV_STEAL_FAIL):
            fid = open_flow.pop(rank, None)
            if fid is not None:
                te.append(
                    {
                        "ph": "f",
                        "bp": "e",
                        "name": "steal",
                        "cat": "steal",
                        "id": fid,
                        "pid": 0,
                        "tid": rank,
                        "ts": ts,
                        "args": {
                            "victim": a,
                            "outcome": EVENT_NAMES[etype],
                            **({"nodes": b} if etype == EV_STEAL_OK else {}),
                        },
                    }
                )


def _instants(te: list[dict], events: EventTrace) -> None:
    for rank, evs in enumerate(events.ranks):
        for t, etype, a, b in evs:
            style = _INSTANTS.get(etype)
            if style is None:
                continue
            name, cat = style
            te.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": name,
                    "cat": cat,
                    "pid": 0,
                    "tid": rank,
                    "ts": t * _US,
                    "args": {"a": a, "b": b},
                }
            )


def write_chrome_trace(path, data: dict) -> None:
    """Write an exported trace object as JSON."""
    with open(path, "w") as fh:
        json.dump(data, fh, separators=(",", ":"))
        fh.write("\n")


# ----------------------------------------------------------------------
# Structural validation (the CI trace-smoke contract)
# ----------------------------------------------------------------------

_KNOWN_PH = {"M", "X", "i", "s", "t", "f", "C", "B", "E"}


def validate_chrome_trace(data: dict) -> int:
    """Structurally validate a Chrome-trace object; returns event count.

    Checks the invariants Perfetto's importer relies on — raises
    :class:`~repro.errors.TraceError` on the first violation:

    * top level is an object with a ``traceEvents`` list;
    * every event is an object with a known ``ph`` and a ``name``;
    * non-metadata events carry a finite numeric ``ts >= 0``;
    * ``X`` slices carry ``dur >= 0``; flow events carry an ``id``;
    * ``pid``/``tid`` are integers where present.
    """
    if not isinstance(data, dict):
        raise TraceError(f"trace must be a JSON object, got {type(data).__name__}")
    te = data.get("traceEvents")
    if not isinstance(te, list):
        raise TraceError("trace is missing the 'traceEvents' list")
    for i, ev in enumerate(te):
        if not isinstance(ev, dict):
            raise TraceError(f"traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        if ph not in _KNOWN_PH:
            raise TraceError(f"traceEvents[{i}]: unknown phase {ph!r}")
        if not isinstance(ev.get("name"), str):
            raise TraceError(f"traceEvents[{i}]: missing event name")
        for key in ("pid", "tid"):
            if key in ev and not isinstance(ev[key], int):
                raise TraceError(
                    f"traceEvents[{i}]: {key} must be an int, "
                    f"got {ev[key]!r}"
                )
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts != ts or ts < 0:
            raise TraceError(f"traceEvents[{i}]: bad timestamp {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur != dur or dur < 0:
                raise TraceError(f"traceEvents[{i}]: bad duration {dur!r}")
        if ph in ("s", "t", "f") and "id" not in ev:
            raise TraceError(f"traceEvents[{i}]: flow event without id")
    return len(te)
