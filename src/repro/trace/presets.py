"""Representative traced configs for the benchmark experiments.

``python -m repro.trace --config fig02`` (and ``python -m repro.bench
fig02 --trace``) need *one* run to draw, while the experiments are
whole sweeps — so each preset picks the sweep point that best shows
the figure's scheduling story (the paper's interesting regime, not its
cheapest corner) and applies the shared benchmark calibration.

Every preset is returned with ``trace=True`` (activity lanes) and
``event_trace=True`` (steal arrows); both are observability-only and
do not change the run's physics or its fingerprint.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_config
from repro.core.config import WorkStealingConfig
from repro.errors import ConfigurationError

__all__ = ["TRACE_PRESETS", "preset_config", "available_presets"]

#: preset id -> (kwargs for experiment_config, description).
TRACE_PRESETS: dict[str, tuple[dict, str]] = {
    "smoke": (
        dict(tree="T3XS", nranks=8, selector="reference"),
        "tiny CI smoke run (T3XS, 8 ranks, reference)",
    ),
    "fig02": (
        dict(tree="T3M", nranks=32, selector="reference"),
        "Fig 2 band: reference selector, small scale (T3M, 32 ranks)",
    ),
    "fig03": (
        dict(tree="T3L", nranks=128, selector="reference"),
        "Fig 3 band: reference selector at scale (T3L, 128 ranks)",
    ),
    "fig06": (
        dict(tree="T3L", nranks=128, selector="rand"),
        "Fig 6 band: uniform random selection (T3L, 128 ranks)",
    ),
    "fig09": (
        dict(tree="T3L", nranks=128, selector="tofu"),
        "Fig 9 band: distance-skewed Tofu selection (T3L, 128 ranks)",
    ),
    "fig11": (
        dict(tree="T3L", nranks=128, selector="tofu", steal_policy="half"),
        "Fig 11 band: Tofu + steal-half (T3L, 128 ranks)",
    ),
    "lifeline": (
        dict(tree="T3M", nranks=32, selector="rand", lifelines=2),
        "lifeline extension: quiesce/wake traffic (T3M, 32 ranks)",
    ),
}


def available_presets() -> list[str]:
    return list(TRACE_PRESETS)


def preset_config(name: str, **overrides) -> WorkStealingConfig:
    """Build the traced config for a preset id.

    ``overrides`` are forwarded to
    :func:`~repro.bench.experiments.experiment_config` on top of the
    preset (e.g. ``nranks=64``, ``seed=3``); tracing flags are forced
    on last so a preset is always drawable.
    """
    try:
        kwargs, _desc = TRACE_PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown trace preset {name!r}; "
            f"available: {available_presets()}"
        ) from None
    merged = dict(kwargs)
    merged.update(overrides)
    merged["trace"] = True
    merged["event_trace"] = True
    return experiment_config(**merged)
