"""CLI: run one traced experiment and export its Chrome trace.

Usage::

    python -m repro.trace --config fig02
    python -m repro.trace --config fig09 --ranks 64 --out fig09.trace.json
    python -m repro.trace --config smoke --check     # CI smoke + validation
    python -m repro.trace --list

Open the emitted JSON at https://ui.perfetto.dev (or
``chrome://tracing``): one lane per rank, ``active`` slices for the
busy phases, arrows for every steal attempt, and an ``active
workers`` counter track.  A text summary of the steal statistics is
printed to stdout.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError
from repro.sim.cluster import Cluster
from repro.trace.analysis import TraceAnalysis
from repro.trace.chrome import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.trace.presets import TRACE_PRESETS, preset_config
from repro.ws.results import RunResult


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Run a traced experiment and emit a Perfetto JSON trace.",
    )
    parser.add_argument(
        "--config",
        metavar="PRESET",
        help="traced experiment preset (see --list)",
    )
    parser.add_argument("--list", action="store_true", help="list presets")
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="output JSON path (default: <preset>.trace.json)",
    )
    parser.add_argument(
        "--ranks", type=int, default=None, help="override the preset's nranks"
    )
    parser.add_argument(
        "--tree", default=None, help="override the preset's tree (e.g. T3S)"
    )
    parser.add_argument(
        "--selector", default=None, help="override the victim selector"
    )
    parser.add_argument(
        "--steal-policy", default=None, help="override the steal policy"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the run seed"
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=None,
        metavar="N",
        help="per-rank event ring-buffer capacity (default: unbounded)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-read the emitted JSON and validate it structurally",
    )
    args = parser.parse_args(argv)

    if args.list or not args.config:
        for key, (_kwargs, desc) in TRACE_PRESETS.items():
            print(f"  {key:10s} {desc}")
        return 0

    overrides = {}
    if args.ranks is not None:
        overrides["nranks"] = args.ranks
    if args.tree is not None:
        overrides["tree"] = args.tree
    if args.selector is not None:
        overrides["selector"] = args.selector
    if args.steal_policy is not None:
        overrides["steal_policy"] = args.steal_policy
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.capacity is not None:
        overrides["event_trace_capacity"] = args.capacity

    try:
        cfg = preset_config(args.config, **overrides)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(f"running {cfg.label()} ...", file=sys.stderr)
    outcome = Cluster(cfg).run()
    result = RunResult.from_outcome(outcome)
    events = result.events
    assert events is not None  # event_trace is forced on by the preset

    analysis = TraceAnalysis(events, placement=outcome.placement)
    data = chrome_trace(
        events,
        result.trace,
        total_time=result.total_time,
        label=cfg.label(),
    )
    out = args.out or f"{args.config}.trace.json"
    write_chrome_trace(out, data)

    print(analysis.summary())
    print(f"[trace] wrote {out} ({len(data['traceEvents'])} trace events)", file=sys.stderr)
    print("[trace] open it at https://ui.perfetto.dev", file=sys.stderr)

    if args.check:
        with open(out) as fh:
            n = validate_chrome_trace(json.load(fh))
        print(f"[trace] validation ok: {n} events", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
