"""Structured steal-event tracing for the work-stealing simulator.

The activity traces of :mod:`repro.core.tracing` record *that* a rank
was busy; this package records *why* — every victim draw, steal
request, reply, denial, lifeline transition and termination-wave step,
with enough provenance to reconstruct the scheduler's decisions after
the fact.

Layers:

* :mod:`repro.trace.events` — the live :class:`EventRecorder` ring
  buffers (attached by the cluster when ``event_trace=True``) and the
  validated :class:`EventTrace` view;
* :mod:`repro.trace.analysis` — :class:`TraceAnalysis`: steal-success
  rates, reply-latency distributions, victim-draw distances,
  failed-attempt chains;
* :mod:`repro.trace.chrome` — Chrome-trace / Perfetto JSON export and
  the structural validator CI runs;
* ``python -m repro.trace`` — run a preset experiment traced and emit
  the JSON plus a text summary.

Tracing is observationally free: it never changes the simulation's
event stream, results, or config fingerprints (the ``event_trace``
flag is excluded from fingerprinting).
"""

from __future__ import annotations

from repro.trace.analysis import TraceAnalysis
from repro.trace.chrome import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.trace.events import (
    EVENT_NAMES,
    EVENT_SCHEMA,
    EventRecorder,
    EventTrace,
)

__all__ = [
    "EventRecorder",
    "EventTrace",
    "EVENT_NAMES",
    "EVENT_SCHEMA",
    "TraceAnalysis",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "run_traced",
]


def run_traced(config=None, **config_kwargs):
    """Run one simulation with full tracing and return its result.

    Convenience wrapper over :func:`repro.ws.runner.run_uts`: forces
    ``trace=True`` and ``event_trace=True`` (via ``config.replace`` on
    a prebuilt config) and returns the :class:`~repro.ws.results.RunResult`,
    whose ``events`` attribute holds the validated
    :class:`EventTrace` and ``trace`` the activity trace.
    """
    # Deferred import: repro.ws pulls in the whole sim stack, which
    # itself imports repro.trace.events for the recorder types.
    from repro.ws.runner import run_uts

    if config is not None:
        config = config.replace(trace=True, event_trace=True)
        return run_uts(config)
    config_kwargs["trace"] = True
    config_kwargs["event_trace"] = True
    return run_uts(**config_kwargs)
