"""Post-mortem analysis of a structured event trace.

:class:`TraceAnalysis` turns the raw per-rank event streams into the
quantities the paper reasons about but never shows directly:

* per-rank steal-success rates (which ranks fed the job, which
  starved);
* in-flight reply latencies — request posted to reply received, the
  distribution Gast et al. (arXiv:1805.00857) identify as the hidden
  cost of distributed stealing;
* victim-draw distance distributions — how far the configured selector
  actually reached, the observable behind the paper's Tofu argument;
* failed-attempt chains — run lengths of consecutive failed steals,
  the starvation signature of §V.

The analysis is pure post-processing: it never touches the simulator
and accepts any validated :class:`~repro.trace.events.EventTrace`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.trace.events import (
    EV_DENY,
    EV_FORWARD_SERVE,
    EV_LIFELINE_PUSH,
    EV_LIFELINE_WAKE,
    EV_PUSH_RECV,
    EV_SERVE,
    EV_STEAL_FAIL,
    EV_STEAL_FORWARD,
    EV_STEAL_OK,
    EV_STEAL_SENT,
    EV_VICTIM_DRAW,
    EventTrace,
)

__all__ = ["TraceAnalysis"]


class TraceAnalysis:
    """Derived steal statistics of one traced run."""

    def __init__(self, events: EventTrace, placement=None):
        self.events = events
        self.nranks = events.nranks
        #: Optional :class:`~repro.net.allocation.Placement`; enables
        #: the distance views (draw distances need coordinates).
        self.placement = placement

    # ------------------------------------------------------------------
    # Per-rank counters (the differential-test surface: these must
    # agree with the counters the workers aggregate into RunResult)
    # ------------------------------------------------------------------

    def per_rank_counts(self, etype: int) -> np.ndarray:
        return np.array(
            [self.events.count(etype, rank) for rank in range(self.nranks)],
            dtype=np.int64,
        )

    @property
    def steal_requests(self) -> int:
        return self.events.count(EV_STEAL_SENT)

    @property
    def failed_steals(self) -> int:
        return self.events.count(EV_STEAL_FAIL)

    @property
    def successful_steals(self) -> int:
        return self.events.count(EV_STEAL_OK)

    @property
    def requests_served(self) -> int:
        """Serves of any kind: direct requests plus forwarded ones."""
        return self.events.count(EV_SERVE) + self.events.count(
            EV_FORWARD_SERVE
        )

    @property
    def requests_denied(self) -> int:
        return self.events.count(EV_DENY)

    @property
    def forwarded_requests(self) -> int:
        """Steal requests relayed onward instead of answered."""
        return self.events.count(EV_STEAL_FORWARD)

    @property
    def forwards_served(self) -> int:
        """Forwarded requests that ended in a serve (chain succeeded)."""
        return self.events.count(EV_FORWARD_SERVE)

    @property
    def nodes_received(self) -> int:
        """Nodes that arrived via steals *and* lifeline push merges."""
        return sum(
            ev[3]
            for evs in self.events.ranks
            for ev in evs
            if ev[1] in (EV_STEAL_OK, EV_PUSH_RECV)
        )

    @property
    def nodes_sent(self) -> int:
        return sum(
            ev[3]
            for evs in self.events.ranks
            for ev in evs
            if ev[1] in (EV_SERVE, EV_LIFELINE_PUSH, EV_FORWARD_SERVE)
        )

    def steal_success_rate(self, rank: int | None = None) -> float:
        """Successes over completed attempts (NaN when no attempts)."""
        ok = self.events.count(EV_STEAL_OK, rank)
        fail = self.events.count(EV_STEAL_FAIL, rank)
        total = ok + fail
        return ok / total if total else float("nan")

    def per_rank_success_rates(self) -> np.ndarray:
        return np.array(
            [self.steal_success_rate(r) for r in range(self.nranks)]
        )

    # ------------------------------------------------------------------
    # Reply latency
    # ------------------------------------------------------------------

    def reply_latencies(self) -> np.ndarray:
        """In-flight latency of every completed steal attempt.

        The protocol keeps exactly one outstanding request per thief,
        so each ``steal_sent`` pairs with the next ``steal_ok`` /
        ``steal_fail`` on the same rank.  A trailing unmatched request
        (cut off by termination) is ignored.  A quiescent rank woken by
        a lifeline push receives work with *no* outstanding request —
        the preceding ``lifeline_wake`` marks that, and the wake's
        ``steal_ok`` carries no request latency.  On a rank whose ring
        buffer dropped events the stream is known-truncated and may
        open with replies whose requests were overwritten; those are
        skipped.  Any other reply with no matching request is a
        malformed stream and raises
        :class:`~repro.errors.TraceError`.
        """
        latencies: list[float] = []
        for rank, evs in enumerate(self.events.ranks):
            truncated = bool(self.events.dropped[rank])
            sent_at: float | None = None
            woken = False
            for t, etype, _a, _b in evs:
                if etype == EV_STEAL_SENT:
                    if sent_at is not None:
                        raise TraceError(
                            f"rank {rank}: overlapping steal requests at "
                            f"{sent_at} and {t}"
                        )
                    sent_at = t
                elif etype == EV_LIFELINE_WAKE:
                    woken = True
                elif etype in (EV_STEAL_OK, EV_STEAL_FAIL):
                    if sent_at is not None:
                        latencies.append(t - sent_at)
                        sent_at = None
                    elif (etype == EV_STEAL_OK and woken) or truncated:
                        pass  # push-wake delivery / truncated stream
                    else:
                        raise TraceError(
                            f"rank {rank}: steal reply at {t} with no "
                            "outstanding request"
                        )
                    woken = False
        return np.asarray(latencies, dtype=np.float64)

    def latency_histogram(
        self, bins: int = 20
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(counts, edges)`` histogram of reply latencies."""
        lat = self.reply_latencies()
        if not lat.size:
            return np.zeros(bins, dtype=np.int64), np.linspace(0, 1, bins + 1)
        return np.histogram(lat, bins=bins)

    # ------------------------------------------------------------------
    # Victim-draw distances
    # ------------------------------------------------------------------

    def draw_distances(self) -> np.ndarray:
        """Euclidean distance of every victim draw (needs a placement)."""
        if self.placement is None:
            raise TraceError(
                "draw distances need a Placement; construct the analysis "
                "with TraceAnalysis(events, placement=...)"
            )
        euclid = self.placement.euclidean
        out: list[float] = []
        for rank, evs in enumerate(self.events.ranks):
            row = None
            for _t, etype, victim, _b in evs:
                if etype == EV_VICTIM_DRAW:
                    if row is None:
                        row = euclid.row(rank)
                    out.append(float(row[victim]))
        return np.asarray(out, dtype=np.float64)

    def distance_distribution(
        self, bins: int = 10
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(counts, edges)`` histogram of victim-draw distances."""
        d = self.draw_distances()
        if not d.size:
            return np.zeros(bins, dtype=np.int64), np.linspace(0, 1, bins + 1)
        return np.histogram(d, bins=bins)

    # ------------------------------------------------------------------
    # Forwarding chains
    # ------------------------------------------------------------------

    def request_chain_lengths(self) -> np.ndarray:
        """Forward-hop count of every completed steal attempt.

        Walks the merged stream pairing each thief's outstanding
        request (one at a time per thief, as in
        :meth:`reply_latencies`) with the ``steal_forward`` relays that
        carry its originating thief in ``b``.  A directly-answered
        request contributes 0; a request relayed twice before a serve
        or terminal deny contributes 2.  Relays for a thief with no
        visible open request (ring-buffer truncation) are ignored, as
        is a trailing attempt cut off by termination.
        """
        lengths: list[int] = []
        hops: dict[int, int] = {}  # thief -> forwards so far
        for _t, rank, etype, _a, b in self.events.merged():
            if etype == EV_STEAL_SENT:
                hops[rank] = 0
            elif etype == EV_STEAL_FORWARD:
                if b in hops:
                    hops[b] += 1
            elif etype in (EV_STEAL_OK, EV_STEAL_FAIL):
                n = hops.pop(rank, None)
                if n is not None:
                    lengths.append(n)
        return np.asarray(lengths, dtype=np.int64)

    # ------------------------------------------------------------------
    # Failed-attempt chains
    # ------------------------------------------------------------------

    def failed_chains(self) -> list[int]:
        """Lengths of maximal runs of consecutive failed steals.

        One entry per run, across all ranks; a run ends at a
        successful steal or at the end of the rank's stream (a rank
        that failed until termination still contributes its chain).
        """
        chains: list[int] = []
        for evs in self.events.ranks:
            run = 0
            for _t, etype, _a, _b in evs:
                if etype == EV_STEAL_FAIL:
                    run += 1
                elif etype == EV_STEAL_OK:
                    if run:
                        chains.append(run)
                    run = 0
            if run:
                chains.append(run)
        return chains

    # ------------------------------------------------------------------

    def summary(self) -> str:
        """Multi-line human-readable digest (the CLI's text output)."""
        lines = [
            f"ranks: {self.nranks}, events: {len(self.events)}"
            + (
                f" ({sum(self.events.dropped)} dropped by ring buffers)"
                if any(self.events.dropped)
                else ""
            ),
            f"steal requests: {self.steal_requests} "
            f"(ok {self.successful_steals}, failed {self.failed_steals}, "
            f"success rate {self.steal_success_rate():.3f})",
            f"victim side: served {self.requests_served}, "
            f"denied {self.requests_denied}",
        ]
        if self.forwarded_requests:
            chains = self.request_chain_lengths()
            fwd = chains[chains > 0]
            lines.append(
                f"forwarding: {self.forwarded_requests} relays, "
                f"{self.forwards_served} forward serves"
                + (
                    f", chain length mean {fwd.mean():.1f} "
                    f"max {fwd.max()}"
                    if fwd.size
                    else ""
                )
            )
        lines += [
            f"nodes moved: {self.nodes_sent} sent / "
            f"{self.nodes_received} received",
        ]
        lat = self.reply_latencies()
        if lat.size:
            lines.append(
                "reply latency: "
                f"mean {lat.mean() * 1e6:.2f}us, "
                f"p50 {np.percentile(lat, 50) * 1e6:.2f}us, "
                f"p99 {np.percentile(lat, 99) * 1e6:.2f}us, "
                f"max {lat.max() * 1e6:.2f}us"
            )
        chains = self.failed_chains()
        if chains:
            arr = np.asarray(chains)
            lines.append(
                f"failed-attempt chains: {len(chains)} "
                f"(mean {arr.mean():.1f}, max {arr.max()})"
            )
        if self.placement is not None:
            d = self.draw_distances()
            if d.size:
                lines.append(
                    f"victim draw distance: mean {d.mean():.2f}, "
                    f"max {d.max():.2f}"
                )
        return "\n".join(lines)
