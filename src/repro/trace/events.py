"""Typed steal-event streams of the simulated scheduler.

The activity trace (:mod:`repro.core.tracing`) answers *when* a rank
had work; this module answers *why*.  Every edge of the steal protocol
— victim draws, requests, replies, denials, lifeline traffic, the
termination wave — is logged as one fixed-shape tuple, cheap enough to
leave compiled into the workers (recording is two attribute loads and
a method call per protocol edge, and protocol edges are orders of
magnitude rarer than node expansions).

:class:`EventRecorder` is the live, per-rank sink: an append-only ring
buffer of ``(time, etype, a, b)`` tuples.  ``a``/``b`` are small
integers whose meaning depends on ``etype`` (see :data:`EVENT_SCHEMA`).
:class:`EventTrace` is the validated post-mortem view the analysis and
exporters operate on.

Timestamps are *true* simulation time (not the skewed per-rank clocks
the activity trace uses): event streams exist to diagnose the
scheduler, and matching requests to replies across ranks needs one
coherent clock.
"""

from __future__ import annotations

import math

from repro.errors import TraceError

__all__ = [
    "EV_VICTIM_DRAW",
    "EV_STEAL_SENT",
    "EV_STEAL_FAIL",
    "EV_STEAL_OK",
    "EV_SERVE",
    "EV_DENY",
    "EV_LIFELINE_QUIESCE",
    "EV_LIFELINE_WAKE",
    "EV_LIFELINE_PUSH",
    "EV_PUSH_RECV",
    "EV_TOKEN",
    "EV_FINISH",
    "EV_STEAL_FORWARD",
    "EV_FORWARD_SERVE",
    "EVENT_NAMES",
    "EVENT_SCHEMA",
    "EventRecorder",
    "EventTrace",
]

# ----------------------------------------------------------------------
# Event types.  One integer per protocol edge; the ``a``/``b`` slots
# are documented in EVENT_SCHEMA and rendered into EXPERIMENTS.md.
# ----------------------------------------------------------------------

#: Thief drew a victim from its selector.  a=victim, b=attempt number
#: within the current work-discovery session (1-based).
EV_VICTIM_DRAW = 0
#: Thief posted a steal request.  a=victim.
EV_STEAL_SENT = 1
#: Thief received an empty reply (failed steal).  a=victim.
EV_STEAL_FAIL = 2
#: Thief received work.  a=victim, b=nodes received.
EV_STEAL_OK = 3
#: Victim packaged and sent work.  a=thief, b=nodes sent.
EV_SERVE = 4
#: Victim denied a request (no stealable work, or idle).  a=thief.
EV_DENY = 5
#: Rank quiesced onto its lifelines (lifeline extension).
EV_LIFELINE_QUIESCE = 6
#: Quiescent rank woken by a work push.  a=victim that woke it.
EV_LIFELINE_WAKE = 7
#: Rank pushed work to an armed lifeline.  a=thief, b=nodes pushed.
EV_LIFELINE_PUSH = 8
#: Work push merged while already RUNNING (push/steal race).
#: a=victim, b=nodes merged.
EV_PUSH_RECV = 9
#: Termination token arrived at this rank.  a=color (0 white, 1 black).
EV_TOKEN = 10
#: Finish broadcast delivered to this rank.
EV_FINISH = 11
#: Rank relayed a steal request instead of denying it (forwarding
#: extension).  a=rank forwarded to, b=originating thief.
EV_STEAL_FORWARD = 12
#: Rank served a *forwarded* request; work flows straight to the
#: originator.  a=originating thief, b=nodes sent.
EV_FORWARD_SERVE = 13

EVENT_NAMES = {
    EV_VICTIM_DRAW: "victim_draw",
    EV_STEAL_SENT: "steal_sent",
    EV_STEAL_FAIL: "steal_fail",
    EV_STEAL_OK: "steal_ok",
    EV_SERVE: "serve",
    EV_DENY: "deny",
    EV_LIFELINE_QUIESCE: "lifeline_quiesce",
    EV_LIFELINE_WAKE: "lifeline_wake",
    EV_LIFELINE_PUSH: "lifeline_push",
    EV_PUSH_RECV: "push_recv",
    EV_TOKEN: "token",
    EV_FINISH: "finish",
    EV_STEAL_FORWARD: "steal_forward",
    EV_FORWARD_SERVE: "forward_serve",
}

#: ``etype -> (meaning of a, meaning of b)`` — the documented schema.
EVENT_SCHEMA = {
    EV_VICTIM_DRAW: ("victim rank", "session attempt number"),
    EV_STEAL_SENT: ("victim rank", "-"),
    EV_STEAL_FAIL: ("victim rank", "-"),
    EV_STEAL_OK: ("victim rank", "nodes received"),
    EV_SERVE: ("thief rank", "nodes sent"),
    EV_DENY: ("thief rank", "-"),
    EV_LIFELINE_QUIESCE: ("-", "-"),
    EV_LIFELINE_WAKE: ("waking victim rank", "-"),
    EV_LIFELINE_PUSH: ("thief rank", "nodes pushed"),
    EV_PUSH_RECV: ("victim rank", "nodes merged"),
    EV_TOKEN: ("token color (0 white, 1 black)", "-"),
    EV_FINISH: ("-", "-"),
    EV_STEAL_FORWARD: ("rank forwarded to", "originating thief rank"),
    EV_FORWARD_SERVE: ("originating thief rank", "nodes sent"),
}


class EventRecorder:
    """Per-rank ring buffer of ``(time, etype, a, b)`` event tuples.

    Appends are the only hot operation and stay O(1): below
    ``capacity`` the buffer grows; at capacity the oldest event is
    overwritten in place and :attr:`dropped` counts the loss.
    ``capacity=0`` (the default) means unbounded.

    Like :class:`~repro.core.tracing.TraceRecorder`, the recorder
    enforces nothing while recording; :meth:`EventTrace.from_recorders`
    validates post-mortem.
    """

    __slots__ = ("_buf", "_capacity", "_head", "dropped")

    def __init__(self, capacity: int = 0) -> None:
        if capacity < 0:
            raise TraceError(f"capacity must be >= 0, got {capacity}")
        self._buf: list[tuple[float, int, int, int]] = []
        self._capacity = capacity
        self._head = 0  # next overwrite slot once the ring is full
        self.dropped = 0

    def append(self, time: float, etype: int, a: int = 0, b: int = 0) -> None:
        """Log one event (hot path: no validation)."""
        buf = self._buf
        cap = self._capacity
        if cap and len(buf) >= cap:
            buf[self._head] = (time, etype, a, b)
            self._head = (self._head + 1) % cap
            self.dropped += 1
        else:
            buf.append((time, etype, a, b))

    @property
    def capacity(self) -> int:
        return self._capacity

    def events(self) -> list[tuple[float, int, int, int]]:
        """Events in chronological order (unrolls the ring)."""
        if self._head:
            return self._buf[self._head :] + self._buf[: self._head]
        return list(self._buf)

    def __len__(self) -> int:
        return len(self._buf)


class EventTrace:
    """Validated per-rank event streams of a whole run.

    Validation mirrors the activity-trace contract (and the same
    :class:`~repro.errors.TraceError` discipline): per-rank timestamps
    must be finite and non-decreasing — the event queue delivers in
    time order, so a violation means a recorder was fed garbage — and
    every event type must be known.
    """

    __slots__ = ("ranks", "nranks", "dropped")

    def __init__(
        self,
        ranks: list[list[tuple[float, int, int, int]]],
        dropped: list[int] | None = None,
    ):
        if not ranks:
            raise TraceError("event trace must cover at least one rank")
        self.ranks: list[list[tuple[float, int, int, int]]] = []
        for rank, events in enumerate(ranks):
            prev = -math.inf
            for i, ev in enumerate(events):
                if len(ev) != 4:
                    raise TraceError(
                        f"rank {rank} event {i}: expected a 4-tuple, got {ev!r}"
                    )
                time, etype, _a, _b = ev
                if not math.isfinite(time):
                    raise TraceError(
                        f"rank {rank} event {i}: non-finite timestamp {time!r}"
                    )
                if time < prev:
                    raise TraceError(
                        f"rank {rank} event {i}: timestamp {time} out of "
                        f"order (previous {prev})"
                    )
                prev = time
                if etype not in EVENT_NAMES:
                    raise TraceError(
                        f"rank {rank} event {i}: unknown event type {etype!r}"
                    )
            self.ranks.append(list(events))
        self.nranks = len(self.ranks)
        self.dropped = list(dropped) if dropped is not None else [0] * self.nranks

    @classmethod
    def from_recorders(cls, recorders: list[EventRecorder]) -> "EventTrace":
        """Assemble and validate a trace from live recorders.

        Recorders log in *causal* order, which can locally interleave
        timestamps: a victim that advanced its clock packaging work may
        afterwards handle a message that arrived mid-quantum (the DES
        answers arrivals at their arrival time).  Each rank's stream is
        therefore stable-sorted into chronological order here — a
        deterministic normalisation, so identical runs still produce
        byte-identical traces.
        """
        return cls(
            [sorted(r.events(), key=lambda ev: ev[0]) for r in recorders],
            [r.dropped for r in recorders],
        )

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(r) for r in self.ranks)

    def count(self, etype: int, rank: int | None = None) -> int:
        """Number of events of ``etype`` (for one rank or the run)."""
        ranks = self.ranks if rank is None else [self.ranks[rank]]
        return sum(1 for evs in ranks for ev in evs if ev[1] == etype)

    def merged(self) -> list[tuple[float, int, int, int, int]]:
        """All events as ``(time, rank, etype, a, b)``, time-sorted.

        The sort is stable with rank as tie-breaker, so the merged
        stream is deterministic for deterministic runs.
        """
        out = [
            (t, rank, etype, a, b)
            for rank, evs in enumerate(self.ranks)
            for (t, etype, a, b) in evs
        ]
        out.sort(key=lambda ev: (ev[0], ev[1]))
        return out

    def canonical_bytes(self) -> bytes:
        """Deterministic byte encoding of the whole stream.

        ``repr`` of floats is exact (shortest round-trip), so two runs
        produce identical bytes iff every event matches bit-for-bit —
        the golden-determinism contract of the test suite.
        """
        lines = []
        for rank, evs in enumerate(self.ranks):
            for t, etype, a, b in evs:
                lines.append(f"{rank}:{t!r}:{etype}:{a}:{b}")
        return "\n".join(lines).encode("ascii")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventTrace(nranks={self.nranks}, events={len(self)})"
