"""Deterministic config fingerprinting.

A fingerprint is the SHA-256 hash of the canonical JSON encoding of a
config's :meth:`~repro.core.config.WorkStealingConfig.to_dict` — keys
sorted, compact separators, UTF-8.  Two configs share a fingerprint iff
they describe the same simulation; because every seed lives inside the
config, a fingerprint also pins down the run's exact results.

The fingerprint is the key of batch deduplication in
:func:`repro.exec.run_many` and of the on-disk result cache
(:mod:`repro.exec.cache`).  Cache invalidation on version bumps happens
at the cache layer (results live under a per-version directory), so
fingerprints themselves stay stable across releases.
"""

from __future__ import annotations

import hashlib
import json

from repro.core.config import (
    FINGERPRINT_DEFAULT_ELIDED,
    FINGERPRINT_EXCLUDED_FIELDS,
    WorkStealingConfig,
)
from repro.errors import ConfigurationError

__all__ = ["canonical_json", "config_fingerprint", "fingerprint_dict"]

_MISSING = object()


def canonical_json(data: dict) -> str:
    """Canonical (sorted-key, compact, ASCII-safe) JSON encoding."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def fingerprint_dict(data: dict) -> str:
    """Hash an already-normalised ``to_dict()`` payload.

    Observability-only fields (``event_trace`` and friends — see
    :data:`~repro.core.config.FINGERPRINT_EXCLUDED_FIELDS`) are
    stripped before hashing, and protocol-physics fields holding their
    defaults (:data:`~repro.core.config.FINGERPRINT_DEFAULT_ELIDED`)
    are elided, so dict-built fingerprints agree with
    ``cfg.fingerprint()`` and with caches written before those fields
    existed.  Callers holding raw user dicts should use
    :func:`config_fingerprint`, which normalises through
    :class:`WorkStealingConfig` first.
    """
    data = {
        k: v for k, v in data.items()
        if k not in FINGERPRINT_EXCLUDED_FIELDS
        and FINGERPRINT_DEFAULT_ELIDED.get(k, _MISSING) != v
    }
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


def config_fingerprint(config: WorkStealingConfig | dict) -> str:
    """Stable content hash of a run configuration.

    Accepts either a :class:`WorkStealingConfig` or an equivalent
    :meth:`to_dict` dictionary (what workers receive), and returns the
    same hash for both — ``cfg.fingerprint()`` is the method form.
    """
    if isinstance(config, WorkStealingConfig):
        data = config.to_dict()
    elif isinstance(config, dict):
        # Normalise through the config class so dict-built and
        # object-built fingerprints can never diverge.
        data = WorkStealingConfig.from_dict(config).to_dict()
    else:
        raise ConfigurationError(
            "config_fingerprint needs a WorkStealingConfig or dict, "
            f"got {type(config).__name__}"
        )
    return fingerprint_dict(data)
