"""repro.exec — parallel experiment execution with result caching.

The executor subsystem turns the one-run API
(:func:`repro.ws.runner.run_uts`) into a batch engine:

* :func:`config_fingerprint` / ``WorkStealingConfig.fingerprint()`` —
  stable content hashes of run configurations (every strategy object
  is name-addressable via :mod:`repro.core.registry`, so configs
  round-trip through plain dicts);
* :class:`ResultCache` — an on-disk JSON store of
  :class:`~repro.ws.results.RunResult`\\ s keyed by fingerprint, under
  ``benchmarks/_cache/<version>/``;
* :func:`run_many` — a ``ProcessPoolExecutor`` batch runner with
  deduplication, cache integration and progress callbacks, whose
  results are bit-identical to the serial path.

Typical use::

    from repro import run_many
    from repro.exec import ResultCache

    results = run_many(configs, jobs=4, cache=True)
"""

from repro.exec.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.exec.fingerprint import canonical_json, config_fingerprint, fingerprint_dict
from repro.exec.pool import RunProgress, WorkerPool, run_many

__all__ = [
    "run_many",
    "RunProgress",
    "WorkerPool",
    "ResultCache",
    "DEFAULT_CACHE_DIR",
    "config_fingerprint",
    "fingerprint_dict",
    "canonical_json",
]
