"""On-disk JSON result cache keyed by config fingerprint.

Layout (see DESIGN.md, "repro.exec")::

    benchmarks/_cache/
        <__version__>/
            <fingerprint>.json    one cached RunResult + provenance

Each entry stores the package version, the fingerprint, the config
dict it hashes to, the serialized :class:`~repro.ws.results.RunResult`
and the wall-clock seconds the original simulation took.  Results live
under a per-version directory, so bumping ``repro.__version__``
invalidates every cached point without touching fingerprints; stale
version directories can simply be deleted.

Writes are atomic (temp file + ``os.replace``) so a parallel sweep
interrupted mid-write never leaves a truncated entry; corrupt or
unreadable entries read as misses.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro._version import __version__
from repro.ws.results import RunResult

__all__ = ["ResultCache", "DEFAULT_CACHE_DIR"]

#: Default cache root, relative to the working directory (the repo
#: root for `python -m repro.bench`); override with the
#: ``REPRO_CACHE_DIR`` environment variable.
DEFAULT_CACHE_DIR = "benchmarks/_cache"


class ResultCache:
    """Fingerprint-keyed persistent store of run results."""

    def __init__(
        self,
        root: str | Path | None = None,
        version: str = __version__,
    ):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.version = version

    @property
    def dir(self) -> Path:
        """Directory holding entries for the active version."""
        return self.root / self.version

    def path_for(self, fingerprint: str) -> Path:
        return self.dir / f"{fingerprint}.json"

    # ------------------------------------------------------------------

    def get(self, fingerprint: str) -> RunResult | None:
        """Cached result for ``fingerprint``, or ``None`` on a miss.

        Entries from other versions, truncated files and JSON from
        foreign tools all read as misses, never as errors.
        """
        path = self.path_for(fingerprint)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("version") != self.version
            or entry.get("fingerprint") != fingerprint
            or "result" not in entry
        ):
            return None
        try:
            return RunResult.from_dict(entry["result"])
        except Exception:
            return None

    def put(
        self,
        fingerprint: str,
        result: RunResult,
        config: dict | None = None,
        elapsed: float | None = None,
    ) -> Path:
        """Persist ``result`` under ``fingerprint``; returns the path."""
        self.dir.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": self.version,
            "fingerprint": fingerprint,
            "config": config,
            "elapsed": elapsed,
            "result": result.to_dict(),
        }
        path = self.path_for(fingerprint)
        fd, tmp = tempfile.mkstemp(
            dir=self.dir, prefix=f".{fingerprint[:12]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------

    def __contains__(self, fingerprint: str) -> bool:
        return self.get(fingerprint) is not None

    def __len__(self) -> int:
        """Number of entries for the active version."""
        try:
            return sum(1 for _ in self.dir.glob("*.json"))
        except OSError:
            return 0

    def clear(self) -> int:
        """Delete every entry of the active version; returns the count."""
        removed = 0
        if self.dir.is_dir():
            for path in self.dir.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
