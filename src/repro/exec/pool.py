"""Parallel batch execution of work-stealing simulations.

:func:`run_many` is the batch counterpart of
:func:`repro.ws.runner.run_uts`: it takes any number of
:class:`~repro.core.config.WorkStealingConfig`\\ s and executes them
over a ``ProcessPoolExecutor``, with

* **fingerprint deduplication** — identical configs in one batch run
  once and share the result object;
* **result caching** — an optional :class:`~repro.exec.cache.ResultCache`
  is consulted before and populated after every simulation;
* **progress streaming** — an optional callback receives one
  :class:`RunProgress` per finished run, with per-run wall-clock time;
* **bit-identical results** — configs are shipped to workers as plain
  dicts and results return as JSON, the same serialization single runs
  and the cache use.  Every random seed lives inside the config, so a
  parallel batch reproduces the serial results exactly, in any order,
  on any worker count.

The worker protocol is deliberately dumb: a worker receives
``(index, config_dict, max_events)``, rebuilds the config, runs the
simulation and returns ``(index, result_json, elapsed)``.  No strategy
objects, numpy arrays or tracebacks cross the process boundary except
via this one format.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.config import WorkStealingConfig
from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache
from repro.exec.fingerprint import fingerprint_dict
from repro.ws.results import RunResult
from repro.ws.runner import run_uts

__all__ = ["run_many", "RunProgress"]


@dataclass(frozen=True)
class RunProgress:
    """One progress tick of a :func:`run_many` batch."""

    #: Position of the finished config in the input sequence.
    index: int
    #: Total number of configs in the batch.
    total: int
    #: Configs finished so far (including this one).
    done: int
    #: Config fingerprint (the cache key).
    fingerprint: str
    #: Human-readable config label.
    label: str
    #: Wall-clock seconds this run took (0.0 for cache hits).
    elapsed: float
    #: True when the result came from the cache, not a simulation.
    cached: bool


def _execute(payload: tuple[int, dict, int | None]) -> tuple[int, str, float]:
    """Worker entry point: run one config shipped as a plain dict."""
    index, config_dict, max_events = payload
    start = time.perf_counter()
    config = WorkStealingConfig.from_dict(config_dict)
    result = run_uts(config, max_events=max_events)
    return index, result.to_json(), time.perf_counter() - start


def _normalize_cache(
    cache: ResultCache | str | os.PathLike | bool | None,
) -> ResultCache | None:
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, (str, os.PathLike)):
        return ResultCache(cache)
    raise ConfigurationError(
        f"cache must be a ResultCache, path, bool or None, got {cache!r}"
    )


def run_many(
    configs: Iterable[WorkStealingConfig | dict],
    *,
    jobs: int | None = 1,
    cache: ResultCache | str | os.PathLike | bool | None = None,
    progress: Callable[[RunProgress], None] | None = None,
    max_events: int | None = None,
) -> list[RunResult]:
    """Run a batch of configs, in parallel, and return their results.

    Parameters
    ----------
    configs:
        :class:`WorkStealingConfig` objects (or ``to_dict`` dicts).
        Duplicates (same fingerprint) are simulated once and share one
        result object.
    jobs:
        Worker processes.  ``1`` (the default) runs everything in this
        process; ``None`` uses ``os.cpu_count()``.  Results are
        independent of ``jobs`` — same configs, same results, bit for
        bit.
    cache:
        ``True`` for the default on-disk cache
        (``benchmarks/_cache/``), a path or :class:`ResultCache` for a
        specific one, ``None``/``False`` to disable.  Hits skip the
        simulator entirely; misses are written back after running.
    progress:
        Called once per finished config with a :class:`RunProgress`
        (cache hits first, then completions in finish order).
    max_events:
        Per-run event budget override, forwarded to the simulator.

    Returns
    -------
    ``RunResult`` per input config, in input order.
    """
    config_objs: list[WorkStealingConfig] = []
    for c in configs:
        if isinstance(c, dict):
            c = WorkStealingConfig.from_dict(c)
        elif not isinstance(c, WorkStealingConfig):
            raise ConfigurationError(
                "run_many needs WorkStealingConfig objects or config "
                f"dicts, got {type(c).__name__}"
            )
        config_objs.append(c)

    total = len(config_objs)
    dicts = [c.to_dict() for c in config_objs]
    fingerprints = [fingerprint_dict(d) for d in dicts]
    store = _normalize_cache(cache)

    results: list[RunResult | None] = [None] * total
    #: fingerprint -> indices sharing that config (batch deduplication).
    groups: dict[str, list[int]] = {}
    for i, fp in enumerate(fingerprints):
        groups.setdefault(fp, []).append(i)

    done = 0

    def _finish(fp: str, result: RunResult, elapsed: float, cached: bool) -> None:
        nonlocal done
        for i in groups[fp]:
            results[i] = result
            done += 1
            if progress is not None:
                progress(
                    RunProgress(
                        index=i,
                        total=total,
                        done=done,
                        fingerprint=fp,
                        label=result.label,
                        elapsed=elapsed,
                        cached=cached,
                    )
                )

    # Cache pass: resolve whole groups without touching the simulator.
    pending: list[tuple[int, dict, int | None]] = []
    for fp, indices in groups.items():
        hit = store.get(fp) if store is not None else None
        if hit is not None:
            _finish(fp, hit, 0.0, cached=True)
        else:
            pending.append((indices[0], dicts[indices[0]], max_events))

    def _complete(index: int, payload: str, elapsed: float) -> None:
        fp = fingerprints[index]
        result = RunResult.from_json(payload)
        if store is not None:
            store.put(fp, result, config=dicts[index], elapsed=elapsed)
        _finish(fp, result, elapsed, cached=False)

    if pending:
        workers = jobs if jobs is not None else (os.cpu_count() or 1)
        if workers < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        workers = min(workers, len(pending))
        if workers == 1:
            for payload in pending:
                _complete(*_execute(payload))
        else:
            with ProcessPoolExecutor(max_workers=workers) as executor:
                futures = [executor.submit(_execute, p) for p in pending]
                for future in as_completed(futures):
                    _complete(*future.result())

    return results  # type: ignore[return-value]  # every slot is filled
