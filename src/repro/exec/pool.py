"""Parallel batch execution of work-stealing simulations.

:func:`run_many` is the batch counterpart of
:func:`repro.ws.runner.run_uts`: it takes any number of
:class:`~repro.core.config.WorkStealingConfig`\\ s and executes them
over a ``ProcessPoolExecutor``, with

* **fingerprint deduplication** — identical configs in one batch run
  once and share the result object;
* **result caching** — an optional result store
  (:class:`~repro.exec.cache.ResultCache` or the service's
  :class:`~repro.service.store.ArtifactStore`) is consulted before and
  populated after every simulation;
* **progress streaming** — an optional callback receives one
  :class:`RunProgress` per finished run, with per-run wall-clock time;
* **per-job timeouts** — ``timeout=`` bounds each job's wall-clock;
  an overrunning worker is abandoned (it no longer wedges the sweep)
  and the slot fails with :class:`~repro.errors.JobTimeoutError`;
* **failure isolation** — ``return_exceptions=True`` turns per-job
  exceptions into :class:`~repro.core.jobs.JobFailure` slots instead
  of unwinding the whole batch;
* **pool reuse** — a caller-owned :class:`WorkerPool` (``pool=``) is
  used reentrantly across many calls, amortising worker start-up; the
  simulation service keeps one alive for its whole lifetime;
* **bit-identical results** — configs are shipped to workers as plain
  dicts and results return as JSON, the same serialization single runs
  and the cache use.  Every random seed lives inside the config, so a
  parallel batch reproduces the serial results exactly, in any order,
  on any worker count.

The worker protocol is deliberately dumb: a worker receives
``(index, config_dict, max_events)``, rebuilds the config, runs the
simulation and returns ``(index, result_json, elapsed, artifact)``
where ``artifact`` is the Chrome-trace JSON string for
``event_trace=True`` configs (event streams do not survive the result
serialization, so the export happens worker-side) and ``None``
otherwise.  No strategy objects, numpy arrays or tracebacks cross the
process boundary except via this one format.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as _futures_wait
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.config import WorkStealingConfig
from repro.core.jobs import JobFailure
from repro.errors import ConfigurationError, JobTimeoutError
from repro.exec.cache import ResultCache
from repro.exec.fingerprint import fingerprint_dict
from repro.ws.results import RunResult
from repro.ws.runner import run_uts

__all__ = ["run_many", "RunProgress", "WorkerPool"]

#: Seconds between deadline checks when a per-job timeout is armed.
_TIMEOUT_POLL = 0.05


@dataclass(frozen=True)
class RunProgress:
    """One progress tick of a :func:`run_many` batch."""

    #: Position of the finished config in the input sequence.
    index: int
    #: Total number of configs in the batch.
    total: int
    #: Configs finished so far (including this one).
    done: int
    #: Config fingerprint (the cache key).
    fingerprint: str
    #: Human-readable config label.
    label: str
    #: Wall-clock seconds this run took (0.0 for cache hits).
    elapsed: float
    #: True when the result came from the cache, not a simulation.
    cached: bool
    #: Terminal state: ``"cached"``, ``"done"`` or ``"failed"``.
    state: str = "done"
    #: ``str(exception)`` when ``state == "failed"``.
    error: str | None = None


def _execute(payload: tuple[int, dict, int | None]) -> tuple[int, str, float, str | None]:
    """Worker entry point: run one config shipped as a plain dict."""
    index, config_dict, max_events = payload
    start = time.perf_counter()
    config = WorkStealingConfig.from_dict(config_dict)
    result = run_uts(config, max_events=max_events)
    elapsed = time.perf_counter() - start
    artifact = None
    if result.events is not None:
        # Event streams are not part of the result serialization; the
        # Chrome-trace export is the durable artifact, built where the
        # events still exist (this worker).
        from repro.trace.chrome import chrome_trace

        artifact = json.dumps(
            chrome_trace(
                result.events,
                result.trace,
                total_time=result.total_time,
                label=result.label,
            ),
            separators=(",", ":"),
        )
    return index, result.to_json(), elapsed, artifact


class WorkerPool:
    """Reusable process pool speaking the :mod:`repro.exec` worker protocol.

    :func:`run_many` creates a throwaway pool per call unless one is
    passed in via ``pool=``; long-lived callers (the simulation
    service, repeated sweeps) keep one ``WorkerPool`` alive instead so
    worker processes are spawned once and reused.  The pool is
    reentrant: any number of ``run_many`` calls and direct
    :meth:`submit`\\ s may share it concurrently — the underlying
    executor serialises scheduling.

    The executor is created lazily on first submission, so a
    ``WorkerPool`` is cheap to construct and safe to keep as a
    default.
    """

    def __init__(self, workers: int | None = None):
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self._requested = workers
        self._executor: ProcessPoolExecutor | None = None

    @property
    def workers(self) -> int:
        """Worker process count (``None`` request -> ``os.cpu_count()``)."""
        return self._requested or os.cpu_count() or 1

    @property
    def active(self) -> bool:
        """True once the executor exists (something was submitted)."""
        return self._executor is not None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def submit(
        self,
        config_dict: dict,
        *,
        max_events: int | None = None,
        index: int = 0,
    ) -> Future:
        """Run one config dict on the pool.

        Returns a future of the worker protocol's
        ``(index, result_json, elapsed, artifact)`` tuple.
        """
        return self._ensure().submit(_execute, (index, config_dict, max_events))

    def submit_payload(
        self,
        payload: tuple[int, dict, int | None],
        worker: Callable | None = None,
    ) -> Future:
        """Submit a raw worker payload (``run_many``'s internal entry)."""
        return self._ensure().submit(worker or _execute, payload)

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop the executor; the pool can be reused afterwards (lazily)."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=cancel_pending)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def _normalize_store(
    store: ResultCache | str | os.PathLike | bool | None,
) -> ResultCache | None:
    if store is None or store is False:
        return None
    if store is True:
        return ResultCache()
    if isinstance(store, ResultCache):
        return store
    if isinstance(store, (str, os.PathLike)):
        return ResultCache(store)
    raise ConfigurationError(
        f"store must be a ResultCache, path, bool or None, got {store!r}"
    )


def run_many(
    configs: Iterable[WorkStealingConfig | dict],
    *,
    jobs: int | None = 1,
    store: ResultCache | str | os.PathLike | bool | None = None,
    progress: Callable[[RunProgress], None] | None = None,
    max_events: int | None = None,
    timeout: float | None = None,
    return_exceptions: bool = False,
    pool: WorkerPool | None = None,
    _worker: Callable | None = None,
) -> list[RunResult | JobFailure]:
    """Run a batch of configs, in parallel, and return their results.

    Parameters
    ----------
    configs:
        :class:`WorkStealingConfig` objects (or ``to_dict`` dicts).
        Duplicates (same fingerprint) are simulated once and share one
        result object.
    jobs:
        Worker processes.  ``1`` (the default) runs everything in this
        process; ``None`` uses ``os.cpu_count()``.  Results are
        independent of ``jobs`` — same configs, same results, bit for
        bit.
    store:
        ``True`` for the default on-disk result store
        (``benchmarks/_cache/``), a path or :class:`ResultCache`\\ /
        :class:`~repro.service.store.ArtifactStore` for a specific
        one, ``None``/``False`` to disable.  Hits skip the simulator
        entirely; misses are written back after running.
    progress:
        Called once per finished config with a :class:`RunProgress`
        (cache hits first, then completions in finish order).
    max_events:
        Per-run event budget override, forwarded to the simulator.
    timeout:
        Per-job wall-clock budget in seconds, measured from the moment
        the job starts executing.  An overrunning worker is
        *abandoned* — its process is left to finish in the background
        and its slot fails with :class:`~repro.errors.JobTimeoutError`
        — so one hung job can no longer wedge the sweep.  Setting a
        timeout forces process-pool execution even for ``jobs=1``
        (an in-process run cannot be abandoned).
    return_exceptions:
        With ``True``, a job that raises (or times out) produces a
        :class:`~repro.core.jobs.JobFailure` carrying the exception in
        its slot — its state surfaces as ``JobState.FAILED`` — and the
        rest of the batch completes normally.  With ``False`` (the
        default) the first failure propagates.
    pool:
        A caller-owned :class:`WorkerPool` to run on (reentrant; not
        shut down by this call).  Overrides ``jobs``.

    Returns
    -------
    One entry per input config, in input order: a ``RunResult``, or a
    ``JobFailure`` when that job failed and ``return_exceptions=True``.
    """
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"timeout must be > 0, got {timeout}")

    config_objs: list[WorkStealingConfig] = []
    for c in configs:
        if isinstance(c, dict):
            c = WorkStealingConfig.from_dict(c)
        elif not isinstance(c, WorkStealingConfig):
            raise ConfigurationError(
                "run_many needs WorkStealingConfig objects or config "
                f"dicts, got {type(c).__name__}"
            )
        config_objs.append(c)

    total = len(config_objs)
    dicts = [c.to_dict() for c in config_objs]
    fingerprints = [fingerprint_dict(d) for d in dicts]
    result_store = _normalize_store(store)

    results: list[RunResult | JobFailure | None] = [None] * total
    #: fingerprint -> indices sharing that config (batch deduplication).
    groups: dict[str, list[int]] = {}
    for i, fp in enumerate(fingerprints):
        groups.setdefault(fp, []).append(i)

    done = 0

    def _emit(fp: str, value, elapsed: float, state: str, error=None) -> None:
        nonlocal done
        for i in groups[fp]:
            results[i] = value
            done += 1
            if progress is not None:
                progress(
                    RunProgress(
                        index=i,
                        total=total,
                        done=done,
                        fingerprint=fp,
                        label=value.label,
                        elapsed=elapsed,
                        cached=state == "cached",
                        state=state,
                        error=error,
                    )
                )

    # Cache pass: resolve whole groups without touching the simulator.
    pending: list[tuple[int, dict, int | None]] = []
    for fp, indices in groups.items():
        hit = result_store.get(fp) if result_store is not None else None
        if hit is not None:
            _emit(fp, hit, 0.0, "cached")
        else:
            pending.append((indices[0], dicts[indices[0]], max_events))

    def _complete(
        index: int, payload: str, elapsed: float, artifact: str | None = None
    ) -> None:
        fp = fingerprints[index]
        result = RunResult.from_json(payload)
        if result_store is not None:
            result_store.put(fp, result, config=dicts[index], elapsed=elapsed)
            if artifact is not None:
                put_artifact = getattr(result_store, "put_artifact", None)
                if put_artifact is not None:
                    put_artifact(fp, "trace.json", artifact)
        _emit(fp, result, elapsed, "done")

    def _fail(index: int, exc: BaseException, elapsed: float) -> None:
        fp = fingerprints[index]
        failure = JobFailure(
            fingerprint=fp,
            label=config_objs[index].label(),
            error=exc,
            elapsed=elapsed,
        )
        _emit(fp, failure, elapsed, "failed", error=str(exc))

    worker = _worker or _execute

    if pending:
        workers = jobs if jobs is not None else (os.cpu_count() or 1)
        if workers < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        workers = min(workers, len(pending))
        if pool is None and timeout is None and workers == 1:
            # Serial fast path: no process-pool overhead.
            for payload in pending:
                try:
                    _complete(*worker(payload))
                except Exception as exc:
                    if not return_exceptions:
                        raise
                    _fail(payload[0], exc, 0.0)
        else:
            _run_on_pool(
                pending,
                pool=pool,
                workers=workers,
                worker=worker,
                timeout=timeout,
                return_exceptions=return_exceptions,
                labels=[c.label() for c in config_objs],
                complete=_complete,
                fail=_fail,
            )

    return results  # type: ignore[return-value]  # every slot is filled


def _run_on_pool(
    pending: list[tuple[int, dict, int | None]],
    *,
    pool: WorkerPool | None,
    workers: int,
    worker: Callable,
    timeout: float | None,
    return_exceptions: bool,
    labels: list[str],
    complete: Callable,
    fail: Callable,
) -> None:
    """Execute ``pending`` payloads on a (possibly shared) worker pool."""
    own_pool = WorkerPool(workers) if pool is None else None
    target = pool if pool is not None else own_pool
    abandoned = False
    try:
        futures: dict[Future, tuple[int, dict, int | None]] = {
            target.submit_payload(p, worker): p for p in pending
        }
        waiting = set(futures)
        first_running: dict[Future, float] = {}
        while waiting:
            finished, _ = _futures_wait(
                waiting,
                timeout=_TIMEOUT_POLL if timeout is not None else None,
                return_when=FIRST_COMPLETED,
            )
            for future in finished:
                waiting.discard(future)
                index = futures[future][0]
                try:
                    payload = future.result()
                except Exception as exc:
                    if not return_exceptions:
                        abandoned = bool(waiting)
                        raise
                    fail(index, exc, 0.0)
                else:
                    complete(*payload)
            if timeout is None:
                continue
            now = time.monotonic()
            for future in list(waiting):
                started = first_running.get(future)
                if started is None:
                    if future.running():
                        first_running[future] = now
                elif now - started >= timeout:
                    # Abandon: the worker process keeps running in the
                    # background, but this sweep moves on.
                    future.cancel()
                    waiting.discard(future)
                    abandoned = True
                    index = futures[future][0]
                    exc = JobTimeoutError(
                        f"job {labels[index]!r} exceeded its {timeout}s "
                        "budget and was abandoned"
                    )
                    if not return_exceptions:
                        raise exc
                    fail(index, exc, now - started)
    finally:
        if own_pool is not None:
            # Abandoned (or error-skipped) workers must not wedge the
            # caller: drop the pool without waiting for them.
            own_pool.shutdown(wait=not abandoned, cancel_pending=abandoned)
