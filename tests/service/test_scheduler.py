"""Tests for the priority + weighted fair-share scheduler."""

from __future__ import annotations

import pytest

from repro.core.jobs import Job, next_job_id
from repro.errors import ConfigurationError
from repro.service.scheduler import FairShareScheduler


def _job(client: str, tag: str, priority: int = 0) -> Job:
    return Job(
        id=next_job_id(),
        fingerprint=f"fp-{client}-{tag}",
        config={},
        label=f"{client}:{tag}",
        client=client,
        priority=priority,
    )


def _drain_labels(sched: FairShareScheduler) -> list[str]:
    labels = []
    while sched:
        labels.append(sched.pop().label)
    return labels


class TestFairShare:
    def test_single_client_is_fifo(self):
        sched = FairShareScheduler()
        for tag in "abcd":
            sched.push(_job("solo", tag))
        assert _drain_labels(sched) == [f"solo:{t}" for t in "abcd"]

    def test_equal_weights_interleave_round_robin(self):
        sched = FairShareScheduler()
        for tag in "012":
            sched.push(_job("a", tag))
            sched.push(_job("b", tag))
        assert _drain_labels(sched) == [
            "a:0", "b:0", "a:1", "b:1", "a:2", "b:2",
        ]

    def test_unequal_weights_split_dispatches_proportionally(self):
        sched = FairShareScheduler()
        sched.set_weight("b", 2.0)
        for tag in "0123":
            sched.push(_job("a", tag))
            sched.push(_job("b", tag))
        # Stride schedule: b earns two dispatches per one of a's,
        # interleaved, with ties (equal vtime) falling to 'a' by name.
        assert _drain_labels(sched) == [
            "a:0", "b:0", "b:1", "a:1", "b:2", "b:3", "a:2", "a:3",
        ]

    def test_priority_bands_never_mix(self):
        sched = FairShareScheduler()
        sched.push(_job("a", "low", priority=0))
        sched.push(_job("b", "high", priority=5))
        sched.push(_job("a", "high", priority=5))
        labels = _drain_labels(sched)
        assert labels == ["a:high", "b:high", "a:low"]

    def test_idle_client_cannot_bank_share(self):
        sched = FairShareScheduler()
        for tag in "0123":
            sched.push(_job("busy", tag))
        sched.pop(), sched.pop()  # busy's vtime is now 2.0
        sched.push(_job("late", "0"))
        sched.push(_job("late", "1"))
        # late joins at busy's floor (2.0), not at 0 — it interleaves
        # instead of monopolizing the next dispatches.
        assert _drain_labels(sched) == ["busy:2", "late:0", "busy:3", "late:1"]


class TestQueueOps:
    def test_remove_withdraws_only_queued_jobs(self):
        sched = FairShareScheduler()
        job = _job("a", "x")
        other = _job("a", "y")
        sched.push(job)
        assert sched.remove(job) is True
        assert sched.remove(job) is False  # already gone
        assert sched.remove(other) is False  # never queued
        assert len(sched) == 0

    def test_drain_empties_everything(self):
        sched = FairShareScheduler()
        for client in ("a", "b"):
            for tag in "01":
                sched.push(_job(client, tag))
        drained = sched.drain()
        assert len(drained) == 4
        assert not sched and sched.pop() is None

    def test_rejects_nonpositive_weight(self):
        sched = FairShareScheduler()
        with pytest.raises(ConfigurationError):
            sched.set_weight("a", 0.0)
        with pytest.raises(ConfigurationError):
            sched.set_weight("a", -1.0)

    def test_dispatch_accounting(self):
        sched = FairShareScheduler()
        sched.push(_job("a", "0"))
        sched.push(_job("a", "1"))
        sched.pop()
        share = sched.clients()["a"]
        assert share.dispatched == 1
        assert share.queued == 1
