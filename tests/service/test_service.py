"""Tests for the simulation service: dedup, fairness, streams, failure.

There is no async test plugin in the baked-in toolchain, so every test
drives its own loop with ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.core.config import WorkStealingConfig
from repro.core.jobs import JobFailure, JobState
from repro.errors import (
    ConfigurationError,
    JobCancelledError,
    JobTimeoutError,
    ServiceError,
)
from repro.service import ArtifactStore, SimulationService
from repro.service.service import run_service_sweep
from repro.uts.params import T3XS
from repro.ws.runner import run_uts


def _config(seed: int = 0) -> WorkStealingConfig:
    return WorkStealingConfig(tree=T3XS, nranks=4, seed=seed)


def _sim(config_dict: dict):
    return run_uts(WorkStealingConfig.from_dict(config_dict))


class TestDedup:
    def test_concurrent_duplicate_submissions_execute_once(self):
        """Two clients submit the same config while it runs: one execution."""
        executions = []
        running = threading.Event()
        release = threading.Event()

        def runner(config_dict):
            executions.append(config_dict["seed"])
            running.set()
            assert release.wait(timeout=10)
            return _sim(config_dict)

        async def main():
            async with SimulationService(2, runner=runner) as service:
                first = await service.submit([_config()], client="alice")
                await asyncio.to_thread(running.wait, 10)  # job is executing
                second = await service.submit([_config()], client="bob")
                assert service.stats().dedup_joins == 1
                release.set()
                r1 = await first.results()
                r2 = await second.results()
                return r1, r2

        r1, r2 = asyncio.run(main())
        assert executions == [0]  # provably exactly one execution
        assert r1[0] is r2[0]  # both clients share the one result object

    def test_queued_duplicates_join_before_dispatch(self):
        executions = []

        def runner(config_dict):
            executions.append(config_dict["seed"])
            return _sim(config_dict)

        async def main():
            service = SimulationService(1, runner=runner)
            # Submit before start(): both land while nothing dispatches.
            h1 = await service.submit([_config()], client="alice")
            h2 = await service.submit([_config()], client="bob")
            assert h1.jobs[0] is h2.jobs[0]  # literally the same job
            async with service:
                r1, r2 = await h1.results(), await h2.results()
            return r1, r2

        r1, r2 = asyncio.run(main())
        assert executions == [0]
        assert r1[0] is r2[0]

    def test_store_hits_short_circuit(self, tmp_path):
        store = ArtifactStore(tmp_path)
        first = run_service_sweep([_config()], workers=1, store=store)
        second = run_service_sweep([_config()], workers=1, store=store)
        assert first[0].to_json() == second[0].to_json()

    def test_cached_jobs_emit_terminal_events(self, tmp_path):
        store = ArtifactStore(tmp_path)
        run_service_sweep([_config()], workers=1, store=store)

        async def main():
            async with SimulationService(1, store) as service:
                handle = await service.submit([_config()])
                return [event async for event in handle.events()]

        events = asyncio.run(main())
        assert [e.state for e in events] == [JobState.CACHED]
        assert events[0].cached


class TestFairShare:
    def test_unequal_weights_order_dispatch(self):
        order = []

        def runner(config_dict):
            order.append(config_dict["seed"])
            return _sim(config_dict)

        async def main():
            service = SimulationService(1, runner=runner)
            # Queue everything before dispatch starts so the order is
            # purely the scheduler's (workers=1 => one at a time).
            await service.submit(
                [_config(s) for s in (10, 11, 12, 13)], client="alice"
            )
            await service.submit(
                [_config(s) for s in (20, 21, 22, 23)],
                client="bob",
                weight=2.0,
            )
            async with service:
                pass  # drain on exit

        asyncio.run(main())
        # Stride schedule, weights alice=1 bob=2: bob earns two
        # dispatches per one of alice's, interleaved.
        assert order == [10, 20, 21, 11, 22, 23, 12, 13]

    def test_priority_beats_fair_share(self):
        order = []

        def runner(config_dict):
            order.append(config_dict["seed"])
            return _sim(config_dict)

        async def main():
            service = SimulationService(1, runner=runner)
            await service.submit([_config(1), _config(2)], client="alice")
            await service.submit([_config(9)], client="bob", priority=10)
            async with service:
                pass

        asyncio.run(main())
        assert order[0] == 9


class TestCancellation:
    def test_event_stream_terminates_on_cancel(self):
        release = threading.Event()

        def runner(config_dict):
            assert release.wait(timeout=10)
            return _sim(config_dict)

        async def main():
            async with SimulationService(1, runner=runner) as service:
                handle = await service.submit([_config(0), _config(1)])
                events = []

                async def consume():
                    async for event in handle.events():
                        events.append(event)

                consumer = asyncio.create_task(consume())
                await asyncio.sleep(0.05)
                await handle.cancel()
                release.set()
                # The stream must end promptly — this wait_for is the test.
                await asyncio.wait_for(consumer, timeout=5)
                results = await asyncio.wait_for(handle.results(), timeout=5)
                return events, results

        events, results = asyncio.run(main())
        assert all(isinstance(r, JobFailure) for r in results)
        assert all(isinstance(r.error, JobCancelledError) for r in results)
        terminal = [e for e in events if e.state.terminal]
        assert {e.state for e in terminal} == {JobState.FAILED}

    def test_cancel_spares_jobs_shared_with_other_handles(self):
        release = threading.Event()

        def runner(config_dict):
            assert release.wait(timeout=10)
            return _sim(config_dict)

        async def main():
            async with SimulationService(1, runner=runner) as service:
                keeper = await service.submit([_config()], client="alice")
                leaver = await service.submit([_config()], client="bob")
                await leaver.cancel()
                # bob's handle resolves right away (stream closed at
                # cancel, job still running) — before the job lands.
                left = await asyncio.wait_for(leaver.results(), timeout=5)
                release.set()
                kept = await asyncio.wait_for(keeper.results(), timeout=10)
                return kept, left

        kept, left = asyncio.run(main())
        assert not isinstance(kept[0], JobFailure)  # alice still got it
        assert isinstance(left[0], JobFailure)  # bob's view: withdrawn


class TestFailureModes:
    def test_worker_exception_surfaces_as_job_failure(self):
        def runner(config_dict):
            raise ValueError("injected failure")

        async def main():
            async with SimulationService(1, runner=runner) as service:
                handle = await service.submit([_config()])
                events = [event async for event in handle.events()]
                return events, await handle.results()

        events, results = asyncio.run(main())
        assert isinstance(results[0], JobFailure)
        assert isinstance(results[0].error, ValueError)
        assert events[-1].state is JobState.FAILED
        assert events[-1].error == "injected failure"

    def test_timeout_fails_job_without_wedging_service(self):
        def runner(config_dict):
            if config_dict["seed"] == 1:
                time.sleep(1.0)
            return _sim(config_dict)

        async def main():
            async with SimulationService(2, runner=runner) as service:
                handle = await service.submit(
                    [_config(0), _config(1)], timeout=0.3
                )
                return await asyncio.wait_for(handle.results(), timeout=10)

        results = asyncio.run(main())
        assert not isinstance(results[0], JobFailure)
        assert isinstance(results[1], JobFailure)
        assert isinstance(results[1].error, JobTimeoutError)

    def test_submit_after_close_is_rejected(self):
        async def main():
            service = SimulationService(1, runner=_sim)
            async with service:
                pass
            with pytest.raises(ServiceError):
                await service.submit([_config()])

        asyncio.run(main())

    def test_rejects_bad_inputs(self):
        async def main():
            service = SimulationService(1, runner=_sim)
            with pytest.raises(ConfigurationError):
                await service.submit(["nope"])
            with pytest.raises(ConfigurationError):
                await service.submit([_config()], timeout=0.0)
            async with service:
                pass

        asyncio.run(main())

    def test_empty_sweep_resolves_immediately(self):
        async def main():
            async with SimulationService(1, runner=_sim) as service:
                handle = await service.submit([])
                assert [e async for e in handle.events()] == []
                return await handle.results()

        assert asyncio.run(main()) == []


class TestPoolBacked:
    """The real process-pool path (no injected runner)."""

    def test_sweep_matches_direct_runner_and_stores_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        config = _config().replace(event_trace=True)
        results = run_service_sweep([config], workers=1, store=store)
        direct = run_uts(_config())
        assert results[0].total_nodes == direct.total_nodes
        # event_trace=True runs leave a Chrome-trace artifact behind.
        fingerprint = store._entries()[0][0]
        assert "trace.json" in store.artifacts_for(fingerprint)

    def test_event_sequence_for_fresh_job(self):
        async def main():
            async with SimulationService(1) as service:
                handle = await service.submit([_config()])
                return [event.state async for event in handle.events()]

        states = asyncio.run(main())
        assert states == [JobState.QUEUED, JobState.STARTED, JobState.DONE]
