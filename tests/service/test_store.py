"""Tests for the artifact store's LRU eviction and artifact handling."""

from __future__ import annotations

import os

import pytest

from repro.core.config import WorkStealingConfig
from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache
from repro.service.store import ArtifactStore
from repro.uts.params import T3XS
from repro.ws.runner import run_uts


@pytest.fixture(scope="module")
def result():
    return run_uts(WorkStealingConfig(tree=T3XS, nranks=4, seed=0))


def _age(store: ArtifactStore, fingerprint: str, seconds: float) -> None:
    """Backdate an entry's (and its artifacts') last access."""
    paths = [store.path_for(fingerprint)]
    paths.extend(store.artifacts_for(fingerprint).values())
    for path in paths:
        st = path.stat()
        os.utime(path, (st.st_atime - seconds, st.st_mtime - seconds))


class TestLRUEviction:
    def test_unbounded_store_never_evicts(self, tmp_path, result):
        store = ArtifactStore(tmp_path)
        for i in range(5):
            store.put(f"fp{i}", result)
        assert store.evict() == []
        assert store.stats().entries == 5

    def test_oldest_entries_evict_first(self, tmp_path, result):
        store = ArtifactStore(tmp_path)
        for i in range(4):
            store.put(f"fp{i}", result)
            _age(store, f"fp{i}", seconds=100 - i)
        entry_bytes = store.total_bytes() // 4
        store.max_bytes = entry_bytes * 2 + entry_bytes // 2
        evicted = store.evict()
        assert evicted == ["fp0", "fp1"]
        assert store.get("fp0") is None
        assert store.get("fp3") is not None

    def test_read_refreshes_recency(self, tmp_path, result):
        store = ArtifactStore(tmp_path)
        for i in range(3):
            store.put(f"fp{i}", result)
            _age(store, f"fp{i}", seconds=100 - i)
        assert store.get("fp0") is not None  # fp0 becomes the newest
        store.max_bytes = int(store.total_bytes() / 3 * 2.5)  # room for 2
        evicted = store.evict()
        assert evicted == ["fp1"]  # oldest unread entry; fp0 was refreshed

    def test_put_triggers_eviction_under_budget(self, tmp_path, result):
        store = ArtifactStore(tmp_path)
        store.put("fp0", result)
        store.max_bytes = store.total_bytes() + 10  # room for ~1 entry
        _age(store, "fp0", seconds=100)
        store.put("fp1", result)  # pushes past the budget
        assert store.get("fp0") is None
        assert store.get("fp1") is not None
        assert store.stats().evicted == 1

    def test_result_and_artifacts_evict_as_one_unit(self, tmp_path, result):
        store = ArtifactStore(tmp_path)
        store.put("fp0", result)
        store.put_artifact("fp0", "trace.json", "x" * 64)
        _age(store, "fp0", seconds=100)
        store.put("fp1", result)
        store.max_bytes = store.total_bytes() // 2
        evicted = store.evict()
        assert evicted == ["fp0"]
        assert store.get_artifact("fp0", "trace.json") is None
        assert store.artifacts_for("fp0") == {}

    def test_rejects_bad_budget(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ArtifactStore(tmp_path, max_bytes=0)


class TestArtifacts:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        ref = store.put_artifact("fp0", "trace.json", '{"ok": true}')
        assert ref.fingerprint == "fp0"
        assert ref.nbytes == len('{"ok": true}')
        assert ref.path.exists()
        assert store.get_artifact("fp0", "trace.json") == b'{"ok": true}'
        assert list(store.artifacts_for("fp0")) == ["trace.json"]

    def test_missing_artifact_is_none(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get_artifact("nope", "trace.json") is None

    def test_rejects_path_traversal_kinds(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for bad in ("../evil", "a/b", "", ".hidden"):
            with pytest.raises(ConfigurationError):
                store.put_artifact("fp0", bad, b"x")


class TestCompatibility:
    def test_reads_entries_written_by_plain_cache(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.put("fp0", result)
        store = ArtifactStore(tmp_path)
        hit = store.get("fp0")
        assert hit is not None
        assert hit.to_json() == result.to_json()

    def test_plain_cache_reads_store_entries(self, tmp_path, result):
        store = ArtifactStore(tmp_path)
        store.put("fp0", result)
        assert ResultCache(tmp_path).get("fp0") is not None

    def test_purge_stale_versions(self, tmp_path, result):
        old = ArtifactStore(tmp_path, version="0.0.1")
        old.put("fp0", result)
        old.put_artifact("fp0", "trace.json", b"{}")
        store = ArtifactStore(tmp_path)
        store.put("fp1", result)
        removed = store.purge_stale_versions()
        assert removed == 2
        assert not (tmp_path / "0.0.1").exists()
        assert store.get("fp1") is not None

    def test_stats_shape(self, tmp_path, result):
        store = ArtifactStore(tmp_path, max_bytes=10**9)
        store.put("fp0", result)
        store.put_artifact("fp0", "trace.json", b"{}")
        stats = store.stats()
        assert stats.entries == 1
        assert stats.artifacts == 1
        assert stats.total_bytes == store.total_bytes() > 0
        assert stats.max_bytes == 10**9
        assert stats.evicted == 0
