"""Smoke tests for the service load generator."""

from __future__ import annotations

import json

from repro.service import loadgen


class TestLoadgen:
    def test_short_run_reports_throughput_and_dedup(self, tmp_path):
        results = loadgen.run_load(
            duration=1.5,
            clients=2,
            universe=4,
            workers=1,
            store_dir=str(tmp_path),
            seed=7,
        )
        assert results["sweeps"] > 0
        assert results["sweeps_per_sec"] > 0
        assert results["failed"] == 0
        # The dedup guarantee, measured: at most one execution per
        # distinct config, no matter how many clients asked.
        assert results["executed"] <= results["distinct_configs"]
        assert results["submitted"] == results["sweeps"]
        assert 0.0 <= results["hit_rate"] <= 1.0
        assert results["latency_p99_ms"] >= results["latency_p50_ms"] >= 0
        # Cold/warm split: every sweep lands in exactly one population,
        # and cold requests (real executions) dominate warm ones (store
        # hits) in latency.
        cold, warm = results["latency_cold"], results["latency_warm"]
        assert cold["count"] + warm["count"] == results["sweeps"]
        assert cold["count"] > 0  # a fresh store must execute something
        for dist in (cold, warm):
            assert dist["max_ms"] >= dist["p99_ms"] >= dist["p50_ms"] >= 0
        if warm["count"]:
            assert cold["p50_ms"] >= warm["p50_ms"]

    def test_cli_emits_bench_json_and_gates(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = loadgen.main(
            [
                "--duration", "1.0",
                "--clients", "2",
                "--universe", "3",
                "--workers", "1",
                "--store", str(tmp_path / "store"),
                "--out", str(out),
                "--require-throughput", "1",
            ]
        )
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["schema"] == "repro-service-load-v1"
        for key in ("sweeps_per_sec", "latency_p99_ms", "hit_rate", "executed"):
            assert key in report["results"]

    def test_unmeetable_gate_fails(self, tmp_path):
        rc = loadgen.main(
            [
                "--duration", "0.5",
                "--clients", "1",
                "--universe", "2",
                "--workers", "1",
                "--store", str(tmp_path / "store"),
                "--require-throughput", "1e12",
            ]
        )
        assert rc == 1
