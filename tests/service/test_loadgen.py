"""Smoke tests for the service load generator."""

from __future__ import annotations

import asyncio
import json

from repro.service import loadgen
from repro.service.service import SimulationService
from repro.service.store import ArtifactStore
from repro.ws.results import RunResult


class TestLoadgen:
    def test_short_run_reports_throughput_and_dedup(self, tmp_path):
        results = loadgen.run_load(
            duration=1.5,
            clients=2,
            universe=4,
            workers=1,
            store_dir=str(tmp_path),
            seed=7,
        )
        assert results["sweeps"] > 0
        assert results["sweeps_per_sec"] > 0
        assert results["failed"] == 0
        # The dedup guarantee, measured: at most one execution per
        # distinct config, no matter how many clients asked.
        assert results["executed"] <= results["distinct_configs"]
        assert results["submitted"] == results["sweeps"]
        assert 0.0 <= results["hit_rate"] <= 1.0
        assert results["latency_p99_ms"] >= results["latency_p50_ms"] >= 0
        # Cold/warm split: every sweep lands in exactly one population,
        # and cold requests (real executions) dominate warm ones (store
        # hits) in latency.
        cold, warm = results["latency_cold"], results["latency_warm"]
        assert cold["count"] + warm["count"] == results["sweeps"]
        assert cold["count"] > 0  # a fresh store must execute something
        for dist in (cold, warm):
            assert dist["max_ms"] >= dist["p99_ms"] >= dist["p50_ms"] >= 0
        if warm["count"]:
            assert cold["p50_ms"] >= warm["p50_ms"]

    def test_cli_emits_bench_json_and_gates(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = loadgen.main(
            [
                "--duration", "1.0",
                "--clients", "2",
                "--universe", "3",
                "--workers", "1",
                "--store", str(tmp_path / "store"),
                "--out", str(out),
                "--require-throughput", "1",
            ]
        )
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["schema"] == "repro-service-load-v1"
        for key in ("sweeps_per_sec", "latency_p99_ms", "hit_rate", "executed"):
            assert key in report["results"]

    def test_sharded_multiprocess_scenario(self, tmp_path):
        # The same closed loop, but every request routed through the
        # sharded engine with two OS processes per run (nested inside
        # the service's worker pool).  Nothing user-visible may change
        # except where the CPU time goes.
        results = loadgen.run_load(
            duration=1.5,
            clients=2,
            universe=3,
            workers=1,
            store_dir=str(tmp_path),
            seed=3,
            engine="sharded",
            shards=2,
            shard_workers=2,
        )
        assert results["engine"] == "sharded"
        assert results["shard_workers"] == 2
        assert results["failed"] == 0
        assert results["sweeps"] > 0
        assert results["executed"] <= results["distinct_configs"]

    def test_sharded_service_results_equal_inprocess(self, tmp_path):
        # Equality, not just liveness: the identical universe submitted
        # through the service once per driver (multiprocess sharded vs
        # in-process sharded vs sequential) must serialize identically.
        # Fresh stores per driver — the engine knobs share fingerprints
        # by design, so one store would serve the later drivers from
        # cache and prove nothing.
        async def run_universe(configs, store_dir):
            async with SimulationService(
                1, ArtifactStore(str(store_dir))
            ) as service:
                handle = await service.submit(configs, client="eq")
                results = await handle.results()
            assert all(isinstance(r, RunResult) for r in results)
            return [r.to_json() for r in results]

        universes = {
            "sequential": loadgen._universe(2),
            "inprocess": loadgen._universe(
                2, engine="sharded", shards=2, shard_workers=1
            ),
            "multiprocess": loadgen._universe(
                2, engine="sharded", shards=2, shard_workers=2
            ),
        }
        payloads = {
            name: asyncio.run(run_universe(cfgs, tmp_path / name))
            for name, cfgs in universes.items()
        }
        assert payloads["multiprocess"] == payloads["inprocess"]
        assert payloads["multiprocess"] == payloads["sequential"]

    def test_unmeetable_gate_fails(self, tmp_path):
        rc = loadgen.main(
            [
                "--duration", "0.5",
                "--clients", "1",
                "--universe", "2",
                "--workers", "1",
                "--store", str(tmp_path / "store"),
                "--require-throughput", "1e12",
            ]
        )
        assert rc == 1
