"""Golden determinism of the tournament leaderboard (ISSUE 8).

The ``small`` preset (T3S, 64 ranks, 3 selectors) must produce a
byte-identical leaderboard artifact:

* across repeated runs,
* across ``jobs`` values (parallel vs serial execution),
* and on a cached rerun — which must execute **zero** new configs,
  proving every scored quantity survives the result store exactly.
"""

from __future__ import annotations

from repro.exec.cache import ResultCache
from repro.tournament import PRESETS, run_tournament


def test_small_preset_leaderboard_is_golden(tmp_path):
    spec = PRESETS["small"]
    store = ResultCache(tmp_path / "store")

    cold = run_tournament(spec, jobs=2, store=store)
    assert cold.executed == len(spec.configs()) and cold.cached == 0

    warm = run_tournament(spec, jobs=1, store=store)
    assert warm.executed == 0, "cached rerun must not simulate anything"
    assert warm.cached == len(spec.configs())

    # Byte-identity: cold/parallel vs warm/serial, JSON and markdown.
    assert cold.leaderboard_json() == warm.leaderboard_json()
    assert cold.leaderboard_markdown() == warm.leaderboard_markdown()

    # And across artifact writes.
    a = cold.write(tmp_path / "a")
    b = warm.write(tmp_path / "b")
    for pa, pb in zip(a, b):
        assert open(pa, "rb").read() == open(pb, "rb").read()


def test_small_preset_independent_of_store(tmp_path):
    """No store at all gives the same leaderboard bytes."""
    spec = PRESETS["small"]
    stored = run_tournament(spec, store=ResultCache(tmp_path / "s"))
    bare = run_tournament(spec, store=None)
    assert stored.leaderboard_json() == bare.leaderboard_json()
