"""Unit tests of the tournament harness (grid, scoring, artifacts)."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.config import WorkStealingConfig
from repro.tournament import PRESETS, TournamentSpec, run_tournament
from repro.tournament.__main__ import main
from repro.uts.params import T3XS


SPEC = TournamentSpec(
    name="unit",
    tree="T3XS",
    nranks=16,
    selectors=("rand", "adapt-sr[0.9]"),
    steal_policies=("one", "adaptive[2]"),
)


class TestSpec:
    def test_grid_order_is_selector_major_and_stable(self):
        labels = [cfg.label() for cfg in SPEC.configs()]
        assert labels == [
            "rand/one 1/N x16 [T3XS]",
            "rand/adaptive[2] 1/N x16 [T3XS]",
            "adapt-sr[0.9]/one 1/N x16 [T3XS]",
            "adapt-sr[0.9]/adaptive[2] 1/N x16 [T3XS]",
        ]
        assert labels == [cfg.label() for cfg in SPEC.configs()]

    def test_adaptive_knobs_change_fingerprints(self):
        """The adaptive parameters are physics: two runs that adapt
        differently must never share a cache slot."""
        base = WorkStealingConfig(tree=T3XS, nranks=16, selector="adapt-eps[0.1]")
        assert (
            base.fingerprint()
            != WorkStealingConfig(
                tree=T3XS, nranks=16, selector="adapt-eps[0.2]"
            ).fingerprint()
        )
        assert (
            WorkStealingConfig(
                tree=T3XS, nranks=16, steal_policy="adaptive[2]"
            ).fingerprint()
            != WorkStealingConfig(
                tree=T3XS, nranks=16, steal_policy="adaptive[3]"
            ).fingerprint()
        )

    def test_trace_knob_not_in_fingerprint_but_activity_trace_is(self):
        # Tournament configs rely on event_trace being free (excluded)
        # while trace=True is part of the physics fingerprint.
        a = WorkStealingConfig(tree=T3XS, nranks=16, trace=True)
        assert (
            a.fingerprint()
            == WorkStealingConfig(
                tree=T3XS, nranks=16, trace=True, event_trace=True
            ).fingerprint()
        )

    def test_presets_are_well_formed(self):
        for name, spec in PRESETS.items():
            assert spec.name == name
            assert spec.selectors
            configs = spec.configs()
            assert len(configs) == (
                len(spec.selectors)
                * len(spec.steal_policies)
                * len(spec.allocations)
                * len(spec.protocols)
            )
            assert all(cfg.trace for cfg in configs)
            assert not any(cfg.event_trace for cfg in configs)


class TestRun:
    @pytest.fixture(scope="class")
    def tournament(self):
        return run_tournament(SPEC)

    def test_rows_ranked_by_makespan(self, tournament):
        spans = [row["makespan"] for row in tournament.rows]
        assert spans == sorted(spans)
        assert tournament.winner is tournament.rows[0]
        assert len(tournament.rows) == 4
        assert tournament.executed == 4 and tournament.cached == 0

    def test_row_fields_complete(self, tournament):
        for row in tournament.rows:
            assert row["tree"] == "T3XS" and row["nranks"] == 16
            assert row["makespan"] > 0
            assert 0 < row["efficiency"] <= 1
            assert 0 <= row["steal_success_rate"] <= 1
            assert row["failed_steals"] >= 0

    def test_row_for(self, tournament):
        row = tournament.row_for("rand", "one")
        assert row["selector"] == "rand" and row["steal_policy"] == "one"
        with pytest.raises(KeyError):
            tournament.row_for("no-such-selector")

    def test_artifacts(self, tournament, tmp_path):
        paths = tournament.write(tmp_path)
        assert [os.path.basename(p) for p in paths] == [
            "tournament_unit.json",
            "tournament_unit.md",
        ]
        payload = json.loads(open(paths[0]).read())
        assert payload["spec"]["name"] == "unit"
        assert len(payload["rows"]) == 4
        # Run bookkeeping must NOT leak into the deterministic artifact.
        assert "executed" not in payload and "cached" not in payload
        md = open(paths[1]).read()
        assert md.count("\n| ") == 1 + 4  # header + one line per row
        assert "adapt-sr[0.9]" in md


class TestProtocolAxis:
    SPEC = TournamentSpec(
        name="proto-unit",
        tree="T3XS",
        nranks=16,
        selectors=("rand",),
        protocols=("steal", "forward[2]", "regions[4]"),
    )

    def test_protocol_axis_rows(self):
        tournament = run_tournament(self.SPEC)
        assert len(tournament.rows) == 3
        assert {row["protocol"] for row in tournament.rows} == {
            "steal",
            "fwd2",
            "reg4",
        }
        # The protocol tag is part of the label vocabulary too.
        tagged = [r for r in tournament.rows if r["protocol"] != "steal"]
        assert all("+" + r["protocol"] in r["label"] for r in tagged)

    def test_bad_protocol_spec_fails_fast(self):
        from repro.errors import RegistryError

        spec = TournamentSpec(
            name="bad",
            tree="T3XS",
            nranks=16,
            selectors=("rand",),
            protocols=("warp[2]",),
        )
        with pytest.raises(RegistryError):
            spec.configs()


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in PRESETS:
            assert name in out

    def test_smoke_run_and_require_cached(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        out = str(tmp_path / "art")
        args = ["--preset", "smoke", "--store", store, "--out", out]
        # Cold: simulates, so --require-cached must fail...
        assert main(args + ["--require-cached"]) == 1
        # ...and the warm rerun must be fully store-served.
        assert main(args + ["--require-cached"]) == 0
        assert os.path.exists(os.path.join(out, "tournament_smoke.json"))
