"""Tests for the lifeline-based load balancing extension."""

from __future__ import annotations

import pytest

from repro.core.config import WorkStealingConfig
from repro.errors import ConfigurationError
from repro.lifeline.worker import LifelineWorker, lifeline_partners
from repro.sim.cluster import Cluster
from repro.uts.params import T3XS
from repro.uts.sequential import sequential_count
from repro.ws import run_uts

SEQ = sequential_count(T3XS)


class TestPartnerGraph:
    def test_power_of_two_offsets(self):
        assert lifeline_partners(0, 16, 4) == [1, 2, 4, 8]

    def test_wraps(self):
        assert lifeline_partners(14, 16, 3) == [15, 0, 2]

    def test_never_self(self):
        for n in (2, 3, 5, 8, 17):
            for rank in range(n):
                assert rank not in lifeline_partners(rank, n, 6)

    def test_count_capped(self):
        assert len(lifeline_partners(0, 1024, 3)) == 3

    def test_small_world(self):
        assert lifeline_partners(0, 2, 5) == [1]

    def test_connectivity(self):
        """Following lifelines reaches every rank (work percolates)."""
        n = 32
        reached = {0}
        frontier = [0]
        while frontier:
            r = frontier.pop()
            for p in lifeline_partners(r, n, 5):
                if p not in reached:
                    reached.add(p)
                    frontier.append(p)
        assert reached == set(range(n))


class TestLifelineRuns:
    def test_conservation(self):
        r = run_uts(
            tree=T3XS, nranks=8, selector="rand", lifelines=2,
            lifeline_threshold=4,
        )
        assert r.total_nodes == SEQ.total_nodes

    def test_conservation_half_policy(self):
        r = run_uts(
            tree=T3XS, nranks=16, selector="tofu", steal_policy="half",
            lifelines=3, lifeline_threshold=2,
        )
        assert r.total_nodes == SEQ.total_nodes

    def test_reduces_failed_steals(self):
        """The scheme's whole point: idle ranks stop hammering."""
        base = run_uts(tree=T3XS, nranks=8, selector="rand", seed=1)
        life = run_uts(
            tree=T3XS, nranks=8, selector="rand", seed=1, lifelines=2,
            lifeline_threshold=4,
        )
        assert life.failed_steals < base.failed_steals / 2

    def test_workers_are_lifeline_class(self):
        cfg = WorkStealingConfig(tree=T3XS, nranks=4, lifelines=2)
        cluster = Cluster(cfg)
        assert all(isinstance(w, LifelineWorker) for w in cluster.workers)

    def test_pushes_and_quiesces_recorded(self):
        cfg = WorkStealingConfig(
            tree=T3XS, nranks=8, selector="rand", lifelines=2,
            lifeline_threshold=2,
        )
        cluster = Cluster(cfg)
        cluster.run()
        assert sum(w.quiesce_episodes for w in cluster.workers) > 0
        assert sum(w.lifeline_pushes for w in cluster.workers) > 0

    def test_determinism(self):
        a = run_uts(tree=T3XS, nranks=8, lifelines=2, seed=5)
        b = run_uts(tree=T3XS, nranks=8, lifelines=2, seed=5)
        assert a.total_time == b.total_time


class TestConfigValidation:
    def test_negative_lifelines(self):
        with pytest.raises(ConfigurationError):
            WorkStealingConfig(tree=T3XS, nranks=4, lifelines=-1)

    def test_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            WorkStealingConfig(tree=T3XS, nranks=4, lifeline_threshold=0)

    def test_disabled_by_default(self):
        cfg = WorkStealingConfig(tree=T3XS, nranks=4)
        assert cfg.lifelines == 0
        cluster = Cluster(cfg)
        assert not any(isinstance(w, LifelineWorker) for w in cluster.workers)
