"""Unit tests of the LifelineWorker state machine via a fake transport."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.steal_policy import StealOne
from repro.core.victim import UniformRandomSelector
from repro.lifeline.worker import LifelineWorker
from repro.sim.messages import (
    LifelineDeregister,
    LifelineRegister,
    StealRequest,
    StealResponse,
)
from repro.sim.worker import WorkerStatus
from repro.uts.params import TreeParams
from repro.uts.stack import Chunk
from repro.uts.tree import TreeGenerator

TREE = TreeParams(name="lw", tree_type="binomial", root_seed=3, b0=30, m=2, q=0.4)


class FakeTransport:
    def __init__(self):
        self.sent = []
        self.execs = []
        self.idles = []
        self.work_sends = []

    def send(self, src, dst, payload, when):
        self.sent.append((src, dst, payload, when))

    def schedule_exec(self, rank, when):
        self.execs.append((rank, when))

    def rank_became_idle(self, rank, when):
        self.idles.append((rank, when))

    def work_sent(self, rank):
        self.work_sends.append(rank)

    def local_time(self, rank, true_time):
        return true_time


def make_worker(rank=1, nranks=8, threshold=2, count=2):
    t = FakeTransport()
    w = LifelineWorker(
        rank=rank,
        nranks=nranks,
        generator=TreeGenerator(TREE),
        selector=UniformRandomSelector().make(rank, nranks, seed=0),
        policy=StealOne(),
        transport=t,
        chunk_size=5,
        poll_interval=4,
        per_node_time=1e-6,
        steal_service_time=1e-6,
        lifeline_count=count,
        lifeline_threshold=threshold,
    )
    return w, t


def full_chunk(start=0) -> Chunk:
    c = Chunk(5)
    c.push(
        np.arange(start, start + 5, dtype=np.uint64),
        np.full(5, 2, dtype=np.int32),
    )
    return c


class TestQuiescence:
    def test_quiesces_after_threshold_failures(self):
        w, t = make_worker(threshold=2)
        w.start(0.0)
        # Two failed responses reach the threshold.
        w.on_message(1.0, StealResponse(victim=2, chunks=None))
        assert not w._quiescent
        w.on_message(2.0, StealResponse(victim=3, chunks=None))
        assert w._quiescent
        assert w.quiesce_episodes == 1
        registers = [m for m in t.sent if isinstance(m[2], LifelineRegister)]
        assert len(registers) == len(w.partners)

    def test_no_requests_while_quiescent(self):
        w, t = make_worker(threshold=1)
        w.start(0.0)
        w.on_message(1.0, StealResponse(victim=2, chunks=None))
        n = len([m for m in t.sent if isinstance(m[2], StealRequest)])
        # Another failed response must not arrive (no request out), but
        # even if a stale one does, no new request is sent.
        w.on_message(2.0, StealResponse(victim=3, chunks=None))
        n2 = len([m for m in t.sent if isinstance(m[2], StealRequest)])
        assert n2 == n

    def test_wakeup_disarms(self):
        w, t = make_worker(threshold=1)
        w.start(0.0)
        w.on_message(1.0, StealResponse(victim=2, chunks=None))  # quiesce
        w.on_message(3.0, StealResponse(victim=4, chunks=[full_chunk()]))
        assert w.status is WorkerStatus.RUNNING
        assert not w._quiescent
        assert w.lifeline_wakeups == 1
        deregs = [m for m in t.sent if isinstance(m[2], LifelineDeregister)]
        assert len(deregs) == len(w.partners)


class TestPushes:
    def test_push_to_armed_waiter_at_poll(self):
        w, t = make_worker(rank=0)
        # Give the worker plenty of stealable work.
        w.stack.push_batch(
            np.arange(25, dtype=np.uint64), np.full(25, 2, dtype=np.int32)
        )
        w.status = WorkerStatus.RUNNING
        w.on_message(1.0, LifelineRegister(thief=5))
        assert w.waiters == [5]
        w.on_exec(2.0)
        pushes = [
            m for m in t.sent
            if isinstance(m[2], StealResponse) and m[2].has_work and m[1] == 5
        ]
        assert len(pushes) == 1
        assert w.lifeline_pushes == 1
        assert w.waiters == []
        assert t.work_sends == [0]

    def test_deregister_removes_waiter(self):
        w, _ = make_worker(rank=0)
        w.status = WorkerStatus.RUNNING
        w.stack.push_batch(
            np.arange(25, dtype=np.uint64), np.full(25, 2, dtype=np.int32)
        )
        w.on_message(1.0, LifelineRegister(thief=5))
        w.on_message(1.5, LifelineDeregister(thief=5))
        assert w.waiters == []

    def test_duplicate_register_ignored(self):
        w, _ = make_worker(rank=0)
        w.status = WorkerStatus.RUNNING
        w.stack.push_batch(
            np.arange(25, dtype=np.uint64), np.full(25, 2, dtype=np.int32)
        )
        w.on_message(1.0, LifelineRegister(thief=5))
        w.on_message(1.1, LifelineRegister(thief=5))
        assert w.waiters == [5]

    def test_spurious_push_while_running_merged(self):
        """A lifeline push racing the thief's own recovery is absorbed."""
        w, _ = make_worker(rank=0)
        w.status = WorkerStatus.RUNNING
        w.stack.push_batch(
            np.arange(5, dtype=np.uint64), np.full(5, 2, dtype=np.int32)
        )
        before = w.stack.size
        w.on_message(2.0, StealResponse(victim=3, chunks=[full_chunk(100)]))
        assert w.stack.size == before + 5
        assert w.status is WorkerStatus.RUNNING

    def test_no_push_without_stealable_work(self):
        w, t = make_worker(rank=0)
        w.status = WorkerStatus.RUNNING
        w.stack.push_batch(
            np.arange(3, dtype=np.uint64), np.full(3, 2, dtype=np.int32)
        )  # single private chunk only
        w.on_message(1.0, LifelineRegister(thief=5))
        w.on_exec(2.0)
        pushes = [
            m for m in t.sent if isinstance(m[2], StealResponse) and m[2].has_work
        ]
        assert pushes == []
        assert w.waiters == [5]  # still armed for later
