"""Tests for the public run API and result refinement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import WorkStealingConfig
from repro.errors import ReproError
from repro.uts.params import T3XS
from repro.uts.sequential import sequential_count
from repro.ws import RunResult, run_uts, sequential_baseline

SEQ = sequential_count(T3XS)


class TestRunApi:
    def test_kwargs_form(self):
        r = run_uts(tree=T3XS, nranks=4)
        assert isinstance(r, RunResult)
        assert r.total_nodes == SEQ.total_nodes

    def test_config_form(self):
        cfg = WorkStealingConfig(tree=T3XS, nranks=4, selector="rand")
        r = run_uts(cfg)
        assert r.selector == "rand"

    def test_mixing_forms_rejected(self):
        cfg = WorkStealingConfig(tree=T3XS, nranks=4)
        with pytest.raises(TypeError):
            run_uts(cfg, nranks=8)

    def test_missing_args_rejected(self):
        with pytest.raises(TypeError):
            run_uts(tree=T3XS)

    def test_custom_baseline(self):
        r = run_uts(tree=T3XS, nranks=4, baseline_time=1.0)
        assert r.baseline_time == 1.0
        assert r.speedup == pytest.approx(1.0 / r.total_time)


class TestSequentialBaseline:
    def test_matches_node_count(self):
        t1 = sequential_baseline(T3XS, node_time=1e-6)
        assert t1 == pytest.approx(SEQ.total_nodes * 1e-6)

    def test_scales_with_granularity(self):
        assert sequential_baseline(T3XS, compute_rounds=4) == pytest.approx(
            4 * sequential_baseline(T3XS)
        )

    def test_close_to_actual_single_rank_run(self):
        r = run_uts(tree=T3XS, nranks=1)
        t1 = sequential_baseline(T3XS)
        assert r.total_time == pytest.approx(t1, rel=0.01)


class TestRunResult:
    @pytest.fixture(scope="class")
    def result(self):
        return run_uts(tree=T3XS, nranks=8, selector="rand", trace=True)

    def test_headline_metrics(self, result):
        assert result.speedup > 1.0
        assert 0.0 < result.efficiency <= 1.2
        assert result.nodes_per_second > 0

    def test_default_baseline_is_extrapolation(self, result):
        assert result.baseline_time == pytest.approx(
            result.total_nodes * 1e-6
        )

    def test_steal_accounting(self, result):
        assert result.successful_steals > 0
        assert result.nodes_stolen > 0
        assert (
            result.failed_steals + result.successful_steals
            <= result.steal_requests
        )

    def test_per_rank_arrays(self, result):
        assert result.per_rank_nodes.shape == (8,)
        assert result.per_rank_nodes.sum() == result.total_nodes
        assert result.per_rank_search_time.shape == (8,)
        assert result.mean_search_time == pytest.approx(
            result.per_rank_search_time.mean()
        )

    def test_sessions(self, result):
        assert result.sessions.count >= 7
        assert result.mean_session_duration >= 0.0

    def test_occupancy_and_profile(self, result):
        curve = result.occupancy_curve()
        assert 0 < curve.max_workers <= 8
        profile = result.latency_profile()
        assert profile.occupancies.shape == profile.starting.shape
        # Profile is cached.
        assert result.latency_profile() is profile
        custom = result.latency_profile(np.array([0.5]))
        assert custom.occupancies.tolist() == [0.5]

    def test_summary_contains_label(self, result):
        assert "rand/one" in result.summary()

    def test_untraced_run_has_no_profile(self):
        r = run_uts(tree=T3XS, nranks=4)
        assert r.trace is None
        with pytest.raises(ReproError):
            r.occupancy_curve()
        with pytest.raises(ReproError):
            r.latency_profile()

    def test_skew_corrected_trace_valid(self):
        r = run_uts(
            tree=T3XS, nranks=8, trace=True, clock_skew_std=1e-4, seed=3
        )
        # The corrected trace must fit within the run and validate.
        curve = r.occupancy_curve()
        assert curve.max_workers >= 1
