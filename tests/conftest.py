"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.uts.params import T3XS, TreeParams
from repro.uts.rng import Sha1Backend, SplitMix64Backend


@pytest.fixture(params=["sha1", "splitmix64"])
def backend(request):
    """Run a test under both RNG backends."""
    return {"sha1": Sha1Backend, "splitmix64": SplitMix64Backend}[request.param]()


@pytest.fixture
def tiny_tree() -> TreeParams:
    """A few-thousand-node binomial tree, cheap enough for heavy loops."""
    return T3XS


@pytest.fixture
def micro_tree() -> TreeParams:
    """A few-hundred-node tree for tests that enumerate every node."""
    return TreeParams(
        name="MICRO", tree_type="binomial", root_seed=1, b0=20, m=2, q=0.40
    )
