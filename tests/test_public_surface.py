"""The package facade is the stable public surface.

``repro/__init__.py`` is the contract: everything the README's
quickstart imports must be there, and ``__all__`` must be importable
and exact.
"""

from __future__ import annotations

import re
from pathlib import Path

import repro

README = Path(__file__).resolve().parent.parent / "README.md"


class TestPublicSurface:
    def test_all_names_are_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_readme_quickstart_imports_are_public(self):
        """Every ``from repro import X, Y`` in the README must resolve."""
        names: set[str] = set()
        for match in re.finditer(
            r"^from repro import (.+)$", README.read_text(), re.MULTILINE
        ):
            names.update(n.strip() for n in match.group(1).split(","))
        assert names, "README lost its quickstart imports"
        missing = sorted(n for n in names if n not in repro.__all__)
        assert not missing, f"README imports missing from repro.__all__: {missing}"

    def test_canonical_run_surface(self):
        """The documented entry points, by their documented names."""
        for name in (
            "run_uts",
            "run_many",
            "run_service_sweep",
            "RunResult",
            "RunProgress",
            "WorkStealingConfig",
            "SimulationService",
            "SweepHandle",
            "Job",
            "JobState",
            "JobEvent",
            "JobFailure",
            "ResultCache",
            "ArtifactStore",
        ):
            assert name in repro.__all__, name

    def test_service_package_facade(self):
        import repro.service as service

        for name in service.__all__:
            assert getattr(service, name, None) is not None, name


