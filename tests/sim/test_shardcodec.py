"""Round-trip properties of the cross-shard wire codec.

``encode_entries -> decode_entries`` must reproduce the staged entry
tuples *exactly* — keys bit-for-bit (float64 times untouched), payloads
equal by value including chunk node states — because the multiprocess
sharded engine's bit-identity argument routes every cross-shard event
through this codec.
"""

from __future__ import annotations

import math
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.engine import EVT_EXEC, EVT_MSG
from repro.sim.messages import (
    BLACK,
    WHITE,
    Finish,
    LifelineDeregister,
    LifelineRegister,
    StealForward,
    StealRequest,
    StealResponse,
    Token,
)
from repro.sim.shardcodec import (
    CHUNK_DT,
    MSG_DT,
    TAG_RAW,
    decode_entries,
    encode_entries,
    min_entry_key,
)
from repro.uts.stack import Chunk

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

ranks = st.integers(min_value=0, max_value=2**20)
seqs = st.integers(min_value=0, max_value=2**40)
# Finite positive float64 times, including awkward tiny/huge magnitudes.
times = st.floats(
    min_value=0.0,
    max_value=1e12,
    allow_nan=False,
    allow_infinity=False,
    allow_subnormal=False,
)

states = st.integers(min_value=0, max_value=2**64 - 1)
depths = st.integers(min_value=0, max_value=2**31 - 1)


@st.composite
def chunks(draw):
    n = draw(st.integers(min_value=0, max_value=8))
    cap = draw(st.integers(min_value=max(n, 1), max_value=n + 8))
    return Chunk.from_lists(
        draw(st.lists(states, min_size=n, max_size=n)),
        draw(st.lists(depths, min_size=n, max_size=n)),
        cap,
    )


class _OpaquePayload:
    """A payload type the codec has no compact encoding for."""

    def __init__(self, blob):
        self.blob = blob

    def __eq__(self, other):
        return type(other) is _OpaquePayload and other.blob == self.blob

    __hash__ = object.__hash__


payloads = st.one_of(
    st.builds(StealRequest, thief=ranks, escalated=st.booleans()),
    st.builds(
        StealForward,
        thief=ranks,
        escalated=st.booleans(),
        ttl=st.integers(min_value=0, max_value=2**30),
        visited=st.lists(ranks, max_size=6).map(tuple),
    ),
    st.builds(
        StealResponse,
        victim=ranks,
        chunks=st.one_of(
            st.none(), st.lists(chunks(), min_size=0, max_size=4)
        ),
    ),
    st.builds(Token, color=st.sampled_from([WHITE, BLACK])),
    st.builds(Finish),
    st.builds(LifelineRegister, thief=ranks),
    st.builds(LifelineDeregister, thief=ranks),
    st.builds(_OpaquePayload, blob=st.binary(max_size=32)),
)


@st.composite
def entries(draw):
    return (
        draw(times),
        draw(ranks),
        draw(seqs),
        EVT_MSG,
        draw(ranks),
        draw(payloads),
    )


outboxes = st.lists(entries(), min_size=0, max_size=32)


# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(outboxes)
def test_roundtrip_identity(box):
    decoded = decode_entries(encode_entries(box))
    assert len(decoded) == len(box)
    for orig, back in zip(box, decoded):
        # Keys bit-for-bit: == on floats plus a repr check to rule out
        # any widening/narrowing on the wire.
        assert back[:5] == orig[:5]
        assert math.copysign(1.0, back[0]) == math.copysign(1.0, orig[0])
        assert repr(back[0]) == repr(orig[0])
        assert back[5] == orig[5]
        assert type(back[5]) is type(orig[5])


@settings(max_examples=100, deadline=None)
@given(outboxes)
def test_roundtrip_preserves_order_and_min_key(box):
    decoded = decode_entries(encode_entries(box))
    assert [e[:3] for e in decoded] == [e[:3] for e in box]
    if box:
        assert min_entry_key(box) == min((e[0], e[1], e[2]) for e in box)


@settings(max_examples=100, deadline=None)
@given(st.lists(chunks(), min_size=1, max_size=6), times, ranks, seqs)
def test_chunk_payloads_roundtrip_node_exact(chunk_list, t, src, seq):
    box = [(t, src, seq, EVT_MSG, 1, StealResponse(0, chunk_list))]
    (back,) = decode_entries(encode_entries(box))
    got = back[5].chunks
    assert len(got) == len(chunk_list)
    for orig, new in zip(chunk_list, got):
        assert new.states == orig.states
        assert new.depths == orig.depths
        assert new.capacity == orig.capacity
        assert new.size == orig.size


def test_empty_outbox():
    assert decode_entries(encode_entries([])) == []


def test_steal_forward_roundtrips_exactly():
    # The forward's visited set rides the pickle extra section while
    # ttl+escalated pack into the `b` slot; both halves must survive.
    fwd = StealForward(thief=7, escalated=True, ttl=3, visited=(7, 2, 5))
    box = [(0.25, 1, 2, EVT_MSG, 5, fwd)]
    (back,) = decode_entries(encode_entries(box))
    got = back[5]
    assert type(got) is StealForward
    assert got.thief == 7
    assert got.escalated is True
    assert got.ttl == 3
    assert got.visited == (7, 2, 5)
    assert isinstance(got.visited, tuple)


def test_raw_escape_used_only_for_unknown_payloads():
    import numpy as np

    box = [
        (0.5, 1, 2, EVT_MSG, 3, Token(WHITE)),
        (0.5, 1, 3, EVT_MSG, 3, _OpaquePayload(b"x")),
    ]
    blob = encode_entries(box)
    header = 4 + 5 * 8  # magic + five u8 section lengths
    msgs = np.frombuffer(
        blob[header : header + 2 * MSG_DT.itemsize], MSG_DT
    )
    assert list(msgs["tag"]) != [TAG_RAW, TAG_RAW]
    assert TAG_RAW in msgs["tag"]
    assert decode_entries(blob) == box


def test_exec_entries_are_rejected():
    with pytest.raises(SimulationError):
        encode_entries([(0.0, 0, 0, EVT_EXEC, 0, None)])


def test_corrupt_magic_rejected():
    blob = encode_entries([(0.0, 0, 0, EVT_MSG, 1, Finish())])
    with pytest.raises(SimulationError):
        decode_entries(b"XXXX" + blob[4:])


def test_blob_is_flat_not_pickled_for_compact_payloads():
    # The whole point: chunk-carrying responses must not drag Chunk
    # object graphs through pickle (the decode cost dominates the
    # window transport).  For compact payloads the blob is exactly the
    # four flat sections plus the empty-list escape sentinel — nothing
    # object-shaped on the wire.
    import struct

    box = [
        (
            float(i),
            0,
            i,
            EVT_MSG,
            1,
            StealResponse(
                0,
                [
                    Chunk.from_lists(
                        list(range(i * 100, i * 100 + 100)),
                        [3] * 100,
                        128,
                    )
                ],
            ),
        )
        for i in range(16)
    ]
    blob = encode_entries(box)
    magic, n_msgs, n_chunks, n_states, n_depths, n_extra = struct.unpack_from(
        "<4s5Q", blob, 0
    )
    assert magic == b"SHC1"
    assert n_msgs == 16 * MSG_DT.itemsize
    assert n_chunks == 16 * CHUNK_DT.itemsize
    assert n_states == 16 * 100 * 8  # raw <u8 node states
    assert n_depths == 16 * 100 * 4  # raw <i4 depths
    assert n_extra == len(pickle.dumps([]))  # escape section unused
    assert len(blob) == 44 + n_msgs + n_chunks + n_states + n_depths + n_extra


def test_dtype_layout_is_pinned():
    # The wire format is cross-process ABI; catching accidental dtype
    # edits here beats debugging divergent child state.
    assert MSG_DT.itemsize == 54
    assert CHUNK_DT.itemsize == 8
    assert [name for name, *_ in MSG_DT.descr] == [
        "time", "src", "seq", "dst", "tag", "a", "b", "nchunks",
    ]
