"""Tests for the clock-skew model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import ClockSkewModel


class TestDisabled:
    def test_zero_std_zero_offsets(self):
        clock = ClockSkewModel(8, std=0.0)
        assert not clock.enabled
        assert np.all(clock.offsets == 0.0)
        assert clock.local_time(3, 42.0) == 42.0


class TestEnabled:
    def test_offsets_deterministic(self):
        a = ClockSkewModel(8, std=1e-3, seed=5)
        b = ClockSkewModel(8, std=1e-3, seed=5)
        assert np.array_equal(a.offsets, b.offsets)

    def test_different_seeds_differ(self):
        a = ClockSkewModel(8, std=1e-3, seed=5)
        b = ClockSkewModel(8, std=1e-3, seed=6)
        assert not np.array_equal(a.offsets, b.offsets)

    def test_local_time_applies_offset(self):
        clock = ClockSkewModel(4, std=1e-3, seed=0)
        for rank in range(4):
            assert clock.local_time(rank, 10.0) == pytest.approx(
                10.0 + clock.offsets[rank]
            )

    def test_offsets_scale_with_std(self):
        small = ClockSkewModel(100, std=1e-6, seed=1)
        large = ClockSkewModel(100, std=1e-3, seed=1)
        assert np.abs(large.offsets).mean() > np.abs(small.offsets).mean()


class TestValidation:
    def test_bad_nranks(self):
        with pytest.raises(ConfigurationError):
            ClockSkewModel(0)

    def test_bad_std(self):
        with pytest.raises(ConfigurationError):
            ClockSkewModel(4, std=-1.0)
