"""Tests for the event queue."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import EVT_EXEC, EVT_MSG, EventQueue


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(3.0, EVT_EXEC, 0)
        q.push(1.0, EVT_EXEC, 1)
        q.push(2.0, EVT_EXEC, 2)
        ranks = [q.pop()[2] for _ in range(3)]
        assert ranks == [1, 2, 0]

    def test_fifo_among_equal_times(self):
        q = EventQueue()
        for rank in range(5):
            q.push(1.0, EVT_MSG, rank, f"m{rank}")
        assert [q.pop()[2] for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        q = EventQueue()
        q.push(5.0, EVT_EXEC, 0)
        assert q.now == 0.0
        q.pop()
        assert q.now == 5.0

    def test_payload_roundtrip(self):
        q = EventQueue()
        payload = {"x": 1}
        q.push(1.0, EVT_MSG, 7, payload)
        time, kind, rank, got = q.pop()
        assert (time, kind, rank) == (1.0, EVT_MSG, 7)
        assert got is payload


class TestValidation:
    def test_push_into_past_rejected(self):
        q = EventQueue()
        q.push(5.0, EVT_EXEC, 0)
        q.pop()
        with pytest.raises(SimulationError):
            q.push(4.0, EVT_EXEC, 0)

    def test_push_at_now_ok(self):
        q = EventQueue()
        q.push(5.0, EVT_EXEC, 0)
        q.pop()
        q.push(5.0, EVT_EXEC, 0)  # same instant is fine

    def test_pop_empty(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_event_budget(self):
        q = EventQueue(max_events=3)
        for _ in range(4):
            q.push(1.0, EVT_EXEC, 0)
        q.pop()
        q.pop()
        q.pop()
        with pytest.raises(SimulationError):
            q.pop()

    def test_bad_budget(self):
        with pytest.raises(SimulationError):
            EventQueue(max_events=0)


class TestBookkeeping:
    def test_pending_and_processed(self):
        q = EventQueue()
        q.push(1.0, EVT_EXEC, 0)
        q.push(2.0, EVT_EXEC, 0)
        assert q.pending == 2
        assert q.processed == 0
        q.pop()
        assert q.pending == 1
        assert q.processed == 1

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, EVT_EXEC, 0)
        q.push(2.0, EVT_EXEC, 0)
        assert q.clear() == 2
        assert q.empty

    def test_empty_property(self):
        q = EventQueue()
        assert q.empty
        q.push(1.0, EVT_EXEC, 0)
        assert not q.empty
