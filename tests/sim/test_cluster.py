"""Integration tests: full simulations, end to end.

The central invariant — the strongest test in the suite — is node
conservation: the distributed traversal must count exactly the same
tree the sequential traversal counts, for every victim selector, steal
policy, allocation and rank count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import WorkStealingConfig
from repro.core.metrics import OccupancyCurve
from repro.core.tracing import ActivityTrace
from repro.sim.cluster import Cluster
from repro.sim.worker import WorkerStatus
from repro.uts.params import GEO_S, T3XS, TreeParams
from repro.uts.sequential import sequential_count

SEQ_T3XS = sequential_count(T3XS)


def run(tree=T3XS, **kw) -> tuple:
    cfg = WorkStealingConfig(tree=tree, **kw)
    return Cluster(cfg).run(), cfg


class TestConservation:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 4, 8, 16, 33])
    def test_across_rank_counts(self, nranks):
        out, _ = run(nranks=nranks)
        assert out.total_nodes == SEQ_T3XS.total_nodes

    @pytest.mark.parametrize(
        "selector", ["reference", "rand", "tofu", "skew[2]", "hierarchical", "lastvictim"]
    )
    def test_across_selectors(self, selector):
        out, _ = run(nranks=8, selector=selector)
        assert out.total_nodes == SEQ_T3XS.total_nodes

    @pytest.mark.parametrize("policy", ["one", "half", "frac[0.3]"])
    def test_across_policies(self, policy):
        out, _ = run(nranks=8, steal_policy=policy)
        assert out.total_nodes == SEQ_T3XS.total_nodes

    @pytest.mark.parametrize("alloc", ["1/N", "8RR", "8G", "1/N@x4"])
    def test_across_allocations(self, alloc):
        out, _ = run(nranks=16, allocation=alloc)
        assert out.total_nodes == SEQ_T3XS.total_nodes

    def test_geometric_tree(self):
        seq = sequential_count(GEO_S)
        out, _ = run(tree=GEO_S, nranks=8, selector="rand")
        assert out.total_nodes == seq.total_nodes

    def test_sha1_backend(self):
        seq = sequential_count(T3XS, backend=None)
        from repro.uts.rng import Sha1Backend

        seq_sha = sequential_count(T3XS, backend=Sha1Backend())
        out, _ = run(nranks=4, rng_backend="sha1")
        assert out.total_nodes == seq_sha.total_nodes

    def test_with_contention_and_skew(self):
        out, _ = run(
            nranks=8,
            nic_service_time=5e-7,
            clock_skew_std=1e-5,
            trace=True,
        )
        assert out.total_nodes == SEQ_T3XS.total_nodes

    @pytest.mark.parametrize("chunk_size", [1, 5, 20, 100])
    def test_across_chunk_sizes(self, chunk_size):
        out, _ = run(nranks=8, chunk_size=chunk_size)
        assert out.total_nodes == SEQ_T3XS.total_nodes

    @pytest.mark.parametrize("poll", [1, 3, 50])
    def test_across_poll_intervals(self, poll):
        out, _ = run(nranks=8, poll_interval=poll)
        assert out.total_nodes == SEQ_T3XS.total_nodes


class TestDeterminism:
    def test_same_config_same_run(self):
        a, _ = run(nranks=8, selector="rand", seed=3)
        b, _ = run(nranks=8, selector="rand", seed=3)
        assert a.total_time == b.total_time
        assert a.events_processed == b.events_processed
        for wa, wb in zip(a.workers, b.workers):
            assert wa.nodes_processed == wb.nodes_processed
            assert wa.failed_steals == wb.failed_steals

    def test_different_seed_different_run(self):
        a, _ = run(nranks=8, selector="rand", seed=3)
        b, _ = run(nranks=8, selector="rand", seed=4)
        # Random victim choices differ -> schedules differ.
        assert any(
            wa.nodes_processed != wb.nodes_processed
            for wa, wb in zip(a.workers, b.workers)
        )


class TestTerminationEndToEnd:
    def test_all_workers_done(self):
        out, _ = run(nranks=8)
        for w in out.workers:
            assert w.status is WorkerStatus.DONE
            assert w.stack.is_empty
            assert w.finish_time is not None

    def test_finish_times_ordered_by_latency(self):
        out, _ = run(nranks=8)
        t0 = out.workers[0].finish_time
        assert all(w.finish_time >= t0 for w in out.workers)
        assert out.total_time == max(w.finish_time for w in out.workers)

    def test_single_rank(self):
        out, _ = run(nranks=1)
        assert out.total_nodes == SEQ_T3XS.total_nodes
        assert out.workers[0].failed_steals == 0
        assert out.total_time == pytest.approx(
            SEQ_T3XS.total_nodes * 1e-6, rel=0.01
        )

    def test_probes_reported(self):
        out, _ = run(nranks=8)
        assert out.probes_started >= 1


class TestSpeedup:
    def test_parallel_faster_than_serial(self):
        t1 = run(nranks=1)[0].total_time
        t8 = run(nranks=8)[0].total_time
        assert t8 < t1 / 2  # at least 2x on 8 ranks

    def test_work_is_distributed(self):
        out, _ = run(nranks=8)
        sharers = sum(1 for w in out.workers if w.nodes_processed > 0)
        assert sharers == 8


class TestTraces:
    def test_trace_validates_and_occupancy_sane(self):
        out, _ = run(nranks=8, trace=True)
        trace = ActivityTrace.from_recorders(out.recorders)
        curve = OccupancyCurve(trace, 8, out.total_time)
        assert 0 < curve.max_workers <= 8
        assert 0.0 < curve.average_occupancy() <= 1.0

    def test_no_trace_by_default(self):
        out, _ = run(nranks=4)
        assert out.recorders is None

    def test_skewed_trace_corrects_back(self):
        out, _ = run(nranks=8, trace=True, clock_skew_std=1e-4, seed=7)
        raw = ActivityTrace.from_recorders(out.recorders)
        corrected = raw.corrected(out.clock.offsets)
        # Corrected trace fits inside the run; raw one may not.
        curve = OccupancyCurve(
            corrected, 8, out.total_time + 1e-9
        )
        assert curve.max_workers >= 1

    def test_busy_time_close_to_work_time(self):
        out, cfg = run(nranks=4, trace=True)
        trace = ActivityTrace.from_recorders(out.recorders)
        for w in out.workers:
            busy = trace.busy_time(w.rank, out.total_time)
            work = w.nodes_processed * cfg.per_node_time
            # Busy phases include steal servicing, so busy >= work.
            assert busy >= work * 0.99


class TestSessions:
    def test_sessions_recorded(self):
        out, _ = run(nranks=8)
        total_sessions = sum(len(w.sessions) for w in out.workers)
        assert total_sessions >= 7  # everyone but rank 0 searches at start

    def test_final_sessions_unsuccessful(self):
        out, _ = run(nranks=8)
        for w in out.workers:
            if w.sessions:
                assert not w.sessions[-1].found_work  # closed by Finish

    def test_search_time_bounded_by_runtime(self):
        out, _ = run(nranks=8)
        for w in out.workers:
            assert 0.0 <= w.search_time <= out.total_time * (1 + 1e-9)


class TestStats:
    def test_steal_accounting_balances(self):
        out, _ = run(nranks=8)
        served = sum(w.requests_served for w in out.workers)
        succeeded = sum(w.successful_steals for w in out.workers)
        assert served == succeeded
        sent_nodes = sum(w.nodes_sent for w in out.workers)
        recv_nodes = sum(w.nodes_received for w in out.workers)
        assert sent_nodes == recv_nodes

    def test_failed_bounded_by_requests(self):
        out, _ = run(nranks=8)
        for w in out.workers:
            assert (
                w.failed_steals + w.successful_steals <= w.steal_requests_sent
            )

    def test_node_cap_enforced(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            run(nranks=4, node_cap=100)
