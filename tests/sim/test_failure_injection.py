"""Failure injection: the simulator must fail loudly, never wedge or
silently lose work.

Real MPI gives reliable delivery, so the production protocol assumes
it; these tests break that assumption on purpose and check that the
simulator's guard rails (event budget, drained-queue detection,
termination validation) catch the damage instead of producing a
plausible-looking wrong result.
"""

from __future__ import annotations

import pytest

from repro.core.config import WorkStealingConfig
from repro.errors import SimulationError, TerminationError
from repro.sim.cluster import Cluster
from repro.sim.messages import StealRequest, StealResponse, Token
from repro.uts.params import T3XS


def _cfg(**kw):
    return WorkStealingConfig(tree=T3XS, nranks=4, **kw)


class TestEventBudget:
    def test_tiny_budget_raises(self):
        with pytest.raises(SimulationError):
            Cluster(_cfg(), max_events=50).run()

    def test_adequate_budget_passes(self):
        out = Cluster(_cfg(), max_events=10_000_000).run()
        assert out.total_nodes > 0


class TestMessageLoss:
    def _lossy_cluster(self, drop_type, drop_every=3):
        cluster = Cluster(_cfg(), max_events=5_000_000)
        original_send = cluster.send
        state = {"count": 0}

        def lossy_send(src, dst, payload, when):
            if isinstance(payload, drop_type):
                state["count"] += 1
                if state["count"] % drop_every == 0:
                    return  # message silently lost
            original_send(src, dst, payload, when)

        cluster.send = lossy_send  # type: ignore[method-assign]
        for w in cluster.workers:
            w.transport = cluster  # workers call cluster.send via transport
        # Workers keep a direct reference to the cluster, so patching
        # the bound attribute is enough.
        return cluster

    def test_dropped_responses_detected(self):
        """Losing steal responses strands thieves; the run must end in
        a TerminationError (queue drained, no termination), never hang
        or return a partial count as success."""
        cluster = self._lossy_cluster(StealResponse, drop_every=2)
        with pytest.raises((TerminationError, SimulationError)):
            cluster.run()

    def test_dropped_tokens_detected(self):
        """Losing the termination token leaves idle thieves pinging
        forever; the event budget converts the livelock into an error."""
        cluster = self._lossy_cluster(Token, drop_every=1)
        cluster.engine._max_events = 2_000_000
        with pytest.raises((TerminationError, SimulationError)):
            cluster.run()


class TestStateCorruption:
    def test_duplicate_token_detected(self):
        """Injecting a forged token trips the protocol's own check."""
        cfg = _cfg()
        cluster = Cluster(cfg)
        det = cluster.termination
        det.rank_idle(0)  # probe started, token heading to rank 1
        det.token_arrived(1, 0, is_idle=False)
        with pytest.raises(TerminationError):
            det.token_arrived(1, 0, is_idle=False)  # forged duplicate

    def test_node_cap_stops_runaway(self):
        with pytest.raises(SimulationError):
            Cluster(_cfg(node_cap=50)).run()
