"""Differential suite: sharded engine vs sequential, bit for bit.

The sharded engine's contract (`repro.sim.shard`) is not statistical
equivalence but *bit-identity*: same SimOutcome metrics, same per-rank
worker counters, same canonical trace bytes, for every configuration
the sequential engine accepts (minus NIC contention, rejected at
config time).  These tests enforce that across the full selector and
steal-policy registries, shard counts 1-8, aligned and non-aligned
allocations, and both the in-process and multi-process drivers.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.config import WorkStealingConfig
from repro.errors import ConfigurationError
from repro.net.latency import UniformLatency
from repro.sim.cluster import Cluster
from repro.sim.shard import ShardedCluster, auto_shards, shard_bounds
from repro.uts.params import T3XS
from repro.ws import run_uts
from repro.ws.results import RunResult

SELECTORS = [
    "reference",
    "rand",
    "tofu",
    "hierarchical",
    "lastvictim",
    "skew[1.5]",
    "hier[0.7]",
    "latskew[1.0]",
    "adapt-eps[0.2]",
    "adapt-sr[0.9]",
    "adapt-backoff[2]",
]
POLICIES = ["one", "half", "frac[0.3]", "adaptive[2]"]

ADAPTIVE_SELECTORS = ["adapt-eps[0.2]", "adapt-sr[0.9]", "adapt-backoff[2]"]


def _config(**kw) -> WorkStealingConfig:
    kw.setdefault("tree", T3XS)
    kw.setdefault("nranks", 16)
    kw.setdefault("event_trace", True)
    return WorkStealingConfig(**kw)


_SEQ_CACHE: dict = {}


def _sequential(cfg: WorkStealingConfig) -> RunResult:
    key = (cfg.fingerprint(), cfg.trace, cfg.event_trace)
    if key not in _SEQ_CACHE:
        _SEQ_CACHE[key] = RunResult.from_outcome(Cluster(cfg).run())
    return _SEQ_CACHE[key]


def assert_identical(cfg: WorkStealingConfig, shards: int, workers: int = 1):
    """Run both engines and compare every observable, bit for bit."""
    seq = _sequential(cfg)
    sharded_cfg = replace(
        cfg, engine="sharded", shards=shards, shard_workers=workers
    )
    sh = RunResult.from_outcome(ShardedCluster(sharded_cfg).run())
    assert seq.to_dict() == sh.to_dict()
    if seq.events is not None:
        assert seq.events.canonical_bytes() == sh.events.canonical_bytes()
    if seq.trace is not None:
        assert sh.trace is not None
        for (ta, sa), (tb, sb) in zip(
            seq.trace.transitions, sh.trace.transitions
        ):
            assert np.array_equal(ta, tb)
            assert np.array_equal(sa, sb)


class TestPartition:
    def test_auto_shards_scales_with_ranks(self):
        assert auto_shards(16) == 1
        assert auto_shards(1024) == 2
        assert auto_shards(4096) == 8
        assert auto_shards(1 << 20) == 16

    def test_bounds_cover_contiguously(self):
        bounds, aligned = shard_bounds(16, 4, np.arange(16))
        assert bounds == [0, 4, 8, 12, 16]
        assert aligned

    def test_bounds_snap_to_node_boundaries(self):
        # 3 ranks per node: ideal cut 8 falls inside a node -> snaps to 6.
        rank_nodes = np.repeat(np.arange(6), 3)[:16]
        bounds, aligned = shard_bounds(16, 2, rank_nodes)
        assert aligned
        cut = bounds[1]
        assert rank_nodes[cut] != rank_nodes[cut - 1]

    def test_interleaved_nodes_are_not_aligned(self):
        # Round-robin [0,1,0,1,...]: every adjacent pair changes node,
        # yet every node spans every shard — must NOT count as aligned
        # (the wide lookahead window would be unsound).
        bounds, aligned = shard_bounds(16, 4, np.array([0, 1] * 8))
        assert not aligned

    def test_single_node_not_aligned(self):
        _, aligned = shard_bounds(8, 4, np.zeros(8, dtype=int))
        assert not aligned

    def test_single_shard_trivially_aligned(self):
        bounds, aligned = shard_bounds(8, 1, np.zeros(8, dtype=int))
        assert bounds == [0, 8]
        assert aligned


class TestConfigValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            _config(engine="warp")

    def test_sharded_with_nic_contention_rejected(self):
        with pytest.raises(ConfigurationError):
            _config(engine="sharded", nic_service_time=1e-7)

    def test_engine_knobs_excluded_from_fingerprint(self):
        base = _config()
        assert (
            base.fingerprint()
            == replace(base, engine="sharded", shards=4).fingerprint()
        )

    def test_zero_lookahead_model_rejected(self):
        class Zero(UniformLatency):
            def min_remote_latency(self):
                return 0.0

            def min_any_latency(self):
                return 0.0

        cfg = _config(latency_model=Zero())
        with pytest.raises(ConfigurationError, match="lookahead"):
            ShardedCluster(replace(cfg, engine="sharded", shards=2))


class TestDifferentialMatrix:
    """The core bit-identity guarantee across the strategy registries."""

    @pytest.mark.parametrize("selector", SELECTORS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_selector_policy_matrix(self, selector, policy):
        assert_identical(
            _config(selector=selector, steal_policy=policy), shards=2
        )

    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_shard_counts(self, shards):
        assert_identical(_config(), shards=shards)

    @pytest.mark.parametrize("alloc", ["1/N", "8RR", "8G", "4G", "1/N@x4"])
    def test_allocations_aligned_and_not(self, alloc):
        assert_identical(_config(allocation=alloc), shards=4)

    def test_lifelines(self):
        assert_identical(_config(lifelines=2), shards=4)

    def test_clock_skew_and_activity_trace(self):
        assert_identical(
            _config(clock_skew_std=1e-7, trace=True), shards=4
        )

    def test_uniform_latency_model(self):
        assert_identical(
            _config(latency_model=UniformLatency(5e-6)), shards=4
        )

    def test_odd_rank_count(self):
        assert_identical(_config(nranks=13), shards=4)

    def test_single_rank(self):
        assert_identical(_config(nranks=1), shards=1)


class TestAdaptiveDifferential:
    """Feedback-driven selectors must see the *same* notify stream in
    both engines: any divergence in adaptive state shows up here as a
    victim-sequence (hence trace/counter) mismatch."""

    @pytest.mark.parametrize("selector", ADAPTIVE_SELECTORS)
    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_shard_counts(self, selector, shards):
        assert_identical(
            _config(selector=selector, steal_policy="adaptive[2]"),
            shards=shards,
        )

    @pytest.mark.parametrize("selector", ADAPTIVE_SELECTORS)
    def test_multiprocess(self, selector):
        assert_identical(
            _config(selector=selector, steal_policy="adaptive[2]"),
            shards=4,
            workers=2,
        )

    def test_adaptive_with_lifelines(self):
        # Lifeline pushes notify(success=True) for victims the selector
        # never drew; the adaptive state must digest them identically.
        assert_identical(
            _config(
                selector="adapt-backoff[2]",
                steal_policy="adaptive[2]",
                lifelines=2,
            ),
            shards=4,
        )

    def test_adaptive_policy_non_aligned_allocation(self):
        assert_identical(
            _config(selector="adapt-eps[0.2]", steal_policy="adaptive[2]",
                    allocation="8RR"),
            shards=4,
        )


class TestMultiProcess:
    """Same guarantee when shards are distributed over OS processes."""

    @pytest.mark.parametrize("shards,workers", [(2, 2), (4, 2), (4, 4)])
    def test_multiprocess_matches_sequential(self, shards, workers):
        assert_identical(_config(), shards=shards, workers=workers)

    def test_multiprocess_with_traces(self):
        assert_identical(
            _config(trace=True, clock_skew_std=1e-7),
            shards=4,
            workers=2,
        )

    def test_multiprocess_lifelines(self):
        assert_identical(_config(lifelines=2), shards=4, workers=2)


class TestRunnerRouting:
    def test_run_uts_routes_sharded_engine(self):
        seq = run_uts(tree=T3XS, nranks=16, event_trace=True)
        sh = run_uts(
            tree=T3XS,
            nranks=16,
            event_trace=True,
            engine="sharded",
            shards=4,
        )
        assert seq.to_dict() == sh.to_dict()
        assert seq.events.canonical_bytes() == sh.events.canonical_bytes()
