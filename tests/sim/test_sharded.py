"""Differential suite: sharded engine vs sequential, bit for bit.

The sharded engine's contract (`repro.sim.shard`) is not statistical
equivalence but *bit-identity*: same SimOutcome metrics, same per-rank
worker counters, same canonical trace bytes, for every configuration
the sequential engine accepts (minus NIC contention, rejected at
config time).  These tests enforce that across the full selector and
steal-policy registries, shard counts 1-8, aligned and non-aligned
allocations, and both the in-process and multi-process drivers.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.core.config import WorkStealingConfig
from repro.errors import ConfigurationError, SimulationError
from repro.net.latency import UniformLatency
from repro.sim import shard as shard_mod
from repro.sim.cluster import Cluster
from repro.sim.shard import (
    ShardedCluster,
    auto_shard_workers,
    auto_shards,
    shard_bounds,
)
from repro.uts.params import T3XS
from repro.ws import run_uts
from repro.ws.results import RunResult

SELECTORS = [
    "reference",
    "rand",
    "tofu",
    "hierarchical",
    "lastvictim",
    "skew[1.5]",
    "hier[0.7]",
    "latskew[1.0]",
    "adapt-eps[0.2]",
    "adapt-sr[0.9]",
    "adapt-backoff[2]",
]
POLICIES = ["one", "half", "frac[0.3]", "adaptive[2]"]

ADAPTIVE_SELECTORS = ["adapt-eps[0.2]", "adapt-sr[0.9]", "adapt-backoff[2]"]


def _config(**kw) -> WorkStealingConfig:
    kw.setdefault("tree", T3XS)
    kw.setdefault("nranks", 16)
    kw.setdefault("event_trace", True)
    return WorkStealingConfig(**kw)


_SEQ_CACHE: dict = {}


def _sequential(cfg: WorkStealingConfig) -> RunResult:
    key = (cfg.fingerprint(), cfg.trace, cfg.event_trace)
    if key not in _SEQ_CACHE:
        _SEQ_CACHE[key] = RunResult.from_outcome(Cluster(cfg).run())
    return _SEQ_CACHE[key]


@contextlib.contextmanager
def engine_flags(**flags):
    """Pin the sharded engine's optimisation flags for one run.

    Children of the multiprocess driver inherit the patched module
    globals under the fork start method, so this drives both drivers.
    """
    saved = {name: getattr(shard_mod, name) for name in flags}
    for name, value in flags.items():
        setattr(shard_mod, name, value)
    try:
        yield
    finally:
        for name, value in saved.items():
            setattr(shard_mod, name, value)


def assert_identical(
    cfg: WorkStealingConfig,
    shards: int,
    workers: int = 1,
    transport: str = "pipe",
):
    """Run both engines and compare every observable, bit for bit."""
    seq = _sequential(cfg)
    sharded_cfg = replace(
        cfg,
        engine="sharded",
        shards=shards,
        shard_workers=workers,
        shard_transport=transport,
    )
    sh = RunResult.from_outcome(ShardedCluster(sharded_cfg).run())
    assert seq.to_dict() == sh.to_dict()
    if seq.events is not None:
        assert seq.events.canonical_bytes() == sh.events.canonical_bytes()
    if seq.trace is not None:
        assert sh.trace is not None
        for (ta, sa), (tb, sb) in zip(
            seq.trace.transitions, sh.trace.transitions
        ):
            assert np.array_equal(ta, tb)
            assert np.array_equal(sa, sb)


class TestPartition:
    def test_auto_shards_scales_with_ranks(self):
        assert auto_shards(16) == 1
        assert auto_shards(1024) == 2
        assert auto_shards(4096) == 8
        assert auto_shards(1 << 20) == 16

    def test_bounds_cover_contiguously(self):
        bounds, aligned = shard_bounds(16, 4, np.arange(16))
        assert bounds == [0, 4, 8, 12, 16]
        assert aligned

    def test_bounds_snap_to_node_boundaries(self):
        # 3 ranks per node: ideal cut 8 falls inside a node -> snaps to 6.
        rank_nodes = np.repeat(np.arange(6), 3)[:16]
        bounds, aligned = shard_bounds(16, 2, rank_nodes)
        assert aligned
        cut = bounds[1]
        assert rank_nodes[cut] != rank_nodes[cut - 1]

    def test_interleaved_nodes_are_not_aligned(self):
        # Round-robin [0,1,0,1,...]: every adjacent pair changes node,
        # yet every node spans every shard — must NOT count as aligned
        # (the wide lookahead window would be unsound).
        bounds, aligned = shard_bounds(16, 4, np.array([0, 1] * 8))
        assert not aligned

    def test_single_node_not_aligned(self):
        _, aligned = shard_bounds(8, 4, np.zeros(8, dtype=int))
        assert not aligned

    def test_single_shard_trivially_aligned(self):
        bounds, aligned = shard_bounds(8, 1, np.zeros(8, dtype=int))
        assert bounds == [0, 8]
        assert aligned


class TestConfigValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            _config(engine="warp")

    def test_sharded_with_nic_contention_rejected(self):
        with pytest.raises(ConfigurationError):
            _config(engine="sharded", nic_service_time=1e-7)

    def test_engine_knobs_excluded_from_fingerprint(self):
        base = _config()
        assert (
            base.fingerprint()
            == replace(base, engine="sharded", shards=4).fingerprint()
        )

    def test_zero_lookahead_model_rejected(self):
        class Zero(UniformLatency):
            def min_remote_latency(self):
                return 0.0

            def min_any_latency(self):
                return 0.0

        cfg = _config(latency_model=Zero())
        with pytest.raises(ConfigurationError, match="lookahead"):
            ShardedCluster(replace(cfg, engine="sharded", shards=2))


class TestDifferentialMatrix:
    """The core bit-identity guarantee across the strategy registries."""

    @pytest.mark.parametrize("selector", SELECTORS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_selector_policy_matrix(self, selector, policy):
        assert_identical(
            _config(selector=selector, steal_policy=policy), shards=2
        )

    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_shard_counts(self, shards):
        assert_identical(_config(), shards=shards)

    @pytest.mark.parametrize("alloc", ["1/N", "8RR", "8G", "4G", "1/N@x4"])
    def test_allocations_aligned_and_not(self, alloc):
        assert_identical(_config(allocation=alloc), shards=4)

    def test_lifelines(self):
        assert_identical(_config(lifelines=2), shards=4)

    def test_clock_skew_and_activity_trace(self):
        assert_identical(
            _config(clock_skew_std=1e-7, trace=True), shards=4
        )

    def test_uniform_latency_model(self):
        assert_identical(
            _config(latency_model=UniformLatency(5e-6)), shards=4
        )

    def test_odd_rank_count(self):
        assert_identical(_config(nranks=13), shards=4)

    def test_single_rank(self):
        assert_identical(_config(nranks=1), shards=1)


PROTOCOL_CASES = [
    dict(protocol="forward", forward_ttl=3),
    dict(regions=4),
    dict(
        protocol="forward",
        regions=4,
        lifelines=2,
        lifeline_graph="ring",
    ),
    dict(lifelines=2, lifeline_graph="random"),
    dict(lifelines=3, lifeline_graph="regtree", regions=4),
]

_PROTOCOL_IDS = [
    "forward3", "regions4", "fwd-reg-ring", "ll-random", "ll-regtree"
]


class TestProtocolDifferential:
    """The protocol extensions ride the same bit-identity contract:
    forwards traverse the shard codec, region draws and lifeline
    graphs are rank-local state, so every engine must produce the
    same bytes."""

    @pytest.mark.parametrize("case", PROTOCOL_CASES, ids=_PROTOCOL_IDS)
    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_shard_counts(self, case, shards):
        assert_identical(_config(**case), shards=shards)

    @pytest.mark.parametrize(
        "case", PROTOCOL_CASES[:3], ids=_PROTOCOL_IDS[:3]
    )
    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_multiprocess_transports(self, case, transport):
        assert_identical(
            _config(**case), shards=4, workers=2, transport=transport
        )

    def test_forwarding_composes_with_adaptive_selector(self):
        assert_identical(
            _config(
                selector="adapt-eps[0.2]",
                steal_policy="adaptive[2]",
                protocol="forward",
                regions=4,
            ),
            shards=4,
        )

    def test_forwarding_non_aligned_allocation(self):
        assert_identical(
            _config(allocation="8RR", protocol="forward", regions=4),
            shards=4,
        )

    def test_forwarding_odd_rank_count(self):
        assert_identical(
            _config(nranks=13, protocol="forward", forward_ttl=3, regions=3),
            shards=4,
        )

    def test_forwarding_with_codec_off(self):
        # StealForward has both a packed encoding and the pickle
        # escape; the run must not care which carried it.
        with engine_flags(WIRE_CODEC=False):
            assert_identical(
                _config(protocol="forward", regions=4, lifelines=2),
                shards=4,
                workers=2,
                transport="shm",
            )


class TestAdaptiveDifferential:
    """Feedback-driven selectors must see the *same* notify stream in
    both engines: any divergence in adaptive state shows up here as a
    victim-sequence (hence trace/counter) mismatch."""

    @pytest.mark.parametrize("selector", ADAPTIVE_SELECTORS)
    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_shard_counts(self, selector, shards):
        assert_identical(
            _config(selector=selector, steal_policy="adaptive[2]"),
            shards=shards,
        )

    @pytest.mark.parametrize("selector", ADAPTIVE_SELECTORS)
    def test_multiprocess(self, selector):
        assert_identical(
            _config(selector=selector, steal_policy="adaptive[2]"),
            shards=4,
            workers=2,
        )

    def test_adaptive_with_lifelines(self):
        # Lifeline pushes notify(success=True) for victims the selector
        # never drew; the adaptive state must digest them identically.
        assert_identical(
            _config(
                selector="adapt-backoff[2]",
                steal_policy="adaptive[2]",
                lifelines=2,
            ),
            shards=4,
        )

    def test_adaptive_policy_non_aligned_allocation(self):
        assert_identical(
            _config(selector="adapt-eps[0.2]", steal_policy="adaptive[2]",
                    allocation="8RR"),
            shards=4,
        )


class TestMultiProcess:
    """Same guarantee when shards are distributed over OS processes."""

    @pytest.mark.parametrize("shards,workers", [(2, 2), (4, 2), (4, 4)])
    def test_multiprocess_matches_sequential(self, shards, workers):
        assert_identical(_config(), shards=shards, workers=workers)

    def test_multiprocess_with_traces(self):
        assert_identical(
            _config(trace=True, clock_skew_std=1e-7),
            shards=4,
            workers=2,
        )

    def test_multiprocess_lifelines(self):
        assert_identical(_config(lifelines=2), shards=4, workers=2)


class TestTransportMatrix:
    """Transport x window-batching combinations, all bit-identical.

    The optimisation flags are plain module globals; under the fork
    start method children inherit the patched values, so each case
    exercises the full coordinator/worker protocol under that flag
    combination, not just the in-process driver.
    """

    @pytest.mark.parametrize("burst", [True, False])
    @pytest.mark.parametrize("extension", [True, False])
    def test_inprocess_batching_flags(self, burst, extension):
        with engine_flags(USE_BURST=burst, USE_WINDOW_EXTENSION=extension):
            assert_identical(
                _config(selector="rand", steal_policy="half"), shards=4
            )

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    @pytest.mark.parametrize(
        "burst,extension",
        [(True, True), (True, False), (False, True), (False, False)],
    )
    def test_multiprocess_transport_by_batching(
        self, transport, burst, extension
    ):
        with engine_flags(USE_BURST=burst, USE_WINDOW_EXTENSION=extension):
            assert_identical(
                _config(), shards=4, workers=2, transport=transport
            )

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_codec_off_is_identical(self, transport):
        # Pickle fallback vs packed codec: same bytes out of the run.
        with engine_flags(WIRE_CODEC=False):
            assert_identical(
                _config(lifelines=2), shards=4, workers=2,
                transport=transport,
            )

    def test_overlap_off_is_identical(self):
        with engine_flags(USE_OVERLAP=False):
            assert_identical(_config(), shards=4, workers=2)

    def test_shm_with_traces_and_adaptive(self):
        assert_identical(
            _config(
                selector="adapt-eps[0.2]",
                steal_policy="adaptive[2]",
                trace=True,
            ),
            shards=4,
            workers=4,
            transport="shm",
        )

    def test_invalid_transport_rejected(self):
        with pytest.raises(ConfigurationError):
            _config(shard_transport="carrier-pigeon")


class TestWorkerPoolLifecycle:
    """Process hygiene: auto-sizing, stats, and no leaked children."""

    def test_auto_shard_workers_matches_cpu_count(self):
        assert auto_shard_workers() == max(1, os.cpu_count() or 1)

    def test_zero_workers_resolves_to_auto_capped_by_shards(self):
        cfg = replace(_config(), engine="sharded", shards=2, shard_workers=0)
        cluster = ShardedCluster(cfg)
        assert cluster._nworkers == max(1, min(auto_shard_workers(), 2))

    def test_zero_workers_run_is_identical(self):
        assert_identical(_config(), shards=2, workers=0)

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            _config(shard_workers=-1)

    def test_parallel_stats_populated(self):
        cfg = replace(
            _config(), engine="sharded", shards=4, shard_workers=2
        )
        cluster = ShardedCluster(cfg)
        cluster.run()
        stats = cluster.parallel_stats
        assert stats is not None
        assert stats["workers"] == 2
        assert stats["shards"] == 4
        assert stats["transport"].startswith("pipe")
        assert stats["rounds"] > 0
        assert stats["round_trips"] >= stats["rounds"]
        assert len(stats["worker_busy_s"]) == 2
        assert stats["bytes_sent"] > 0 and stats["bytes_recv"] > 0

    def test_inprocess_run_has_no_parallel_stats(self):
        cfg = replace(_config(), engine="sharded", shards=4)
        cluster = ShardedCluster(cfg)
        cluster.run()
        assert cluster.parallel_stats is None

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_raising_child_leaves_no_live_process(self, transport):
        # A child that blows its event budget sends an error reply and
        # the coordinator re-raises; the pool must still tear every
        # process down (the old join() ignored its timeout and could
        # strand children forever).
        cfg = replace(
            _config(),
            engine="sharded",
            shards=4,
            shard_workers=2,
            shard_transport=transport,
        )
        before = {p.pid for p in multiprocessing.active_children()}
        with pytest.raises(SimulationError, match="exceeded"):
            ShardedCluster(cfg, max_events=50).run()
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            leaked = [
                p
                for p in multiprocessing.active_children()
                if p.pid not in before
            ]
            if not leaked:
                break
            time.sleep(0.05)
        assert not leaked, f"stranded children: {leaked}"

    def test_healthy_run_leaves_no_live_process(self):
        before = {p.pid for p in multiprocessing.active_children()}
        assert_identical(_config(), shards=4, workers=4)
        leaked = [
            p
            for p in multiprocessing.active_children()
            if p.pid not in before
        ]
        assert not leaked


class TestRunnerRouting:
    def test_run_uts_routes_sharded_engine(self):
        seq = run_uts(tree=T3XS, nranks=16, event_trace=True)
        sh = run_uts(
            tree=T3XS,
            nranks=16,
            event_trace=True,
            engine="sharded",
            shards=4,
        )
        assert seq.to_dict() == sh.to_dict()
        assert seq.events.canonical_bytes() == sh.events.canonical_bytes()
