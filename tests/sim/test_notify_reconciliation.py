"""Reconciliation: selector feedback == worker counters == event trace.

The adaptive selector family (:mod:`repro.select`) is driven entirely
by the ``notify(victim, success)`` stream the workers emit.  A failure
path that forgets to notify would silently bias every adaptive
strategy, and nothing else would catch it — the run still completes.
These tests wrap the configured selector in a counting shim, run the
real cluster, and prove that for every worker and in aggregate:

* ``notify(success=False)`` calls == ``failed_steals`` counter ==
  ``EV_STEAL_FAIL`` events == total length of TraceAnalysis failure
  chains;
* ``notify(success=True)`` calls == ``successful_steals`` counter ==
  ``EV_STEAL_OK`` events;

across the plain resend loop, the lifeline quiesce path and both
steal-amount regimes of the adaptive policy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import WorkStealingConfig
from repro.core.victim import SelectorFactory, VictimSelector, selector_by_name
from repro.sim.cluster import Cluster
from repro.trace.analysis import TraceAnalysis
from repro.uts.params import T3XS


class _CountingSelector(VictimSelector):
    def __init__(self, inner: VictimSelector):
        self._inner = inner
        self.ok = 0
        self.fail = 0

    def next_victim(self) -> int:
        return self._inner.next_victim()

    def notify(self, victim: int, success: bool) -> None:
        if success:
            self.ok += 1
        else:
            self.fail += 1
        self._inner.notify(victim, success)


class _CountingFactory(SelectorFactory):
    """Wraps a real factory; remembers every per-rank state it makes."""

    def __init__(self, inner: SelectorFactory):
        self._inner = inner
        self.name = inner.name
        self.needs_placement = inner.needs_placement
        self.states: dict[int, _CountingSelector] = {}

    def make(self, rank, nranks, placement=None, seed=0):
        state = _CountingSelector(
            self._inner.make(rank, nranks, placement, seed=seed)
        )
        self.states[rank] = state
        return state


def _run(**kw):
    factory = _CountingFactory(selector_by_name(kw.pop("selector", "rand")))
    cfg = WorkStealingConfig(
        tree=T3XS,
        nranks=kw.pop("nranks", 16),
        selector=factory,
        event_trace=True,
        **kw,
    )
    outcome = Cluster(cfg).run()
    return factory, outcome


CASES = [
    dict(selector="rand"),
    dict(selector="rand", steal_policy="half"),
    dict(selector="adapt-sr[0.9]", steal_policy="adaptive[2]"),
    dict(selector="adapt-backoff[2]", lifelines=2),
    dict(selector="tofu", lifelines=2, steal_policy="adaptive[2]"),
    dict(selector="adapt-eps[0.2]", nranks=13),
    dict(selector="rand", protocol="forward", forward_ttl=3),
    dict(
        selector="adapt-eps[0.2]",
        protocol="forward",
        regions=4,
        lifelines=2,
    ),
]


@pytest.mark.parametrize("case", CASES, ids=lambda c: "-".join(map(str, c.values())))
def test_notify_matches_counters_and_trace(case):
    factory, outcome = _run(**dict(case))
    from repro.trace.events import EventTrace

    events = EventTrace.from_recorders(outcome.event_recorders)
    analysis = TraceAnalysis(events)

    # Per-rank: notify counts == worker counters.
    for worker in outcome.workers:
        state = factory.states[worker.rank]
        assert state.fail == worker.failed_steals, (
            f"rank {worker.rank}: {state.fail} failure notifies vs "
            f"{worker.failed_steals} failed_steals"
        )
        assert state.ok == worker.successful_steals

    # Aggregate: counters == event stream == TraceAnalysis.
    total_fail = sum(s.fail for s in factory.states.values())
    total_ok = sum(s.ok for s in factory.states.values())
    assert total_fail == analysis.failed_steals
    assert total_ok == analysis.successful_steals
    # Failure chains partition the failed steals exactly.
    assert sum(analysis.failed_chains()) == total_fail
    # Per-rank event counts agree too (not just the totals).
    from repro.trace.events import EV_STEAL_FAIL, EV_STEAL_OK

    assert np.array_equal(
        analysis.per_rank_counts(EV_STEAL_FAIL),
        np.array([factory.states[r].fail for r in range(events.nranks)]),
    )
    assert np.array_equal(
        analysis.per_rank_counts(EV_STEAL_OK),
        np.array([factory.states[r].ok for r in range(events.nranks)]),
    )


FORWARD_CASES = [
    dict(selector="rand", protocol="forward", forward_ttl=3),
    dict(selector="rand", protocol="forward", regions=4),
    dict(
        selector="tofu",
        protocol="forward",
        forward_ttl=2,
        regions=4,
        lifelines=2,
        lifeline_graph="ring",
    ),
]


@pytest.mark.parametrize(
    "case", FORWARD_CASES, ids=lambda c: "-".join(map(str, c.values()))
)
def test_forward_counters_reconcile_with_trace(case):
    """Per-rank forwarding counters == event stream, and the chain
    walker's accounting stays inside the relay totals."""
    _factory, outcome = _run(**dict(case))
    from repro.trace.events import (
        EV_FORWARD_SERVE,
        EV_SERVE,
        EV_STEAL_FORWARD,
        EventTrace,
    )

    events = EventTrace.from_recorders(outcome.event_recorders)
    analysis = TraceAnalysis(events)

    for worker in outcome.workers:
        assert worker.requests_forwarded == events.count(
            EV_STEAL_FORWARD, worker.rank
        )
        assert worker.forwards_served == events.count(
            EV_FORWARD_SERVE, worker.rank
        )
        # requests_served counts direct and forwarded serves alike.
        assert worker.requests_served == events.count(
            EV_SERVE, worker.rank
        ) + events.count(EV_FORWARD_SERVE, worker.rank)

    total_forwarded = sum(w.requests_forwarded for w in outcome.workers)
    assert analysis.forwarded_requests == total_forwarded
    assert total_forwarded > 0, "case never exercised forwarding"
    assert analysis.forwards_served == sum(
        w.forwards_served for w in outcome.workers
    )
    assert analysis.requests_served == sum(
        w.requests_served for w in outcome.workers
    )
    # Every relay the chain walker attributes belongs to a completed
    # attempt; relays of attempts cut off by termination are the only
    # remainder.
    chains = analysis.request_chain_lengths()
    assert 0 <= chains.sum() <= total_forwarded
    assert chains.max(initial=0) <= 10  # bounded by ttl + region hops


def test_notified_work_is_real():
    """A success notify always corresponds to received chunks."""
    factory, outcome = _run(selector="adapt-sr[0.9]")
    total_ok = sum(s.ok for s in factory.states.values())
    assert total_ok == sum(w.successful_steals for w in outcome.workers)
    assert sum(w.chunks_received for w in outcome.workers) >= total_ok
