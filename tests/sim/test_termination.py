"""Tests for the Dijkstra token-ring termination detector.

The detector is a pure state machine, so we can drive it through
adversarial schedules directly — including the classic trap where a
work message races the token.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TerminationError
from repro.sim.messages import BLACK, WHITE
from repro.sim.termination import DijkstraTermination


def _walk_token_while_idle(det: DijkstraTermination, start_action):
    """Forward the token through idle ranks until it stops or rank 0
    decides; returns the final action."""
    action = start_action
    hops = 0
    while action.sends:
        hops += 1
        if hops > 10 * det.nranks:
            raise AssertionError("token loops forever")
        action = det.token_arrived(action.send_to, action.send_color, is_idle=True)
    return action


class TestSingleRank:
    def test_immediate_termination(self):
        det = DijkstraTermination(1)
        action = det.rank_idle(0)
        assert action.terminated
        assert det.terminated

    def test_bad_nranks(self):
        with pytest.raises(TerminationError):
            DijkstraTermination(0)


class TestCleanRing:
    def test_all_idle_terminates_in_one_probe(self):
        det = DijkstraTermination(4)
        action = det.rank_idle(0)
        assert action.send_to == 1 and action.send_color == WHITE
        final = _walk_token_while_idle(det, action)
        assert final.terminated

    def test_probe_starts_only_once(self):
        det = DijkstraTermination(4)
        det.rank_idle(0)
        # Rank 0 idling again without holding the token does nothing.
        action = det.rank_idle(0)
        assert not action.sends and not action.terminated

    def test_non_zero_rank_does_not_start(self):
        det = DijkstraTermination(4)
        action = det.rank_idle(2)
        assert not action.sends and not action.terminated


class TestBusyRanksHoldToken:
    def test_token_held_until_idle(self):
        det = DijkstraTermination(3)
        action = det.rank_idle(0)
        # Rank 1 is busy: token parked.
        action = det.token_arrived(1, action.send_color, is_idle=False)
        assert not action.sends
        # When rank 1 finally idles, the token moves on.
        action = det.rank_idle(1)
        assert action.send_to == 2

    def test_second_token_rejected(self):
        det = DijkstraTermination(3)
        action = det.rank_idle(0)
        det.token_arrived(1, action.send_color, is_idle=False)
        with pytest.raises(TerminationError):
            det.token_arrived(1, WHITE, is_idle=False)


class TestBlackening:
    def test_work_sender_blackens_token(self):
        det = DijkstraTermination(3)
        action = det.rank_idle(0)
        det.work_sent(1)  # rank 1 shipped work somewhere
        action = det.token_arrived(1, action.send_color, is_idle=True)
        assert action.send_color == BLACK

    def test_black_token_does_not_terminate(self):
        det = DijkstraTermination(3)
        action = det.rank_idle(0)
        det.work_sent(1)
        action = det.token_arrived(1, action.send_color, is_idle=True)
        action = det.token_arrived(2, action.send_color, is_idle=True)
        # Token returns black: rank 0 must re-probe, not terminate.
        action = det.token_arrived(0, action.send_color, is_idle=True)
        assert not action.terminated
        assert action.send_to == 1 and action.send_color == WHITE

    def test_second_clean_probe_terminates(self):
        det = DijkstraTermination(3)
        action = det.rank_idle(0)
        det.work_sent(1)
        action = _walk_token_while_idle(det, action)  # probe 1 (re-probe inside)
        assert action.terminated  # second probe was clean
        assert det.probes_started == 2

    def test_rank0_work_sent_forces_reprobe(self):
        det = DijkstraTermination(2)
        action = det.rank_idle(0)
        det.work_sent(0)
        action = det.token_arrived(1, action.send_color, is_idle=True)
        action = det.token_arrived(0, action.send_color, is_idle=True)
        # Rank 0 is black: cannot terminate even on a white token.
        assert not action.terminated
        final = _walk_token_while_idle(det, action)
        assert final.terminated


class TestRaceScenario:
    def test_work_racing_token_is_caught(self):
        """Victim sends work 'behind' the token: the probe must fail.

        Schedule: ranks 0..3; probe starts; token passes rank 1 (idle);
        then rank 2 (still busy) sends work to rank 1 and goes idle.
        Rank 1 is active again *behind* the token.  Without blackening,
        rank 0 would wrongly terminate.
        """
        det = DijkstraTermination(4)
        action = det.rank_idle(0)
        action = det.token_arrived(1, action.send_color, is_idle=True)
        det.work_sent(2)  # rank 2 ships a chunk to rank 1 (now active)
        action = det.token_arrived(2, action.send_color, is_idle=True)
        assert action.send_color == BLACK
        action = det.token_arrived(3, action.send_color, is_idle=True)
        action = det.token_arrived(0, action.send_color, is_idle=True)
        assert not action.terminated  # correctly refused

    def test_no_early_termination_while_anyone_busy(self):
        det = DijkstraTermination(3)
        action = det.rank_idle(0)
        action = det.token_arrived(1, action.send_color, is_idle=True)
        # Rank 2 busy: token parks; no termination possible yet.
        action = det.token_arrived(2, action.send_color, is_idle=False)
        assert not action.terminated
        assert not det.terminated


class TestValidation:
    def test_bad_rank(self):
        det = DijkstraTermination(2)
        with pytest.raises(TerminationError):
            det.work_sent(5)
        with pytest.raises(TerminationError):
            det.rank_idle(-1)

    def test_bad_color(self):
        det = DijkstraTermination(2)
        det.rank_idle(0)
        with pytest.raises(TerminationError):
            det.token_arrived(1, 7, is_idle=True)

    def test_after_termination_noop(self):
        det = DijkstraTermination(1)
        det.rank_idle(0)
        action = det.rank_idle(0)
        assert not action.sends and not action.terminated


@given(
    st.integers(min_value=2, max_value=8),
    st.lists(st.integers(min_value=0, max_value=7), max_size=30),
)
@settings(max_examples=200, deadline=None)
def test_eventual_termination_property(nranks, work_senders):
    """However work messages interleave with probes, once everyone is
    permanently idle the ring terminates within a bounded number of
    probes (at most 2 + number of dirty probes)."""
    det = DijkstraTermination(nranks)
    action = det.rank_idle(0)
    senders = [r % nranks for r in work_senders]
    # Interleave work-sent observations with token walking.
    while not det.terminated:
        if senders:
            det.work_sent(senders.pop())
        if action.sends:
            action = det.token_arrived(
                action.send_to, action.send_color, is_idle=True
            )
        elif not action.terminated:
            raise AssertionError("token stalled with everyone idle")
    assert det.terminated
    assert det.probes_started <= 2 + len(work_senders)
