"""Tests for protocol message types."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.messages import (
    BLACK,
    WHITE,
    Finish,
    LifelineDeregister,
    LifelineRegister,
    StealRequest,
    StealResponse,
    Token,
)
from repro.uts.stack import Chunk


def _chunk(n: int) -> Chunk:
    c = Chunk(n)
    c.push(np.arange(n, dtype=np.uint64), np.zeros(n, dtype=np.int32))
    return c


class TestStealMessages:
    def test_request_carries_thief(self):
        assert StealRequest(thief=5).thief == 5

    def test_response_with_work(self):
        r = StealResponse(victim=2, chunks=[_chunk(4), _chunk(3)])
        assert r.has_work
        assert r.nodes == 7
        assert r.victim == 2

    def test_response_without_work(self):
        r = StealResponse(victim=2, chunks=None)
        assert not r.has_work
        assert r.nodes == 0

    def test_empty_chunk_list_counts_as_work(self):
        # Protocol rule: chunks=None means denial; an empty list is a
        # (degenerate) grant.  The worker never produces it, but the
        # distinction must be stable.
        r = StealResponse(victim=0, chunks=[])
        assert r.has_work
        assert r.nodes == 0


class TestToken:
    def test_colors(self):
        assert Token(WHITE).color == WHITE
        assert Token(BLACK).color == BLACK

    def test_bad_color(self):
        with pytest.raises(ValueError):
            Token(3)


class TestLifelineMessages:
    def test_register(self):
        assert LifelineRegister(thief=7).thief == 7

    def test_deregister(self):
        assert LifelineDeregister(thief=7).thief == 7


def test_finish_is_stateless():
    assert repr(Finish()) == "Finish()"


def test_messages_use_slots():
    # Hot-path messages must stay lightweight: no per-instance dict.
    for msg in (
        StealRequest(0),
        StealResponse(0, None),
        Token(WHITE),
        Finish(),
        LifelineRegister(0),
        LifelineDeregister(0),
    ):
        assert not hasattr(msg, "__dict__")
