"""Unit tests for the worker state machine, driven through a fake transport."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.steal_policy import StealHalf, StealOne
from repro.core.tracing import TraceRecorder
from repro.core.victim import RoundRobinSelector
from repro.errors import SimulationError
from repro.sim.messages import Finish, StealRequest, StealResponse
from repro.sim.worker import Worker, WorkerStatus
from repro.uts.params import TreeParams
from repro.uts.tree import TreeGenerator

TREE = TreeParams(name="w", tree_type="binomial", root_seed=5, b0=50, m=2, q=0.4)


class FakeTransport:
    """Records every interaction; no event loop."""

    def __init__(self):
        self.sent: list[tuple[int, int, object, float]] = []
        self.execs: list[tuple[int, float]] = []
        self.idles: list[tuple[int, float]] = []
        self.work_sends: list[int] = []

    def send(self, src, dst, payload, when):
        self.sent.append((src, dst, payload, when))

    def schedule_exec(self, rank, when):
        self.execs.append((rank, when))

    def rank_became_idle(self, rank, when):
        self.idles.append((rank, when))

    def work_sent(self, rank):
        self.work_sends.append(rank)

    def local_time(self, rank, true_time):
        return true_time


def make_worker(rank=0, nranks=4, policy=None, chunk=5, poll=4, trace=False):
    transport = FakeTransport()
    selector = (
        RoundRobinSelector().make(rank, nranks) if nranks > 1 else None
    )
    worker = Worker(
        rank=rank,
        nranks=nranks,
        generator=TreeGenerator(TREE),
        selector=selector,
        policy=policy or StealOne(),
        transport=transport,
        chunk_size=chunk,
        poll_interval=poll,
        per_node_time=1e-6,
        steal_service_time=1e-6,
        trace=TraceRecorder() if trace else None,
    )
    return worker, transport


def push_nodes(worker: Worker, n: int) -> None:
    worker.stack.push_batch(
        np.arange(n, dtype=np.uint64) + 12345,
        np.full(n, 3, dtype=np.int32),
    )


class TestStart:
    def test_rank0_gets_root_and_exec(self):
        w, t = make_worker(rank=0)
        w.start(0.0)
        assert w.status is WorkerStatus.RUNNING
        assert w.stack.size == 1
        assert t.execs == [(0, 0.0)]

    def test_other_ranks_start_searching(self):
        w, t = make_worker(rank=2)
        w.start(0.0)
        assert w.status is WorkerStatus.WAITING
        assert t.idles == [(2, 0.0)]
        assert len(t.sent) == 1
        src, dst, payload, when = t.sent[0]
        assert isinstance(payload, StealRequest)
        assert dst == 3  # round-robin first victim is rank+1

    def test_selector_required_for_multirank(self):
        with pytest.raises(SimulationError):
            Worker(
                rank=0,
                nranks=4,
                generator=TreeGenerator(TREE),
                selector=None,
                policy=StealOne(),
                transport=FakeTransport(),
                chunk_size=5,
                poll_interval=4,
                per_node_time=1e-6,
                steal_service_time=1e-6,
            )


class TestExec:
    def test_expands_and_reschedules(self):
        w, t = make_worker(rank=0)
        w.start(0.0)
        w.on_exec(0.0)
        # The root expanded into b0 children.
        assert w.nodes_processed == 1
        assert w.stack.size == TREE.b0
        assert len(t.execs) == 2
        _, when = t.execs[-1]
        assert when == pytest.approx(1e-6)  # one node processed

    def test_quantum_duration_scales(self):
        w, t = make_worker(rank=0, poll=8)
        push_nodes(w, 20)
        w.status = WorkerStatus.RUNNING
        w.on_exec(5.0)
        assert w.nodes_processed == 8
        assert t.execs[-1][1] == pytest.approx(5.0 + 8e-6)

    def test_empty_stack_goes_idle(self):
        w, t = make_worker(rank=0)
        w.status = WorkerStatus.RUNNING
        w.on_exec(1.0)
        assert w.status is WorkerStatus.WAITING
        assert t.idles == [(0, 1.0)]
        assert isinstance(t.sent[-1][2], StealRequest)

    def test_exec_while_waiting_is_error(self):
        w, _ = make_worker(rank=1)
        w.start(0.0)
        with pytest.raises(SimulationError):
            w.on_exec(1.0)


class TestStealProtocol:
    def test_request_queued_while_running(self):
        w, t = make_worker(rank=0)
        push_nodes(w, 20)
        w.status = WorkerStatus.RUNNING
        w.on_message(1.0, StealRequest(thief=3))
        assert len(w.pending) == 1
        assert not t.sent  # not answered yet

    def test_request_served_at_poll(self):
        w, t = make_worker(rank=0, chunk=5)
        push_nodes(w, 20)  # 4 chunks, 3 stealable
        w.status = WorkerStatus.RUNNING
        w.on_message(1.0, StealRequest(thief=3))
        w.on_exec(2.0)
        src, dst, payload, when = t.sent[0]
        assert dst == 3
        assert isinstance(payload, StealResponse)
        assert payload.has_work
        assert payload.nodes == 5  # StealOne: one 5-node chunk
        assert when == pytest.approx(2.0 + 1e-6)  # service time
        assert t.work_sends == [0]
        assert w.requests_served == 1

    def test_steal_half_serves_more(self):
        w, t = make_worker(rank=0, chunk=5, policy=StealHalf())
        push_nodes(w, 30)  # 6 chunks, 5 stealable
        w.status = WorkerStatus.RUNNING
        w.on_message(1.0, StealRequest(thief=3))
        w.on_exec(2.0)
        payload = t.sent[0][2]
        assert payload.nodes == 15  # ceil(5/2) = 3 chunks

    def test_denied_when_only_private_chunk(self):
        w, t = make_worker(rank=0, chunk=5)
        push_nodes(w, 4)  # one partial chunk: private
        w.status = WorkerStatus.RUNNING
        w.on_message(1.0, StealRequest(thief=3))
        w.on_exec(2.0)
        payload = t.sent[0][2]
        assert not payload.has_work
        assert w.requests_denied == 1
        assert t.work_sends == []

    def test_idle_rank_denies_immediately(self):
        w, t = make_worker(rank=1)
        w.start(0.0)
        n_before = len(t.sent)
        w.on_message(1.0, StealRequest(thief=3))
        src, dst, payload, when = t.sent[n_before]
        assert not payload.has_work
        assert when == 1.0  # no service delay for a denial

    def test_successful_response_resumes(self):
        victim, vt = make_worker(rank=0, chunk=5)
        push_nodes(victim, 20)
        victim.status = WorkerStatus.RUNNING
        victim.on_message(1.0, StealRequest(thief=1))
        victim.on_exec(2.0)
        response = vt.sent[0][2]

        thief, tt = make_worker(rank=1)
        thief.start(0.0)
        thief.on_message(3.0, response)
        assert thief.status is WorkerStatus.RUNNING
        assert thief.stack.size == 5
        assert thief.successful_steals == 1
        assert tt.execs[-1] == (1, 3.0)
        assert thief.sessions[-1].found_work
        assert thief.sessions[-1].duration == pytest.approx(3.0)

    def test_failed_response_retries_next_victim(self):
        thief, tt = make_worker(rank=1)
        thief.start(0.0)
        first_victim = tt.sent[0][1]
        thief.on_message(2.0, StealResponse(victim=first_victim, chunks=None))
        assert thief.failed_steals == 1
        second = tt.sent[-1]
        assert isinstance(second[2], StealRequest)
        assert second[1] != 1  # never self
        assert second[1] == (first_victim + 1) % 4  # ring continues

    def test_response_while_running_is_error(self):
        w, _ = make_worker(rank=0)
        push_nodes(w, 5)
        w.status = WorkerStatus.RUNNING
        with pytest.raises(SimulationError):
            w.on_message(1.0, StealResponse(victim=2, chunks=None))

    def test_unknown_message_rejected(self):
        w, _ = make_worker(rank=1)
        w.start(0.0)
        with pytest.raises(SimulationError):
            w.on_message(1.0, object())


class TestFinish:
    def test_finish_closes_session(self):
        w, _ = make_worker(rank=1)
        w.start(0.0)
        w.on_message(4.0, Finish())
        assert w.status is WorkerStatus.DONE
        assert w.finish_time == 4.0
        assert len(w.sessions) == 1
        assert not w.sessions[0].found_work
        assert w.sessions[0].duration == pytest.approx(4.0)

    def test_finish_while_holding_work_is_error(self):
        w, _ = make_worker(rank=0)
        push_nodes(w, 5)
        w.status = WorkerStatus.RUNNING
        with pytest.raises(SimulationError):
            w.on_message(1.0, Finish())

    def test_messages_after_done_dropped(self):
        w, t = make_worker(rank=1)
        w.start(0.0)
        w.on_message(4.0, Finish())
        n = len(t.sent)
        w.on_message(5.0, StealRequest(thief=2))
        assert len(t.sent) == n  # no reply


class TestTracing:
    def test_rank0_trace(self):
        w, _ = make_worker(rank=0, trace=True)
        w.start(0.0)
        assert w.trace.times == [0.0]
        assert w.trace.states == [True]

    def test_activity_cycle(self):
        w, t = make_worker(rank=1, trace=True)
        w.start(0.0)
        assert len(w.trace) == 0  # never active yet
        # Receive work.
        victim, vt = make_worker(rank=0, chunk=5)
        push_nodes(victim, 20)
        victim.status = WorkerStatus.RUNNING
        victim.on_message(0.5, StealRequest(thief=1))
        victim.on_exec(1.0)
        w.on_message(2.0, vt.sent[0][2])
        assert w.trace.times == [2.0]
        assert w.trace.states == [True]
        # Drain it (5 nodes, poll=4: two execs).
        w.on_exec(2.0)
        w.on_exec(3.0)
        if w.status is WorkerStatus.WAITING:
            assert w.trace.states[-1] is False

    def test_search_time_accumulates(self):
        w, t = make_worker(rank=1)
        w.start(0.0)
        w.on_message(2.0, StealResponse(victim=2, chunks=None))
        w.on_message(4.0, Finish())
        assert w.search_time == pytest.approx(4.0)


class TestMultipleQueuedRequests:
    def test_served_in_arrival_order_with_cumulative_service(self):
        w, t = make_worker(rank=0, chunk=5)
        push_nodes(w, 30)  # 6 chunks, 5 stealable
        w.status = WorkerStatus.RUNNING
        w.on_message(1.0, StealRequest(thief=1))
        w.on_message(1.5, StealRequest(thief=2))
        w.on_message(1.7, StealRequest(thief=3))
        w.on_exec(2.0)
        responses = [m for m in t.sent if isinstance(m[2], StealResponse)]
        assert [r[1] for r in responses] == [1, 2, 3]
        # Each positive response costs one service interval; send times
        # accumulate: 2+1e-6, 2+2e-6, 2+3e-6.
        import pytest as _pytest

        for k, (src, dst, payload, when) in enumerate(responses, start=1):
            assert payload.has_work
            assert when == _pytest.approx(2.0 + k * 1e-6)

    def test_exhausted_victim_denies_remainder(self):
        w, t = make_worker(rank=0, chunk=5)
        push_nodes(w, 10)  # 2 chunks, only 1 stealable
        w.status = WorkerStatus.RUNNING
        w.on_message(1.0, StealRequest(thief=1))
        w.on_message(1.1, StealRequest(thief=2))
        w.on_exec(2.0)
        responses = [m[2] for m in t.sent if isinstance(m[2], StealResponse)]
        assert responses[0].has_work
        assert not responses[1].has_work

    def test_service_time_delays_next_quantum(self):
        w, t = make_worker(rank=0, chunk=5, poll=4)
        push_nodes(w, 30)
        w.status = WorkerStatus.RUNNING
        w.on_message(1.0, StealRequest(thief=1))
        w.on_exec(2.0)
        # Next quantum starts after the steal service + 4 nodes of work.
        import pytest as _pytest

        assert t.execs[-1][1] == _pytest.approx(2.0 + 1e-6 + 4e-6)
