"""Tests for the artifact summariser used to refresh EXPERIMENTS.md."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SCRIPT = os.path.join(REPO, "benchmarks", "summarize.py")


def test_renders_artifacts(tmp_path, monkeypatch):
    # Build a private artifact dir with each payload flavour.
    artifacts = tmp_path / "_artifacts"
    artifacts.mkdir()
    (artifacts / "figX.json").write_text(
        json.dumps({"x": [1, 2], "curves": {"ref": [1.0, 2.0], "opt": [2.0, 4.0]}})
    )
    (artifacts / "tableY.json").write_text(
        json.dumps({"headers": ["a", "b"], "rows": [[1, 2.5]]})
    )
    (artifacts / "profZ.json").write_text(
        json.dumps({"occupancy": [0.1, 0.2], "SL": [0.0, 0.5], "EL": [0.1, 0.9]})
    )
    # Point the script at the private dir by copying it next to them.
    script_copy = tmp_path / "summarize.py"
    script_copy.write_text(open(SCRIPT).read())
    proc = subprocess.run(
        [sys.executable, str(script_copy)],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 0, proc.stderr
    out = proc.stdout
    assert "### figX" in out
    assert "| ref | opt |" in out or "ref" in out
    assert "### tableY" in out
    assert "### profZ" in out
    assert "SL" in out


@pytest.mark.skipif(
    not os.path.isdir(os.path.join(REPO, "benchmarks", "_artifacts")),
    reason="no recorded artifacts yet (run pytest benchmarks/ first)",
)
def test_renders_recorded_artifacts():
    proc = subprocess.run(
        [sys.executable, SCRIPT], capture_output=True, text=True, timeout=60
    )
    assert proc.returncode == 0, proc.stderr
    assert "###" in proc.stdout
