"""Tests for the `python -m repro.bench` experiment CLI."""

from __future__ import annotations

import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.bench", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        timeout=300,
    )


def test_list():
    proc = _cli("--list")
    assert proc.returncode == 0
    for key in ("table1", "fig02", "fig08", "fig16"):
        assert key in proc.stdout


def test_no_args_lists():
    proc = _cli()
    assert proc.returncode == 0
    assert "fig11" in proc.stdout


def test_unknown_experiment():
    proc = _cli("fig99")
    assert proc.returncode == 2
    assert "unknown experiment" in proc.stderr


def test_run_table1():
    proc = _cli("table1")
    assert proc.returncode == 0
    assert "T3XXL" in proc.stdout
    assert "2793220501" in proc.stdout


def test_run_fig08():
    proc = _cli("fig08")
    assert proc.returncode == 0


def test_only_flag_is_an_alias():
    proc = _cli("--only", "table1", "--no-cache")
    assert proc.returncode == 0
    assert "T3XXL" in proc.stdout


def test_only_conflicting_with_positional():
    proc = _cli("fig02", "--only", "fig03")
    assert proc.returncode == 2


def test_bad_jobs_rejected():
    proc = _cli("table1", "--jobs", "0")
    assert proc.returncode == 2
    assert "--jobs" in proc.stderr


def test_jobs_flag_accepted():
    proc = _cli("table1", "--jobs", "2", "--no-cache")
    assert proc.returncode == 0
    assert "T3XXL" in proc.stdout
