"""Tests for the benchmark harness (cache, sweeps, reporting)."""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.bench.experiments import (
    CALIBRATION,
    cached_run,
    clear_cache,
    experiment_config,
)
from repro.bench.report import (
    format_series,
    format_table,
    render_ascii_curve,
    save_artifact,
)
from repro.bench.sweep import sweep
from repro.uts.params import T3XS


class TestExperimentConfig:
    def test_calibration_applied(self):
        cfg = experiment_config(T3XS, 8, selector="tofu")
        assert cfg.node_time == CALIBRATION.node_time
        assert cfg.poll_interval == CALIBRATION.poll_interval
        assert cfg.chunk_size == CALIBRATION.chunk_size
        assert cfg.latency_model.per_hop == CALIBRATION.per_hop
        assert cfg.selector.name == "tofu"

    def test_tree_by_name(self):
        cfg = experiment_config("T3XS", 8)
        assert cfg.tree.name == "T3XS"

    def test_overrides_win(self):
        cfg = experiment_config(T3XS, 8, poll_interval=7, compute_rounds=4)
        assert cfg.poll_interval == 7
        assert cfg.compute_rounds == 4


class TestCache:
    def setup_method(self):
        clear_cache()

    def test_identical_configs_run_once(self):
        a = cached_run(experiment_config(T3XS, 4))
        b = cached_run(experiment_config(T3XS, 4))
        assert a is b

    def test_different_configs_rerun(self):
        a = cached_run(experiment_config(T3XS, 4))
        b = cached_run(experiment_config(T3XS, 4, selector="rand"))
        assert a is not b

    def test_traced_run_subsumes_untraced(self):
        traced = cached_run(experiment_config(T3XS, 4, trace=True))
        untraced = cached_run(experiment_config(T3XS, 4))
        assert untraced is traced

    def test_untraced_does_not_subsume_traced(self):
        untraced = cached_run(experiment_config(T3XS, 4))
        traced = cached_run(experiment_config(T3XS, 4, trace=True))
        assert traced is not untraced
        assert traced.trace is not None

    def test_clear(self):
        cached_run(experiment_config(T3XS, 4))
        assert clear_cache() >= 1
        assert clear_cache() == 0


class TestSweep:
    def test_keys_and_reuse(self):
        clear_cache()
        res = sweep(T3XS, ladder=(4, 8), allocations=("1/N", "4G"))
        assert set(res) == {(4, "1/N"), (4, "4G"), (8, "1/N"), (8, "4G")}
        again = sweep(T3XS, ladder=(4, 8), allocations=("1/N", "4G"))
        assert all(res[k] is again[k] for k in res)

    def test_results_have_correct_shape(self):
        res = sweep(T3XS, ladder=(4,), selector="rand", steal_policy="half")
        r = res[(4, "1/N")]
        assert r.selector == "rand"
        assert r.steal_policy == "half"
        assert r.nranks == 4


class TestReport:
    def test_format_table(self):
        out = format_table(["a", "b"], [[1, 2.5], [3, 4.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]

    def test_format_table_bad_row(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        out = format_series(
            "Fig X", "nranks", [1, 2], {"ref": [1.0, 2.0], "tofu": [1.5, None]}
        )
        assert out.startswith("== Fig X ==")
        assert "nan" in out  # None rendered as NaN

    def test_ascii_curve(self):
        out = render_ascii_curve([0.0, 0.5, 1.0, float("nan")], width=10, height=4)
        assert "min=0" in out

    def test_ascii_curve_empty(self):
        assert render_ascii_curve([math.nan]) == "(no data)"

    def test_save_artifact(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
        path = save_artifact("unit", {"x": [1, 2], "y": [0.5, 1.5]})
        with open(path) as fh:
            data = json.load(fh)
        assert data["x"] == [1, 2]
        assert os.path.dirname(path) == str(tmp_path)
