"""Tests for steal-amount policies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.steal_policy import (
    StealFraction,
    StealHalf,
    StealOne,
    policy_by_name,
)
from repro.errors import ConfigurationError

ALL_POLICIES = [StealOne(), StealHalf(), StealFraction(0.5), StealFraction(0.1)]


@pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
class TestPolicyContract:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=200, deadline=None)
    def test_bounds(self, policy, stealable):
        k = policy.chunks_to_steal(stealable)
        assert 0 <= k <= stealable
        if stealable > 0:
            assert k >= 1  # something stealable -> steal something

    def test_zero_means_zero(self, policy):
        assert policy.chunks_to_steal(0) == 0

    def test_negative_rejected(self, policy):
        with pytest.raises(ConfigurationError):
            policy.chunks_to_steal(-1)


class TestStealOne:
    @pytest.mark.parametrize("stealable,expected", [(0, 0), (1, 1), (2, 1), (99, 1)])
    def test_values(self, stealable, expected):
        assert StealOne().chunks_to_steal(stealable) == expected


class TestStealHalf:
    @pytest.mark.parametrize(
        "stealable,expected",
        [(0, 0), (1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (100, 50)],
    )
    def test_values(self, stealable, expected):
        assert StealHalf().chunks_to_steal(stealable) == expected

    @given(st.integers(min_value=2, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_leaves_victim_work(self, stealable):
        """Half-stealing never empties the stealable region entirely
        when there are at least 2 chunks."""
        k = StealHalf().chunks_to_steal(stealable)
        assert stealable - k >= stealable // 2 - 1
        assert k < stealable or stealable == 1


class TestStealFraction:
    def test_values(self):
        p = StealFraction(0.25)
        assert p.chunks_to_steal(0) == 0
        assert p.chunks_to_steal(1) == 1  # at least one
        assert p.chunks_to_steal(8) == 2
        assert p.chunks_to_steal(100) == 25

    def test_full_fraction(self):
        assert StealFraction(1.0).chunks_to_steal(7) == 7

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_bad_fraction(self, bad):
        with pytest.raises(ConfigurationError):
            StealFraction(bad)


class TestRegistry:
    def test_one(self):
        assert isinstance(policy_by_name("one"), StealOne)

    def test_half(self):
        assert isinstance(policy_by_name("half"), StealHalf)

    def test_fraction(self):
        p = policy_by_name("frac[0.3]")
        assert isinstance(p, StealFraction)
        assert p.fraction == 0.3

    def test_bad_fraction_string(self):
        with pytest.raises(ConfigurationError):
            policy_by_name("frac[x]")

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            policy_by_name("all")
