"""Hypothesis properties of the selector registry.

The invariant sweep (``test_selector_invariants.py``) drives fixed
victim/notify cycles; this module lets hypothesis choose the operation
sequences, which is what actually exercises *adaptive* state: arbitrary
interleavings of draws and success/failure feedback — including
feedback about victims the selector never drew, as lifeline pushes
produce — must keep every invariant intact.

Properties:

* ``next_victim()`` is never the caller and always in ``[0, nranks)``;
* the victim stream is a deterministic function of ``(seed, rank)``
  and the operation sequence (two independently-built selectors fed
  the same ops agree draw for draw);
* adaptive sampling weights stay finite, non-negative, self-free and
  normalized after any notify sequence.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.core.victim import selector_by_name
from repro.net.allocation import allocation_by_name, build_placement
from repro.select.adaptive import AdaptiveVictimSelector

ALL_SELECTORS = [
    "reference",
    "rand",
    "tofu",
    "hierarchical",
    "lastvictim",
    "skew[2]",
    "hier[0.75]",
    "latskew[1.5]",
    "adapt-eps[0.1]",
    "adapt-sr[0.9]",
    "adapt-backoff[2]",
]
ADAPTIVE_SELECTORS = ["adapt-eps[0.1]", "adapt-sr[0.9]", "adapt-backoff[2]"]

_PLACEMENTS: dict[int, object] = {}


def _placement(nranks: int):
    if nranks not in _PLACEMENTS:
        _PLACEMENTS[nranks] = build_placement(
            nranks, allocation_by_name("1/N")
        )
    return _PLACEMENTS[nranks]


def _make(name: str, rank: int, nranks: int, seed: int):
    return selector_by_name(name).make(
        rank, nranks, _placement(nranks), seed=seed
    )


#: One op per step: draw a victim, or notify about some rank.  Notify
#: targets are drawn over a *superset* of the rank range on purpose —
#: the selector contract is to tolerate (ignore) out-of-range and
#: self victims rather than corrupt its state.
def _ops(nranks: int):
    return st.lists(
        st.one_of(
            st.just("draw"),
            st.tuples(
                st.integers(min_value=-1, max_value=nranks),
                st.booleans(),
            ),
        ),
        max_size=60,
    )


@pytest.mark.parametrize("name", ALL_SELECTORS)
class TestEverySelectorProperties:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_valid_victims_and_determinism(self, name, data):
        nranks = data.draw(st.sampled_from([2, 5, 16]), label="nranks")
        seed = data.draw(st.integers(min_value=0, max_value=2**31), label="seed")
        rank = data.draw(
            st.integers(min_value=0, max_value=nranks - 1), label="rank"
        )
        ops = data.draw(_ops(nranks), label="ops")
        a = _make(name, rank, nranks, seed)
        b = _make(name, rank, nranks, seed)  # twin: pins determinism
        for op in ops:
            if op == "draw":
                va, vb = a.next_victim(), b.next_victim()
                assert va == vb, f"{name}: twin selectors diverged"
                assert 0 <= va < nranks
                assert va != rank
            else:
                victim, success = op
                a.notify(victim, success)
                b.notify(victim, success)


@pytest.mark.parametrize("name", ADAPTIVE_SELECTORS)
class TestAdaptiveWeights:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_weights_stay_normalized(self, name, data):
        nranks = data.draw(st.sampled_from([2, 5, 16]), label="nranks")
        rank = data.draw(
            st.integers(min_value=0, max_value=nranks - 1), label="rank"
        )
        ops = data.draw(_ops(nranks), label="ops")
        sel = _make(name, rank, nranks, seed=3)
        assert isinstance(sel, AdaptiveVictimSelector)

        def check():
            w = sel.sampling_weights()
            assert w.shape == (nranks,)
            assert np.all(np.isfinite(w))
            assert np.all(w >= 0.0)
            assert w[rank] == 0.0
            assert w.sum() == pytest.approx(1.0)

        check()
        for op in ops:
            if op == "draw":
                sel.next_victim()
            else:
                sel.notify(*op)
            check()

    def test_weights_do_not_mutate_state(self, name):
        """Introspection is read-only: calling it must not perturb the
        victim stream (the differential suites depend on that)."""
        a = _make(name, 1, 8, seed=11)
        b = _make(name, 1, 8, seed=11)
        stream_a = []
        for i in range(50):
            a.sampling_weights()
            stream_a.append(a.next_victim())
            a.notify(stream_a[-1], success=(i % 4 == 0))
            a.sampling_weights()
        stream_b = []
        for i in range(50):
            stream_b.append(b.next_victim())
            b.notify(stream_b[-1], success=(i % 4 == 0))
        assert stream_a == stream_b
