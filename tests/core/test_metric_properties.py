"""Property-based tests of the scheduling-latency metric itself.

These pin down the mathematical behaviour of SL/EL on arbitrary valid
traces — monotonicity, time-reversal duality, and invariance under
uniform time scaling — properties the paper's definitions imply but
never spell out.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import OccupancyCurve
from repro.core.tracing import ActivityTrace


@st.composite
def closed_traces(draw):
    """Traces where every rank's activity intervals are closed and lie
    strictly inside [0, T]."""
    nranks = draw(st.integers(min_value=1, max_value=6))
    total_time = draw(st.floats(min_value=10.0, max_value=100.0))
    transitions = []
    # Times live on a 1/1024 grid of [0, T]: keeps intervals wide enough
    # that the mirrored times (T - t) stay exactly representable and
    # zero-width fp degeneracies cannot arise.
    for _ in range(nranks):
        n_intervals = draw(st.integers(min_value=0, max_value=4))
        ticks = sorted(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=1024),
                    min_size=2 * n_intervals,
                    max_size=2 * n_intervals,
                    unique=True,
                )
            )
        )
        times = np.array(ticks, dtype=np.float64) * (total_time / 1024.0)
        states = np.array([k % 2 == 0 for k in range(len(ticks))])
        transitions.append((times, states))
    return ActivityTrace(transitions), nranks, total_time


@given(closed_traces(), st.data())
@settings(max_examples=100, deadline=None)
def test_sl_monotone_in_occupancy(case, data):
    trace, nranks, total = case
    curve = OccupancyCurve(trace, nranks, total)
    x1 = data.draw(st.floats(min_value=0.01, max_value=1.0))
    x2 = data.draw(st.floats(min_value=0.01, max_value=1.0))
    lo, hi = min(x1, x2), max(x1, x2)
    sl_lo = curve.starting_latency(lo)
    sl_hi = curve.starting_latency(hi)
    # Reaching a higher occupancy can never happen earlier.
    if sl_hi is not None:
        assert sl_lo is not None
        assert sl_lo <= sl_hi + 1e-12


@given(closed_traces(), st.data())
@settings(max_examples=100, deadline=None)
def test_el_monotone_in_occupancy(case, data):
    trace, nranks, total = case
    curve = OccupancyCurve(trace, nranks, total)
    lo = data.draw(st.floats(min_value=0.01, max_value=0.5))
    hi = data.draw(st.floats(min_value=0.5, max_value=1.0))
    el_lo = curve.ending_latency(lo)
    el_hi = curve.ending_latency(hi)
    # A higher occupancy cannot be sustained *later* than a lower one.
    if el_hi is not None:
        assert el_lo is not None
        assert el_lo <= el_hi + 1e-12


@given(closed_traces(), st.data())
@settings(max_examples=100, deadline=None)
def test_time_reversal_swaps_sl_and_el(case, data):
    """Mirroring a trace in time swaps the two latencies exactly."""
    trace, nranks, total = case
    x = data.draw(st.floats(min_value=0.05, max_value=1.0))
    curve = OccupancyCurve(trace, nranks, total)

    mirrored = ActivityTrace(
        [
            (total - times[::-1], states[::-1] if len(states) == 0 else
             # A rank active on [a, b] is active on [T-b, T-a] in the
             # mirror: reversed order, flipped transition directions.
             ~states[::-1])
            for times, states in trace.transitions
        ]
    )
    mcurve = OccupancyCurve(mirrored, nranks, total)
    sl = curve.starting_latency(x)
    el_m = mcurve.ending_latency(x)
    if sl is None:
        assert el_m is None
    else:
        assert el_m is not None
        assert abs(sl - el_m) < 1e-9


@given(closed_traces(), st.floats(min_value=0.1, max_value=10.0), st.data())
@settings(max_examples=100, deadline=None)
def test_latencies_invariant_under_time_scaling(case, scale, data):
    """SL/EL are fractions of the runtime: rescaling time changes nothing."""
    trace, nranks, total = case
    x = data.draw(st.floats(min_value=0.05, max_value=1.0))
    scaled = ActivityTrace(
        [(times * scale, states.copy()) for times, states in trace.transitions]
    )
    a = OccupancyCurve(trace, nranks, total)
    b = OccupancyCurve(scaled, nranks, total * scale)
    sa, sb = a.starting_latency(x), b.starting_latency(x)
    if sa is None:
        assert sb is None
    else:
        assert sb is not None
        assert abs(sa - sb) < 1e-9


@given(closed_traces())
@settings(max_examples=100, deadline=None)
def test_average_occupancy_bounded_by_max(case):
    trace, nranks, total = case
    curve = OccupancyCurve(trace, nranks, total)
    assert 0.0 <= curve.average_occupancy() <= curve.max_occupancy + 1e-12
