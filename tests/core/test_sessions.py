"""Tests for work-discovery session statistics."""

from __future__ import annotations

import pytest

from repro.core.sessions import Session, SessionStats, summarize_sessions
from repro.errors import TraceError


class TestSession:
    def test_duration(self):
        s = Session(rank=0, start=1.0, end=3.5, found_work=True, attempts=2)
        assert s.duration == pytest.approx(2.5)

    def test_end_before_start_rejected(self):
        with pytest.raises(TraceError):
            Session(rank=0, start=2.0, end=1.0, found_work=True, attempts=1)

    def test_negative_attempts_rejected(self):
        with pytest.raises(TraceError):
            Session(rank=0, start=0.0, end=1.0, found_work=True, attempts=-1)

    def test_zero_duration_ok(self):
        s = Session(rank=0, start=1.0, end=1.0, found_work=False, attempts=0)
        assert s.duration == 0.0


class TestSummarize:
    def test_empty(self):
        stats = summarize_sessions([], nranks=4)
        assert stats.count == 0
        assert stats.mean_duration == 0.0
        assert stats.sessions_per_rank == 0.0

    def test_bad_nranks(self):
        with pytest.raises(TraceError):
            summarize_sessions([], nranks=0)

    def test_aggregates(self):
        sessions = [
            Session(rank=0, start=0.0, end=2.0, found_work=True, attempts=1),
            Session(rank=0, start=5.0, end=9.0, found_work=True, attempts=3),
            Session(rank=1, start=1.0, end=2.0, found_work=False, attempts=2),
        ]
        stats = summarize_sessions(sessions, nranks=2)
        assert stats.count == 3
        assert stats.successful == 2
        assert stats.terminated == 1
        assert stats.mean_duration == pytest.approx((2 + 4 + 1) / 3)
        assert stats.max_duration == pytest.approx(4.0)
        assert stats.total_search_time == pytest.approx(7.0)
        assert stats.mean_attempts == pytest.approx(2.0)
        assert stats.sessions_per_rank == pytest.approx(1.5)

    def test_stats_is_frozen(self):
        stats = summarize_sessions([], nranks=1)
        with pytest.raises(AttributeError):
            stats.count = 5  # type: ignore[misc]

    def test_all_terminated(self):
        sessions = [
            Session(rank=r, start=0.0, end=1.0, found_work=False, attempts=5)
            for r in range(3)
        ]
        stats = summarize_sessions(sessions, nranks=3)
        assert stats.successful == 0
        assert stats.terminated == 3
