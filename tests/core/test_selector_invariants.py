"""Property-style invariants over *every* registered victim selector.

``tests/core/test_victim.py`` checks each selector family in detail;
this module sweeps the whole registry (canonical names plus one
concrete instance per pattern template) across rank/seed combinations
and pins the two invariants every selector must satisfy:

* ``next_victim()`` is always in ``[0, nranks)``;
* a rank never selects itself.

It also carries the regression test for the skewed-sampler edge case:
a uniform draw arbitrarily close to 1.0 must still map to a valid
victim even when float rounding leaves the cumulative distribution's
last edge below the draw.
"""

import numpy as np
import pytest

from repro.core.registry import available
from repro.core.victim import (
    _SkewedState,
    selector_by_name,
    skewed_probabilities,
)
from repro.net.allocation import allocation_by_name, build_placement

#: Concrete instantiations for the registry's pattern templates
#: (``skew[<alpha>]`` etc. are templates, not resolvable names).
_PATTERN_INSTANCES = {
    "skew[<alpha>]": "skew[2]",
    "hier[<p_near>]": "hier[0.75]",
    "latskew[<alpha>]": "latskew[1.5]",
    "adapt-eps[<eps>]": "adapt-eps[0.25]",
    "adapt-sr[<decay>]": "adapt-sr[0.8]",
    "adapt-backoff[<fails>]": "adapt-backoff[3]",
}


def _all_selector_names() -> list[str]:
    names = []
    for name in available("selector"):
        names.append(_PATTERN_INSTANCES.get(name, name))
    return names


_NRANKS = (2, 5, 16)
_SEEDS = (0, 1, 12345)


@pytest.mark.parametrize("name", _all_selector_names())
class TestEverySelector:
    @pytest.mark.parametrize("nranks", _NRANKS)
    @pytest.mark.parametrize("seed", _SEEDS)
    def test_victims_valid_and_never_self(self, name, nranks, seed):
        factory = selector_by_name(name)
        placement = build_placement(nranks, allocation_by_name("1/N"))
        for rank in (0, nranks - 1):
            selector = factory.make(rank, nranks, placement, seed=seed)
            for _ in range(300):
                v = selector.next_victim()
                assert 0 <= v < nranks, f"{name}: victim {v} out of range"
                assert v != rank, f"{name}: rank {rank} selected itself"

    def test_survives_notify_feedback(self, name):
        """Invariants hold when success/failure feedback is interleaved."""
        nranks = 8
        factory = selector_by_name(name)
        placement = build_placement(nranks, allocation_by_name("1/N"))
        selector = factory.make(3, nranks, placement, seed=7)
        for i in range(200):
            v = selector.next_victim()
            assert 0 <= v < nranks and v != 3
            selector.notify(v, success=(i % 3 == 0))


class TestSkewedProbabilities:
    @pytest.mark.parametrize("nranks", _NRANKS)
    @pytest.mark.parametrize("alpha", (0.0, 1.0, 2.5))
    def test_shape_and_normalisation(self, nranks, alpha):
        placement = build_placement(nranks, allocation_by_name("1/N"))
        for rank in range(nranks):
            p = skewed_probabilities(
                rank, placement.euclidean.row(rank), alpha=alpha
            )
            assert p.shape == (nranks,)
            assert p[rank] == 0.0
            assert np.all(p >= 0.0)
            assert p.sum() == pytest.approx(1.0)


class TestSkewedEdgeDraw:
    """Regression: a draw at ``1 - 2**-53`` (the largest double below
    1.0) must not index past the cumulative array when rounding has
    left ``cum[-1]`` slightly under the draw."""

    class _PinnedRng:
        def __init__(self, value: float):
            self._value = value

        def random(self, n: int) -> np.ndarray:
            return np.full(n, self._value)

    def test_max_draw_maps_to_last_victim(self):
        # Weights chosen so the float cumsum tops out below 1 - 2**-53.
        weights = np.full(7, 1.0 / 7.0)
        cum = np.cumsum(weights)
        draw = 1.0 - 2.0**-53
        assert cum[-1] < draw  # the hazard this test pins
        state = _SkewedState(cum, self._PinnedRng(draw))
        for _ in range(10):
            v = state.next_victim()
            assert 0 <= v < 7

    def test_low_and_mid_draws_unaffected(self):
        cum = np.cumsum(np.full(4, 0.25))
        assert _SkewedState(cum, self._PinnedRng(0.0)).next_victim() == 0
        assert _SkewedState(cum, self._PinnedRng(0.6)).next_victim() == 2
