"""Tests for the work-stealing run configuration."""

from __future__ import annotations

import pytest

from repro.core.config import WorkStealingConfig
from repro.core.steal_policy import StealHalf, StealOne
from repro.core.victim import DistanceSkewedSelector, RoundRobinSelector
from repro.errors import ConfigurationError
from repro.net.allocation import GroupedPacked, OnePerNode
from repro.net.latency import KComputerLatency, UniformLatency
from repro.uts.params import T3XS
from repro.uts.rng import SplitMix64Backend


def _cfg(**kw) -> WorkStealingConfig:
    return WorkStealingConfig(tree=T3XS, nranks=8, **kw)


class TestDefaults:
    def test_paper_defaults(self):
        cfg = _cfg()
        assert cfg.chunk_size == 20  # the paper's default chunk size
        assert isinstance(cfg.selector, RoundRobinSelector)
        assert isinstance(cfg.steal_policy, StealOne)
        assert isinstance(cfg.allocation, OnePerNode)
        assert isinstance(cfg.latency_model, KComputerLatency)
        assert isinstance(cfg.rng_backend, SplitMix64Backend)
        assert cfg.compute_rounds == 1

    def test_string_resolution(self):
        cfg = _cfg(
            allocation="8G",
            selector="tofu",
            steal_policy="half",
            rng_backend="sha1",
        )
        assert isinstance(cfg.allocation, GroupedPacked)
        assert isinstance(cfg.selector, DistanceSkewedSelector)
        assert isinstance(cfg.steal_policy, StealHalf)
        assert cfg.rng_backend.name == "sha1"

    def test_object_passthrough(self):
        sel = DistanceSkewedSelector()
        cfg = _cfg(selector=sel, latency_model=UniformLatency(1e-6))
        assert cfg.selector is sel
        assert isinstance(cfg.latency_model, UniformLatency)


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("nranks", 0),
            ("chunk_size", 0),
            ("poll_interval", 0),
            ("node_time", 0.0),
            ("node_time", -1.0),
            ("compute_rounds", 0),
            ("steal_service_time", -1e-9),
            ("transfer_time_per_node", -1e-9),
            ("nic_service_time", -1e-9),
            ("clock_skew_std", -1e-9),
            ("node_cap", 0),
        ],
    )
    def test_bad_values(self, field, value):
        kwargs = {"tree": T3XS, "nranks": 8, field: value}
        kwargs["nranks"] = kwargs.get("nranks", 8)
        if field == "nranks":
            kwargs["nranks"] = value
        with pytest.raises(ConfigurationError):
            WorkStealingConfig(**kwargs)

    def test_bad_selector_string(self):
        with pytest.raises(ConfigurationError):
            _cfg(selector="nonexistent")

    def test_bad_policy_string(self):
        with pytest.raises(ConfigurationError):
            _cfg(steal_policy="everything")


class TestDerived:
    def test_per_node_time_scales_with_rounds(self):
        assert _cfg(compute_rounds=4).per_node_time == pytest.approx(
            4 * _cfg().per_node_time
        )

    def test_label(self):
        cfg = _cfg(selector="tofu", steal_policy="half", allocation="8G")
        assert cfg.label() == "tofu/half 8G x8 [T3XS]"

    def test_replace(self):
        cfg = _cfg()
        derived = cfg.replace(nranks=16, selector="rand")
        assert derived.nranks == 16
        assert derived.selector.name == "rand"
        assert cfg.nranks == 8  # original untouched

    def test_replace_validates(self):
        with pytest.raises(ConfigurationError):
            _cfg().replace(nranks=-1)

    def test_replace_keeps_resolved_strategy_objects(self):
        # replace() re-runs validation; already-resolved parameterised
        # strategies must survive it untouched, not be re-parsed.
        cfg = _cfg(selector="skew[1.5]", steal_policy="frac[0.25]", allocation="8G@x2")
        derived = cfg.replace(nranks=16)
        assert derived.selector is cfg.selector
        assert derived.steal_policy is cfg.steal_policy
        assert derived.allocation is cfg.allocation
        assert derived.selector.name == "skew[1.5]"
        assert derived.fingerprint() != cfg.fingerprint()
        assert derived.replace(nranks=8).fingerprint() == cfg.fingerprint()

    def test_replace_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            _cfg().replace(warp_factor=9)

    def test_label_without_name_raises_configuration_error(self):
        class Anonymous:
            pass

        cfg = _cfg()
        object.__setattr__(cfg, "selector", Anonymous())
        with pytest.raises(ConfigurationError):
            cfg.label()
