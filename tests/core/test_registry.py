"""Tests for the strategy registry behind the ``*_by_name`` lookups."""

from __future__ import annotations

import pytest

from repro.core import registry
from repro.core.registry import Registry
from repro.core.steal_policy import StealFraction, StealHalf, policy_by_name
from repro.core.victim import DistanceSkewedSelector, RoundRobinSelector, selector_by_name
from repro.errors import ConfigurationError
from repro.net.allocation import DilatedAllocation, OnePerNode, allocation_by_name
from repro.uts.rng import Sha1Backend, backend_by_name


class TestRegistryClass:
    def test_register_and_resolve(self):
        reg = Registry("widget")
        reg.register("a", lambda: "made-a")
        assert reg.resolve("a") == "made-a"
        assert "a" in reg
        assert reg.available() == ["a"]

    def test_aliases_resolve_but_stay_out_of_available(self):
        reg = Registry("widget")
        reg.register("canonical", lambda: 1, "alias1", "alias2")
        assert reg.resolve("alias1") == reg.resolve("canonical")
        assert reg.available() == ["canonical"]

    def test_duplicate_registration_rejected(self):
        reg = Registry("widget")
        reg.register("a", lambda: 1)
        with pytest.raises(ConfigurationError):
            reg.register("a", lambda: 2)
        reg.register("a", lambda: 2, overwrite=True)
        assert reg.resolve("a") == 2

    def test_unknown_name_lists_valid_choices(self):
        reg = Registry("widget")
        reg.register("alpha", lambda: 1)
        reg.register("beta", lambda: 2)
        with pytest.raises(ConfigurationError) as exc:
            reg.resolve("gamma")
        message = str(exc.value)
        assert "unknown widget 'gamma'" in message
        assert "alpha" in message and "beta" in message

    def test_pattern_fallback(self):
        reg = Registry("widget")
        reg.register_pattern(
            "x<n>", lambda name: int(name[1:]) if name.startswith("x") else None
        )
        assert reg.resolve("x42") == 42
        assert "x<n>" in reg.available()

    def test_factory_kwargs_forwarded(self):
        reg = Registry("widget")
        reg.register("pair", lambda a, b=0: (a, b))
        assert reg.resolve("pair", a=1, b=2) == (1, 2)
        with pytest.raises(ConfigurationError):
            reg.resolve("pair", nope=3)


class TestGlobalRegistries:
    def test_all_strategy_kinds_registered(self):
        expected = {
            "allocation",
            "latency_model",
            "rng_backend",
            "selector",
            "steal_policy",
            "topology",
        }
        assert expected <= set(registry.kinds())

    def test_available_lists_paper_names(self):
        assert "reference" in registry.available("selector")
        assert "1/N" in registry.available("allocation")
        assert "one" in registry.available("steal_policy")
        assert "splitmix64" in registry.available("rng_backend")

    @pytest.mark.parametrize(
        "lookup,name,cls",
        [
            (selector_by_name, "reference", RoundRobinSelector),
            (selector_by_name, "tofu", DistanceSkewedSelector),
            (policy_by_name, "half", StealHalf),
            (policy_by_name, "frac[0.25]", StealFraction),
            (allocation_by_name, "1/N", OnePerNode),
            (allocation_by_name, "8G@x2", DilatedAllocation),
            (backend_by_name, "sha1", Sha1Backend),
        ],
    )
    def test_by_name_wrappers_route_through_registry(self, lookup, name, cls):
        obj = lookup(name)
        assert isinstance(obj, cls)
        assert registry.resolve(_kind_of(lookup), name).name == obj.name

    @pytest.mark.parametrize(
        "lookup", [selector_by_name, policy_by_name, allocation_by_name, backend_by_name]
    )
    def test_unknown_shorthand_names_choices(self, lookup):
        with pytest.raises(ConfigurationError) as exc:
            lookup("no-such-strategy")
        assert "valid choices" in str(exc.value)


def _kind_of(lookup) -> str:
    return {
        selector_by_name: "selector",
        policy_by_name: "steal_policy",
        allocation_by_name: "allocation",
        backend_by_name: "rng_backend",
    }[lookup]


class TestSingleResolutionPath:
    """``resolve``/``resolve_spec`` are the one documented way in."""

    def test_unknown_name_raises_registry_error(self):
        from repro.errors import RegistryError

        with pytest.raises(RegistryError) as exc:
            registry.resolve("selector", "no-such-strategy")
        assert "valid choices" in str(exc.value)

    def test_registry_error_is_a_configuration_error(self):
        from repro.errors import RegistryError

        assert issubclass(RegistryError, ConfigurationError)

    def test_resolve_spec_passes_objects_through(self):
        selector = RoundRobinSelector()
        assert registry.resolve_spec("selector", selector) is selector

    def test_resolve_spec_resolves_strings(self):
        obj = registry.resolve_spec("steal_policy", "half")
        assert isinstance(obj, StealHalf)

    def test_config_resolution_goes_through_resolve_spec(self):
        from repro.core.config import WorkStealingConfig
        from repro.errors import RegistryError
        from repro.uts.params import T3XS

        cfg = WorkStealingConfig(tree=T3XS, nranks=4, selector="random")
        assert not isinstance(cfg.selector, str)
        with pytest.raises(RegistryError):
            WorkStealingConfig(tree=T3XS, nranks=4, selector="bogus")
