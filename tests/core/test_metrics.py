"""Tests for the scheduling-latency metric (SL/EL, occupancy)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import (
    OccupancyCurve,
    ending_latency,
    latency_profile,
    starting_latency,
)
from repro.core.tracing import ActivityTrace
from repro.errors import TraceError


def _trace(*rank_events) -> ActivityTrace:
    return ActivityTrace(
        [
            (
                np.array([t for t, _ in events], dtype=np.float64),
                np.array([a for _, a in events], dtype=bool),
            )
            for events in rank_events
        ]
    )


# Four ranks: rank 0 active [0, 100]; ranks 1-3 join at 5, 10, 50 and
# stop at 95, 90, 60.
TRACE4 = _trace(
    [(0.0, True), (100.0, False)],
    [(5.0, True), (95.0, False)],
    [(10.0, True), (90.0, False)],
    [(50.0, True), (60.0, False)],
)


class TestOccupancyCurve:
    def test_workers_pointwise(self):
        c = OccupancyCurve(TRACE4, 4, 100.0)
        assert c.workers(0.0) == 1
        assert c.workers(7.0) == 2
        assert c.workers(55.0) == 4
        assert c.workers(70.0) == 3
        assert c.workers(99.0) == 1

    def test_before_first_event(self):
        c = OccupancyCurve(_trace([(5.0, True), (9.0, False)]), 1, 10.0)
        assert c.workers(1.0) == 0

    def test_occupancy(self):
        c = OccupancyCurve(TRACE4, 4, 100.0)
        assert c.occupancy(55.0) == pytest.approx(1.0)
        assert c.occupancy(7.0) == pytest.approx(0.5)

    def test_max_workers(self):
        c = OccupancyCurve(TRACE4, 4, 100.0)
        assert c.max_workers == 4
        assert c.max_occupancy == pytest.approx(1.0)

    def test_max_workers_partial(self):
        t = _trace([(0.0, True), (10.0, False)], [], [])
        c = OccupancyCurve(t, 3, 10.0)
        assert c.max_workers == 1
        assert c.max_occupancy == pytest.approx(1 / 3)

    def test_average_occupancy(self):
        # One of two ranks active half the time -> 0.25.
        t = _trace([(0.0, True), (5.0, False)], [])
        c = OccupancyCurve(t, 2, 10.0)
        assert c.average_occupancy() == pytest.approx(0.25)

    def test_average_occupancy_empty(self):
        c = OccupancyCurve(_trace([]), 2, 10.0)
        assert c.average_occupancy() == 0.0

    def test_validation(self):
        with pytest.raises(TraceError):
            OccupancyCurve(TRACE4, 4, 0.0)
        with pytest.raises(TraceError):
            OccupancyCurve(TRACE4, 0, 100.0)
        with pytest.raises(TraceError):
            OccupancyCurve(TRACE4, 4, 50.0)  # trace extends past T


class TestStartingLatency:
    def test_paper_example(self):
        """SL(10%) = 5% means 10% occupancy first reached at 5% of T."""
        events = [[(5.0, True), (100.0, False)]] + [
            [(80.0, True), (100.0, False)] for _ in range(9)
        ]
        t = _trace(*events)
        c = OccupancyCurve(t, 10, 100.0)
        assert c.starting_latency(0.10) == pytest.approx(0.05)

    def test_monotone_in_occupancy(self):
        c = OccupancyCurve(TRACE4, 4, 100.0)
        sls = [c.starting_latency(x) for x in (0.25, 0.5, 0.75, 1.0)]
        assert sls == sorted(sls)
        assert sls[0] == pytest.approx(0.0)
        assert sls[3] == pytest.approx(0.5)

    def test_unreached_is_none(self):
        t = _trace([(0.0, True), (10.0, False)], [])
        c = OccupancyCurve(t, 2, 10.0)
        assert c.starting_latency(1.0) is None

    def test_wrapper(self):
        assert starting_latency(TRACE4, 4, 100.0, 0.5) == pytest.approx(0.05)


class TestEndingLatency:
    def test_values(self):
        c = OccupancyCurve(TRACE4, 4, 100.0)
        # 100% occupancy last held until t=60 -> EL = 40%.
        assert c.ending_latency(1.0) == pytest.approx(0.40)
        # 75% holds until t=90 -> EL = 10%.
        assert c.ending_latency(0.75) == pytest.approx(0.10)
        # 25% holds until the end.
        assert c.ending_latency(0.25) == pytest.approx(0.0)

    def test_unreached_is_none(self):
        t = _trace([(0.0, True), (10.0, False)], [])
        c = OccupancyCurve(t, 2, 10.0)
        assert c.ending_latency(1.0) is None

    def test_wrapper(self):
        assert ending_latency(TRACE4, 4, 100.0, 1.0) == pytest.approx(0.40)

    def test_symmetry_of_definitions(self):
        """A time-mirrored trace swaps SL and EL."""
        t = _trace([(10.0, True), (90.0, False)])
        c = OccupancyCurve(t, 1, 100.0)
        assert c.starting_latency(1.0) == pytest.approx(0.10)
        assert c.ending_latency(1.0) == pytest.approx(0.10)


class TestLatencyProfile:
    def test_default_grid(self):
        p = latency_profile(TRACE4, 4, 100.0)
        assert len(p.occupancies) == 100
        assert p.max_occupancy == pytest.approx(1.0)

    def test_custom_grid(self):
        p = latency_profile(TRACE4, 4, 100.0, np.array([0.25, 0.5, 1.0]))
        assert p.starting.tolist() == pytest.approx([0.0, 0.05, 0.5])
        assert p.ending.tolist() == pytest.approx([0.0, 0.05, 0.40])

    def test_nan_where_unreached(self):
        t = _trace([(0.0, True), (10.0, False)], [])
        p = latency_profile(t, 2, 10.0, np.array([0.5, 1.0]))
        assert not np.isnan(p.starting[0])
        assert np.isnan(p.starting[1])
        assert np.isnan(p.ending[1])
        assert p.reached().tolist() == [True, False]

    def test_profile_shapes_match(self):
        p = latency_profile(TRACE4, 4, 100.0)
        assert p.starting.shape == p.ending.shape == p.occupancies.shape
