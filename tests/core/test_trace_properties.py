"""Property tests tying traces, clock skew and the latency metric.

Complements ``test_metric_properties.py`` (SL/EL monotonicity and
symmetry): here the properties are the ones the *trace* layer must
uphold for the metric to be meaningful —

* SL(x) <= 1 - EL(x): occupancy ``x`` is first reached no later than
  it is last sustained, so the two latency curves never cross;
* the clock-skew adjustment is an exact involution: correcting a
  skewed trace by the measured offsets reproduces the original, and
  therefore the original's latency profile;
* a zero offset vector is the identity.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import OccupancyCurve, latency_profile
from repro.core.tracing import ActivityTrace

_GRID = 1024


@st.composite
def grid_traces(draw):
    """Alternating per-rank traces on a 1/1024 grid of [0, T].

    The grid keeps skew arithmetic exactly representable so the
    round-trip properties can assert tight tolerances.
    """
    nranks = draw(st.integers(min_value=1, max_value=5))
    total_time = draw(st.floats(min_value=8.0, max_value=64.0))
    transitions = []
    for _ in range(nranks):
        n = draw(st.integers(min_value=0, max_value=3))
        ticks = sorted(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=_GRID),
                    min_size=2 * n,
                    max_size=2 * n,
                    unique=True,
                )
            )
        )
        times = np.array(ticks, dtype=np.float64) * (total_time / _GRID)
        states = np.array([k % 2 == 0 for k in range(len(ticks))])
        transitions.append((times, states))
    return ActivityTrace(transitions), nranks, total_time


def _offsets(draw, nranks):
    return np.array(
        draw(
            st.lists(
                st.floats(min_value=-4.0, max_value=4.0, allow_nan=False),
                min_size=nranks,
                max_size=nranks,
            )
        )
    )


@given(grid_traces(), st.data())
@settings(max_examples=100, deadline=None)
def test_sl_plus_el_never_exceeds_one(case, data):
    trace, nranks, total = case
    curve = OccupancyCurve(trace, nranks, total)
    x = data.draw(st.floats(min_value=0.01, max_value=1.0))
    sl = curve.starting_latency(x)
    el = curve.ending_latency(x)
    # Both defined or both undefined: reached iff sustained.
    assert (sl is None) == (el is None)
    if sl is not None:
        assert sl <= 1.0 - el + 1e-12


@given(grid_traces())
@settings(max_examples=100, deadline=None)
def test_profile_curves_never_cross(case):
    trace, nranks, total = case
    profile = latency_profile(trace, nranks, total)
    reached = profile.reached()
    assert (reached == ~np.isnan(profile.ending)).all()
    assert (
        profile.starting[reached] <= 1.0 - profile.ending[reached] + 1e-12
    ).all()


@given(grid_traces(), st.data())
@settings(max_examples=100, deadline=None)
def test_skew_round_trip_is_identity(case, data):
    trace, nranks, _total = case
    offsets = _offsets(data.draw, nranks)
    back = trace.with_skew(offsets).corrected(offsets)
    for rank in range(nranks):
        assert np.allclose(
            back.transitions[rank][0], trace.transitions[rank][0],
            rtol=0.0, atol=1e-9,
        )
        assert (
            back.transitions[rank][1] == trace.transitions[rank][1]
        ).all()


@given(grid_traces())
@settings(max_examples=50, deadline=None)
def test_zero_skew_is_exact_identity(case):
    trace, nranks, _total = case
    shifted = trace.with_skew(np.zeros(nranks))
    for rank in range(nranks):
        assert (
            shifted.transitions[rank][0] == trace.transitions[rank][0]
        ).all()


@given(grid_traces(), st.data())
@settings(max_examples=50, deadline=None)
def test_correction_restores_latency_profile(case, data):
    """The paper's pipeline: skewed raw trace -> corrected -> metric.

    Correcting by the true offsets must reproduce the unskewed
    profile bit-for-bit up to fp tolerance.
    """
    trace, nranks, total = case
    # Keep skewed times non-negative and inside the run.
    offsets = np.abs(_offsets(data.draw, nranks))
    corrected = trace.with_skew(offsets).corrected(offsets)
    ref = latency_profile(trace, nranks, total + 8.0)
    got = latency_profile(corrected, nranks, total + 8.0)
    assert np.allclose(ref.starting, got.starting, equal_nan=True, atol=1e-9)
    assert np.allclose(ref.ending, got.ending, equal_nan=True, atol=1e-9)
