"""Tests for the latency-weighted selector extension (paper §VII)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.victim import LatencySkewedSelector, selector_by_name
from repro.errors import ConfigurationError
from repro.net.allocation import build_placement
from repro.net.latency import UniformLatency
from repro.net.topology import FlatTopology

PLACEMENT = build_placement(64, "8G")


class TestDistribution:
    def test_normalised_and_complete(self):
        p = LatencySkewedSelector().probabilities(0, PLACEMENT)
        assert p[0] == 0.0
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p[1:] > 0.0)

    def test_cheaper_victims_likelier(self):
        p = LatencySkewedSelector().probabilities(0, PLACEMENT)
        lat = PLACEMENT.latency[0]
        others = np.arange(1, 64)
        order = others[np.argsort(lat[others])]
        assert np.all(np.diff(p[order]) <= 1e-12)

    def test_uniform_latency_degenerates_to_uniform(self):
        placement = build_placement(
            16,
            "1/N",
            latency_model=UniformLatency(1e-6),
            topology_factory=lambda n: FlatTopology(n),
        )
        p = LatencySkewedSelector().probabilities(3, placement)
        mask = np.arange(16) != 3
        assert np.allclose(p[mask], 1.0 / 15)

    def test_alpha_zero_uniform(self):
        p = LatencySkewedSelector(0.0).probabilities(0, PLACEMENT)
        assert np.allclose(p[1:], 1.0 / 63)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencySkewedSelector(-1.0)


class TestSelector:
    def test_never_self_and_covers_all(self):
        sel = LatencySkewedSelector().make(0, 64, PLACEMENT, seed=1)
        seen = set()
        for _ in range(20000):
            v = sel.next_victim()
            assert v != 0
            seen.add(v)
        assert seen == set(range(1, 64))

    def test_requires_placement(self):
        with pytest.raises(ConfigurationError):
            LatencySkewedSelector().make(0, 64, None)

    def test_registry(self):
        f = selector_by_name("latskew[2]")
        assert isinstance(f, LatencySkewedSelector)
        assert f.alpha == 2.0

    def test_bad_registry_string(self):
        with pytest.raises(ConfigurationError):
            selector_by_name("latskew[x]")


class TestEndToEnd:
    def test_conservation(self):
        from repro.uts.params import T3XS
        from repro.uts.sequential import sequential_count
        from repro.ws import run_uts

        seq = sequential_count(T3XS)
        r = run_uts(tree=T3XS, nranks=8, selector="latskew[1]")
        assert r.total_nodes == seq.total_nodes

    def test_comparable_to_tofu(self):
        """On the hierarchical model, latency weighting behaves like
        (not wildly worse than) distance weighting."""
        from repro.uts.params import T3XS
        from repro.ws import run_uts

        lat = run_uts(tree=T3XS, nranks=16, selector="latskew[1]", seed=2)
        tofu = run_uts(tree=T3XS, nranks=16, selector="tofu", seed=2)
        assert lat.total_time < tofu.total_time * 2.0
