"""Tests for victim selection strategies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.victim import (
    DistanceSkewedSelector,
    HierarchicalSelector,
    LastVictimSelector,
    PowerSkewedSelector,
    RoundRobinSelector,
    UniformRandomSelector,
    selector_by_name,
    skewed_probabilities,
)
from repro.errors import ConfigurationError
from repro.net.allocation import build_placement

PLACEMENT_16 = build_placement(16, "1/N")
PLACEMENT_64 = build_placement(64, "8G")

ALL_FACTORIES = [
    RoundRobinSelector(),
    UniformRandomSelector(),
    DistanceSkewedSelector(),
    PowerSkewedSelector(2.0),
    HierarchicalSelector(),
    LastVictimSelector(),
]


@pytest.mark.parametrize("factory", ALL_FACTORIES, ids=lambda f: f.name)
class TestSelectorContract:
    def test_never_selects_self(self, factory):
        for rank in (0, 7, 15):
            sel = factory.make(rank, 16, PLACEMENT_16, seed=1)
            for _ in range(200):
                assert sel.next_victim() != rank

    def test_victims_in_range(self, factory):
        sel = factory.make(3, 16, PLACEMENT_16, seed=2)
        for _ in range(200):
            assert 0 <= sel.next_victim() < 16

    def test_eventually_covers_all_victims(self, factory):
        sel = factory.make(0, 16, PLACEMENT_16, seed=3)
        seen = {sel.next_victim() for _ in range(3000)}
        assert seen == set(range(1, 16))

    def test_rejects_single_rank(self, factory):
        with pytest.raises(ConfigurationError):
            factory.make(0, 1, PLACEMENT_16)

    def test_rejects_rank_out_of_range(self, factory):
        with pytest.raises(ConfigurationError):
            factory.make(16, 16, PLACEMENT_16)

    def test_deterministic_given_seed(self, factory):
        a = factory.make(2, 16, PLACEMENT_16, seed=9)
        b = factory.make(2, 16, PLACEMENT_16, seed=9)
        assert [a.next_victim() for _ in range(50)] == [
            b.next_victim() for _ in range(50)
        ]


class TestRoundRobin:
    def test_starts_at_neighbour(self):
        sel = RoundRobinSelector().make(3, 8)
        assert sel.next_victim() == 4

    def test_walks_ring_skipping_self(self):
        sel = RoundRobinSelector().make(1, 4)
        victims = [sel.next_victim() for _ in range(6)]
        assert victims == [2, 3, 0, 2, 3, 0]

    def test_rank0_sequence(self):
        sel = RoundRobinSelector().make(0, 4)
        assert [sel.next_victim() for _ in range(4)] == [1, 2, 3, 1]

    def test_continues_after_success(self):
        """The paper: a successful steal does not reset the walk."""
        sel = RoundRobinSelector().make(0, 8)
        sel.next_victim()  # 1
        v = sel.next_victim()  # 2
        sel.notify(v, success=True)
        assert sel.next_victim() == 3

    def test_no_placement_needed(self):
        assert not RoundRobinSelector().needs_placement


class TestUniformRandom:
    def test_distribution_roughly_uniform(self):
        sel = UniformRandomSelector().make(5, 16, seed=0)
        counts = np.zeros(16)
        n = 30000
        for _ in range(n):
            counts[sel.next_victim()] += 1
        assert counts[5] == 0
        expected = n / 15
        others = counts[np.arange(16) != 5]
        assert np.all(np.abs(others - expected) < 5 * np.sqrt(expected))

    def test_different_ranks_independent_streams(self):
        a = UniformRandomSelector().make(0, 16, seed=0)
        b = UniformRandomSelector().make(1, 16, seed=0)
        assert [a.next_victim() for _ in range(20)] != [
            b.next_victim() for _ in range(20)
        ]


class TestSkewedProbabilities:
    """The distribution behind Fig 8."""

    def test_normalised(self):
        p = skewed_probabilities(0, PLACEMENT_16.euclidean[0])
        assert p.sum() == pytest.approx(1.0)
        assert p[0] == 0.0

    def test_all_victims_possible(self):
        """The paper preserves 'the ability to steal any process'."""
        p = skewed_probabilities(0, PLACEMENT_16.euclidean[0])
        assert np.all(p[1:] > 0.0)

    def test_closer_is_likelier(self):
        rank = 0
        e = PLACEMENT_64.euclidean[rank]
        p = skewed_probabilities(rank, e)
        others = np.arange(1, 64)
        # Sort victims by distance; probabilities must be non-increasing.
        order = others[np.argsort(e[others])]
        probs = p[order]
        assert np.all(np.diff(probs) <= 1e-12)

    def test_zero_distance_weight_one(self):
        # Co-located ranks (e = 0) get weight 1 per the paper's formula.
        e = np.array([0.0, 0.0, 2.0, 4.0])
        p = skewed_probabilities(0, e)
        assert p[1] == pytest.approx(1.0 / (1.0 + 0.5 + 0.25))

    def test_alpha_zero_uniform(self):
        e = PLACEMENT_16.euclidean[3]
        p = skewed_probabilities(3, e, alpha=0.0)
        assert np.allclose(p[np.arange(16) != 3], 1.0 / 15)

    def test_alpha_sharpens(self):
        e = PLACEMENT_64.euclidean[0]
        p1 = skewed_probabilities(0, e, alpha=1.0)
        p3 = skewed_probabilities(0, e, alpha=3.0)
        nearest = int(np.argmin(np.where(np.arange(64) == 0, np.inf, e)))
        assert p3[nearest] > p1[nearest]

    def test_degenerate_rejected(self):
        with pytest.raises(ConfigurationError):
            skewed_probabilities(0, np.array([0.0]))


class TestDistanceSkewedSelector:
    def test_requires_placement(self):
        with pytest.raises(ConfigurationError):
            DistanceSkewedSelector().make(0, 16, None)

    def test_placement_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            DistanceSkewedSelector().make(0, 32, PLACEMENT_16)

    def test_empirical_matches_distribution(self):
        factory = DistanceSkewedSelector()
        probs = factory.probabilities(0, PLACEMENT_64)
        sel = factory.make(0, 64, PLACEMENT_64, seed=4)
        counts = np.zeros(64)
        n = 60000
        for _ in range(n):
            counts[sel.next_victim()] += 1
        emp = counts / n
        assert np.abs(emp - probs).max() < 0.01

    def test_prefers_co_located(self):
        """Under 8G the 7 co-located ranks should absorb a large share."""
        factory = DistanceSkewedSelector()
        probs = factory.probabilities(0, PLACEMENT_64)
        same_node = PLACEMENT_64.rank_nodes == PLACEMENT_64.rank_nodes[0]
        same_node[0] = False
        assert probs[same_node].sum() > 7 / 63  # more than uniform share

    def test_negative_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerSkewedSelector(-1.0)


class TestHierarchical:
    def test_bad_p_near(self):
        with pytest.raises(ConfigurationError):
            HierarchicalSelector(1.5)

    def test_near_bias(self):
        factory = HierarchicalSelector(p_near=0.9)
        sel = factory.make(0, 64, PLACEMENT_64, seed=5)
        lat = PLACEMENT_64.latency[0]
        others = np.arange(1, 64)
        cut = np.median(lat[others])
        near_hits = sum(
            1 for _ in range(5000) if lat[sel.next_victim()] <= cut
        )
        assert near_hits / 5000 > 0.8


class TestLastVictim:
    def test_sticks_after_success(self):
        sel = LastVictimSelector().make(0, 16, seed=6)
        v = sel.next_victim()
        sel.notify(v, success=True)
        assert sel.next_victim() == v

    def test_unsticks_after_failure(self):
        sel = LastVictimSelector().make(0, 16, seed=7)
        v = sel.next_victim()
        sel.notify(v, success=True)
        v2 = sel.next_victim()  # sticky repeat
        sel.notify(v2, success=False)
        # Over many draws we should not be glued to v2.
        draws = {sel.next_victim() for _ in range(100)}
        assert len(draws) > 1


class TestRegistry:
    @pytest.mark.parametrize(
        "name,cls_name",
        [
            ("reference", "RoundRobinSelector"),
            ("round_robin", "RoundRobinSelector"),
            ("rand", "UniformRandomSelector"),
            ("uniform", "UniformRandomSelector"),
            ("tofu", "DistanceSkewedSelector"),
            ("hierarchical", "HierarchicalSelector"),
            ("lastvictim", "LastVictimSelector"),
        ],
    )
    def test_aliases(self, name, cls_name):
        assert type(selector_by_name(name)).__name__ == cls_name

    def test_parametric_skew(self):
        f = selector_by_name("skew[2.5]")
        assert isinstance(f, PowerSkewedSelector)
        assert f.alpha == 2.5

    def test_parametric_hier(self):
        f = selector_by_name("hier[0.7]")
        assert isinstance(f, HierarchicalSelector)
        assert f.p_near == 0.7

    def test_bad_parametric(self):
        with pytest.raises(ConfigurationError):
            selector_by_name("skew[abc]")

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            selector_by_name("oracle")


@given(
    st.integers(min_value=2, max_value=40),
    st.integers(min_value=0, max_value=39),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=100, deadline=None)
def test_uniform_never_self_property(nranks, rank, seed):
    rank = rank % nranks
    sel = UniformRandomSelector().make(rank, nranks, seed=seed)
    for _ in range(30):
        v = sel.next_victim()
        assert v != rank
        assert 0 <= v < nranks
