"""Tests for activity traces and clock-skew handling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tracing import ActivityTrace, TraceRecorder
from repro.errors import TraceError


def _trace(*rank_events) -> ActivityTrace:
    """Build a trace from per-rank [(t, active), ...] lists."""
    return ActivityTrace(
        [
            (
                np.array([t for t, _ in events], dtype=np.float64),
                np.array([a for _, a in events], dtype=bool),
            )
            for events in rank_events
        ]
    )


class TestRecorder:
    def test_record_and_build(self):
        r = TraceRecorder()
        r.record(0.0, True)
        r.record(1.0, False)
        trace = ActivityTrace.from_recorders([r])
        assert trace.nranks == 1
        assert len(r) == 2

    def test_empty_recorder_ok(self):
        trace = ActivityTrace.from_recorders([TraceRecorder()])
        assert trace.nranks == 1


class TestValidation:
    def test_no_ranks(self):
        with pytest.raises(TraceError):
            ActivityTrace([])

    def test_unsorted_times(self):
        with pytest.raises(TraceError):
            _trace([(1.0, True), (0.5, False)])

    def test_non_alternating(self):
        with pytest.raises(TraceError):
            _trace([(0.0, True), (1.0, True)])

    def test_length_mismatch(self):
        with pytest.raises(TraceError):
            ActivityTrace([(np.array([0.0, 1.0]), np.array([True]))])

    def test_equal_times_allowed(self):
        t = _trace([(1.0, True), (1.0, False)])
        assert t.nranks == 1


class TestNonFiniteRejection:
    """Regression: NaN compares False against everything, so the
    ordering check alone silently accepted NaN-tainted traces and the
    corruption only surfaced deep inside the metrics."""

    def test_nan_time_rejected(self):
        with pytest.raises(TraceError, match="non-finite"):
            _trace([(0.0, True), (float("nan"), False)])

    def test_inf_time_rejected(self):
        with pytest.raises(TraceError, match="non-finite"):
            _trace([(float("inf"), True)])

    def test_nan_rejected_via_from_recorders(self):
        r = TraceRecorder()
        r.record(0.0, True)
        r.record(float("nan"), False)
        with pytest.raises(TraceError, match="non-finite"):
            ActivityTrace.from_recorders([r])

    def test_non_finite_offsets_rejected(self):
        t = _trace([(1.0, True), (2.0, False)])
        for bad in (float("nan"), float("inf")):
            with pytest.raises(TraceError, match="finite"):
                t.with_skew(np.array([bad]))
            with pytest.raises(TraceError, match="finite"):
                t.corrected(np.array([bad]))


class TestActiveCountCurve:
    def test_single_rank(self):
        t = _trace([(0.0, True), (10.0, False)])
        times, counts = t.active_count_curve()
        assert times.tolist() == [0.0, 10.0]
        assert counts.tolist() == [1, 0]

    def test_two_ranks_overlap(self):
        t = _trace(
            [(0.0, True), (10.0, False)],
            [(5.0, True), (15.0, False)],
        )
        times, counts = t.active_count_curve()
        assert times.tolist() == [0.0, 5.0, 10.0, 15.0]
        assert counts.tolist() == [1, 2, 1, 0]

    def test_simultaneous_transitions_collapse(self):
        t = _trace(
            [(0.0, True), (5.0, False)],
            [(5.0, True), (9.0, False)],
        )
        times, counts = t.active_count_curve()
        # At t=5 one rank stops and another starts: net count 1.
        assert times.tolist() == [0.0, 5.0, 9.0]
        assert counts.tolist() == [1, 1, 0]

    def test_silent_ranks_ignored(self):
        t = _trace([(0.0, True)], [], [])
        times, counts = t.active_count_curve()
        assert counts.tolist() == [1]

    def test_all_silent(self):
        t = _trace([], [])
        times, counts = t.active_count_curve()
        assert times.size == 0


class TestBusyTime:
    def test_single_interval(self):
        t = _trace([(2.0, True), (7.0, False)])
        assert t.busy_time(0, 10.0) == pytest.approx(5.0)

    def test_open_interval_clipped(self):
        t = _trace([(2.0, True)])
        assert t.busy_time(0, 10.0) == pytest.approx(8.0)

    def test_multiple_intervals(self):
        t = _trace([(0.0, True), (2.0, False), (5.0, True), (6.0, False)])
        assert t.busy_time(0, 10.0) == pytest.approx(3.0)

    def test_never_active(self):
        t = _trace([])
        assert t.busy_time(0, 10.0) == 0.0


class TestClockSkew:
    def test_with_skew_shifts(self):
        t = _trace([(1.0, True), (2.0, False)], [(1.0, True), (2.0, False)])
        skewed = t.with_skew(np.array([0.5, -0.25]))
        assert skewed.transitions[0][0].tolist() == [1.5, 2.5]
        assert skewed.transitions[1][0].tolist() == [0.75, 1.75]

    def test_corrected_roundtrip(self):
        t = _trace([(1.0, True), (2.0, False)], [(3.0, True), (4.0, False)])
        offsets = np.array([0.3, -0.8])
        back = t.with_skew(offsets).corrected(offsets)
        for rank in range(2):
            assert np.allclose(
                back.transitions[rank][0], t.transitions[rank][0]
            )

    def test_offsets_shape_checked(self):
        t = _trace([(1.0, True)])
        with pytest.raises(TraceError):
            t.with_skew(np.array([0.1, 0.2]))

    def test_skew_changes_aggregate_curve(self):
        """Uncorrected skew distorts the occupancy curve — the reason
        the paper corrects for it."""
        t = _trace(
            [(0.0, True), (10.0, False)],
            [(0.0, True), (10.0, False)],
        )
        skewed = t.with_skew(np.array([0.0, 5.0]))
        _, counts = t.active_count_curve()
        _, skewed_counts = skewed.active_count_curve()
        assert counts.max() == 2
        assert skewed_counts.tolist() != counts.tolist()


@st.composite
def random_rank_trace(draw):
    n = draw(st.integers(min_value=0, max_value=12))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    start_active = draw(st.booleans())
    times = np.cumsum(np.array(gaps)) if n else np.array([])
    states = np.array([(start_active + k) % 2 == 1 for k in range(n)], dtype=bool)
    return times, states


@given(st.lists(random_rank_trace(), min_size=1, max_size=6))
@settings(max_examples=100, deadline=None)
def test_curve_count_bounds_property(rank_traces):
    trace = ActivityTrace(rank_traces)
    _, counts = trace.active_count_curve()
    if counts.size:
        assert counts.max() <= trace.nranks
        # Count can dip below zero only if a rank logs "inactive" first,
        # which the alternation rule permits (run started mid-phase) —
        # but our generator always alternates from the recorded start,
        # so the minimum is bounded by -nranks.
        assert counts.min() >= -trace.nranks
