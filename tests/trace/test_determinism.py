"""Golden determinism contract of the event-tracing subsystem.

Two guarantees, both on the paper's Fig-2 configuration (T3M, 32
ranks):

1. identical configs produce *byte-identical* event streams — the
   simulator is deterministic and the trace encoding is exact;
2. tracing is observationally free — turning ``event_trace`` on must
   not change the simulation (same RunResult, same event count, same
   fingerprint), because observability that perturbs the run would
   invalidate every cached result.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import experiment_config
from repro.core.config import FINGERPRINT_EXCLUDED_FIELDS
from repro.sim.cluster import Cluster
from repro.trace.events import EventTrace
from repro.ws.results import RunResult


def _fig02_config(**overrides):
    return experiment_config("T3M", 32, selector="reference", **overrides)


@pytest.fixture(scope="module")
def traced_pair():
    """Two independent traced runs plus one untraced run of Fig 2."""
    runs = []
    for _ in range(2):
        cfg = _fig02_config(trace=True, event_trace=True)
        runs.append(Cluster(cfg).run())
    plain = Cluster(_fig02_config()).run()
    return runs, plain


def test_event_streams_byte_identical(traced_pair):
    (first, second), _plain = traced_pair
    a = EventTrace.from_recorders(first.event_recorders)
    b = EventTrace.from_recorders(second.event_recorders)
    blob_a, blob_b = a.canonical_bytes(), b.canonical_bytes()
    assert len(a) > 0
    assert blob_a == blob_b


def test_tracing_does_not_change_the_run(traced_pair):
    (traced, _), plain = traced_pair
    assert traced.events_processed == plain.events_processed
    assert traced.total_nodes == plain.total_nodes
    assert traced.total_time == plain.total_time
    ra = RunResult.from_outcome(traced)
    rb = RunResult.from_outcome(plain)
    assert ra.steal_requests == rb.steal_requests
    assert ra.failed_steals == rb.failed_steals
    assert ra.successful_steals == rb.successful_steals


def test_run_result_json_invariant_under_event_trace():
    # trace=False keeps the serialized form comparable (the activity
    # trace *is* serialized; the event stream deliberately is not).
    on = RunResult.from_outcome(
        Cluster(_fig02_config(event_trace=True)).run()
    )
    off = RunResult.from_outcome(Cluster(_fig02_config()).run())
    assert on.events is not None
    assert off.events is None
    assert on.to_json() == off.to_json()


def test_fingerprint_invariant_under_trace_flags():
    base = _fig02_config()
    for kwargs in (
        dict(event_trace=True),
        dict(event_trace=True, event_trace_capacity=4096),
        dict(trace=True, event_trace=True),
    ):
        cfg = _fig02_config(**kwargs)
        if "trace" in kwargs:
            # `trace` itself is part of the fingerprint (pre-existing
            # contract); compare against the matching baseline.
            assert cfg.fingerprint() == _fig02_config(trace=True).fingerprint()
        else:
            assert cfg.fingerprint() == base.fingerprint()


def test_excluded_fields_are_the_observationally_inert_knobs():
    # Trace knobs only add data; engine knobs are bit-identical by the
    # differential suite (tests/sim/test_sharded.py).  Neither may
    # change what a fingerprint caches.
    assert FINGERPRINT_EXCLUDED_FIELDS == frozenset(
        {
            "event_trace",
            "event_trace_capacity",
            "engine",
            "shards",
            "shard_workers",
            "shard_transport",
        }
    )
