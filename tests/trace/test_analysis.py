"""TraceAnalysis unit tests plus the trace/counter differential test.

The differential test is the load-bearing one: the structured event
stream is recorded independently of the counters the workers aggregate
into :class:`~repro.ws.results.RunResult`, so for every selector in
the registry the two views of the same run must agree exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import registry
from repro.errors import TraceError
from repro.sim.cluster import Cluster
from repro.trace.analysis import TraceAnalysis
from repro.trace.events import (
    EV_LIFELINE_PUSH,
    EV_LIFELINE_QUIESCE,
    EV_LIFELINE_WAKE,
    EV_PUSH_RECV,
    EV_SERVE,
    EV_STEAL_FAIL,
    EV_STEAL_OK,
    EV_STEAL_SENT,
    EV_VICTIM_DRAW,
    EventTrace,
)
from repro.uts.params import T3XS
from repro.ws.results import RunResult
from repro.ws.runner import run_uts


def _analysis(*rank_events) -> TraceAnalysis:
    return TraceAnalysis(EventTrace([list(evs) for evs in rank_events]))


class TestCounters:
    def test_basic_counts(self):
        a = _analysis(
            [
                (0.0, EV_STEAL_SENT, 1, 0),
                (1.0, EV_STEAL_FAIL, 1, 0),
                (2.0, EV_STEAL_SENT, 1, 0),
                (3.0, EV_STEAL_OK, 1, 9),
            ],
            [(0.5, EV_SERVE, 0, 9)],
        )
        assert a.steal_requests == 2
        assert a.failed_steals == 1
        assert a.successful_steals == 1
        assert a.requests_served == 1
        assert a.nodes_received == 9
        assert a.nodes_sent == 9
        assert a.steal_success_rate() == pytest.approx(0.5)

    def test_success_rate_nan_without_attempts(self):
        a = _analysis([], [])
        assert np.isnan(a.steal_success_rate())
        assert np.isnan(a.per_rank_success_rates()).all()

    def test_push_traffic_counts_as_node_movement(self):
        a = _analysis(
            [(1.0, EV_LIFELINE_PUSH, 1, 4)],
            [(1.5, EV_PUSH_RECV, 0, 4)],
        )
        assert a.nodes_sent == 4
        assert a.nodes_received == 4


class TestReplyLatencies:
    def test_pairs_request_with_next_reply(self):
        a = _analysis(
            [
                (0.0, EV_STEAL_SENT, 1, 0),
                (0.25, EV_STEAL_FAIL, 1, 0),
                (1.0, EV_STEAL_SENT, 1, 0),
                (1.75, EV_STEAL_OK, 1, 3),
            ]
        )
        assert a.reply_latencies().tolist() == [0.25, 0.75]

    def test_trailing_unmatched_request_ignored(self):
        a = _analysis([(0.0, EV_STEAL_SENT, 1, 0)])
        assert a.reply_latencies().size == 0

    def test_overlapping_requests_raise(self):
        a = _analysis(
            [(0.0, EV_STEAL_SENT, 1, 0), (0.5, EV_STEAL_SENT, 2, 0)]
        )
        with pytest.raises(TraceError, match="overlapping"):
            a.reply_latencies()

    def test_orphan_reply_raises(self):
        a = _analysis([(0.5, EV_STEAL_OK, 1, 3)])
        with pytest.raises(TraceError, match="no\\s+outstanding"):
            a.reply_latencies()

    def test_wake_delivery_is_not_a_reply(self):
        # A quiescent rank woken by a lifeline push receives work with
        # no outstanding request; that steal_ok carries no latency.
        a = _analysis(
            [
                (0.0, EV_STEAL_SENT, 1, 0),
                (0.5, EV_STEAL_FAIL, 1, 0),
                (1.0, EV_LIFELINE_QUIESCE, 0, 0),
                (2.0, EV_LIFELINE_WAKE, 2, 0),
                (2.0, EV_STEAL_OK, 2, 6),
            ]
        )
        assert a.reply_latencies().tolist() == [0.5]

    def test_truncated_stream_tolerates_orphan_replies(self):
        # A bounded ring drops the oldest events, so a truncated rank
        # can open with a reply whose request was overwritten.
        events = EventTrace(
            [[(0.5, EV_STEAL_OK, 1, 3), (1.0, EV_STEAL_SENT, 1, 0),
              (1.25, EV_STEAL_FAIL, 1, 0)]],
            dropped=[4],
        )
        assert TraceAnalysis(events).reply_latencies().tolist() == [0.25]

    def test_latency_histogram_empty(self):
        counts, edges = _analysis([]).latency_histogram(bins=5)
        assert counts.tolist() == [0] * 5
        assert edges.size == 6


class TestChains:
    def test_runs_split_by_success(self):
        a = _analysis(
            [
                (0.0, EV_STEAL_FAIL, 1, 0),
                (1.0, EV_STEAL_FAIL, 2, 0),
                (2.0, EV_STEAL_OK, 3, 1),
                (3.0, EV_STEAL_FAIL, 1, 0),
            ]
        )
        assert a.failed_chains() == [2, 1]

    def test_no_fails_no_chains(self):
        assert _analysis([(0.0, EV_STEAL_OK, 1, 1)]).failed_chains() == []


class TestDistances:
    def test_requires_placement(self):
        a = _analysis([(0.0, EV_VICTIM_DRAW, 1, 1)])
        with pytest.raises(TraceError, match="[Pp]lacement"):
            a.draw_distances()

    def test_distances_from_run_placement(self):
        cfg = dict(tree=T3XS, nranks=8, selector="tofu", event_trace=True)
        from repro.core.config import WorkStealingConfig

        outcome = Cluster(WorkStealingConfig(**cfg)).run()
        result = RunResult.from_outcome(outcome)
        a = TraceAnalysis(result.events, placement=outcome.placement)
        d = a.draw_distances()
        assert d.size == result.events.count(EV_VICTIM_DRAW)
        assert (d >= 0).all() and np.isfinite(d).all()


# ----------------------------------------------------------------------
# Differential test: event-stream counts == worker counters, for every
# selector the registry knows (pattern entries pinned to a parameter).
# ----------------------------------------------------------------------

_PATTERN_ARGS = {"skew[<alpha>]": "skew[1.5]", "hier[<p_near>]": "hier[0.75]",
                 "latskew[<alpha>]": "latskew[1.5]",
                 "adapt-eps[<eps>]": "adapt-eps[0.1]",
                 "adapt-sr[<decay>]": "adapt-sr[0.9]",
                 "adapt-backoff[<fails>]": "adapt-backoff[2]"}


def _concrete_selectors() -> list[str]:
    return [
        _PATTERN_ARGS.get(name, name) for name in registry.available("selector")
    ]


@pytest.mark.parametrize("selector", _concrete_selectors())
def test_trace_counts_match_result_counters(selector):
    result = run_uts(
        tree=T3XS, nranks=8, selector=selector, event_trace=True
    )
    a = TraceAnalysis(result.events)
    assert a.steal_requests == result.steal_requests
    assert a.failed_steals == result.failed_steals
    assert a.successful_steals == result.successful_steals
    assert a.nodes_received == result.nodes_stolen
    # Conservation: every node a victim packaged arrived at a thief.
    assert a.nodes_sent == a.nodes_received
    # Every request was drawn from the selector first.
    assert a.events.count(EV_VICTIM_DRAW) == a.steal_requests
    # And every completed attempt produced a latency sample.
    assert a.reply_latencies().size == a.successful_steals + a.failed_steals


def test_trace_counts_match_lifeline_counters():
    result = run_uts(
        tree=T3XS, nranks=8, selector="rand", lifelines=2, event_trace=True
    )
    a = TraceAnalysis(result.events)
    assert a.steal_requests == result.steal_requests
    assert a.failed_steals == result.failed_steals
    assert a.successful_steals == result.successful_steals
    # Steals + push merges together account for all received nodes.
    assert a.nodes_received == result.nodes_stolen
    assert a.nodes_sent == a.nodes_received
    # reply_latencies must tolerate push-wake deliveries.
    a.reply_latencies()


def test_lifeline_episode_counts_match_workers():
    from repro.core.config import WorkStealingConfig

    cfg = WorkStealingConfig(
        tree=T3XS, nranks=8, selector="rand", lifelines=2, event_trace=True
    )
    outcome = Cluster(cfg).run()
    events = EventTrace.from_recorders(outcome.event_recorders)
    workers = outcome.workers
    assert events.count(EV_LIFELINE_QUIESCE) == sum(
        w.quiesce_episodes for w in workers
    )
    assert events.count(EV_LIFELINE_WAKE) == sum(
        w.lifeline_wakeups for w in workers
    )
    assert events.count(EV_LIFELINE_PUSH) == sum(
        w.lifeline_pushes for w in workers
    )
