"""Chrome-trace exporter and structural-validator tests."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.tracing import ActivityTrace
from repro.errors import TraceError
from repro.sim.cluster import Cluster
from repro.trace.chrome import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.trace.events import (
    EV_DENY,
    EV_SERVE,
    EV_STEAL_FAIL,
    EV_STEAL_OK,
    EV_STEAL_SENT,
    EventTrace,
)
from repro.uts.params import T3XS
from repro.ws.results import RunResult


def _run_trace():
    from repro.core.config import WorkStealingConfig

    cfg = WorkStealingConfig(
        tree=T3XS, nranks=8, selector="rand", trace=True, event_trace=True
    )
    return RunResult.from_outcome(Cluster(cfg).run())


class TestExport:
    def test_real_run_export_validates(self):
        result = _run_trace()
        data = chrome_trace(
            result.events, result.trace, total_time=result.total_time
        )
        n = validate_chrome_trace(data)
        assert n == len(data["traceEvents"]) > result.nranks
        assert data["otherData"]["ranks"] == 8

    def test_export_is_json_serializable(self, tmp_path):
        result = _run_trace()
        data = chrome_trace(result.events, result.trace,
                            total_time=result.total_time)
        out = tmp_path / "run.trace.json"
        write_chrome_trace(out, data)
        reread = json.loads(out.read_text())
        assert validate_chrome_trace(reread) == len(data["traceEvents"])

    def test_flow_arrows_pair_request_and_reply(self):
        events = EventTrace(
            [
                [(1e-3, EV_STEAL_SENT, 1, 0), (3e-3, EV_STEAL_OK, 1, 5)],
                [(2e-3, EV_SERVE, 0, 5)],
            ]
        )
        te = chrome_trace(events)["traceEvents"]
        flows = [ev for ev in te if ev["ph"] in ("s", "t", "f")]
        assert [ev["ph"] for ev in flows] == ["s", "t", "f"]
        assert len({ev["id"] for ev in flows}) == 1
        # Timestamps converted to microseconds.
        assert flows[0]["ts"] == pytest.approx(1e3)

    def test_unanswered_request_has_no_finish(self):
        events = EventTrace(
            [
                [(0.0, EV_STEAL_SENT, 1, 0), (1.0, EV_STEAL_FAIL, 1, 0),
                 (2.0, EV_STEAL_SENT, 1, 0)],
                [(0.5, EV_DENY, 0, 0)],
            ]
        )
        te = chrome_trace(events)["traceEvents"]
        assert sum(1 for ev in te if ev["ph"] == "s") == 2
        assert sum(1 for ev in te if ev["ph"] == "f") == 1

    def test_activity_lanes_closed_at_total_time(self):
        events = EventTrace([[], []])
        activity = ActivityTrace(
            [
                (np.array([0.0, 2.0]), np.array([True, False])),
                (np.array([1.0]), np.array([True])),  # still active at end
            ]
        )
        te = chrome_trace(events, activity, total_time=4.0)["traceEvents"]
        slices = [ev for ev in te if ev["ph"] == "X"]
        assert len(slices) == 2
        open_slice = next(ev for ev in slices if ev["tid"] == 1)
        assert open_slice["dur"] == pytest.approx(3.0 * 1e6)


class TestValidator:
    def _valid(self):
        return {"traceEvents": [{"ph": "M", "pid": 0, "tid": 0,
                                 "name": "process_name", "args": {}}]}

    def test_accepts_minimal(self):
        assert validate_chrome_trace(self._valid()) == 1

    def test_rejects_non_object(self):
        with pytest.raises(TraceError):
            validate_chrome_trace([])

    def test_rejects_missing_trace_events(self):
        with pytest.raises(TraceError, match="traceEvents"):
            validate_chrome_trace({"otherData": {}})

    def test_rejects_unknown_phase(self):
        data = self._valid()
        data["traceEvents"].append({"ph": "Z", "name": "x", "ts": 0})
        with pytest.raises(TraceError, match="phase"):
            validate_chrome_trace(data)

    def test_rejects_missing_name(self):
        data = self._valid()
        data["traceEvents"].append({"ph": "i", "ts": 0})
        with pytest.raises(TraceError, match="name"):
            validate_chrome_trace(data)

    def test_rejects_bad_timestamp(self):
        for ts in (None, -1.0, float("nan"), "0"):
            data = self._valid()
            data["traceEvents"].append({"ph": "i", "name": "x", "ts": ts})
            with pytest.raises(TraceError, match="timestamp"):
                validate_chrome_trace(data)

    def test_rejects_negative_duration(self):
        data = self._valid()
        data["traceEvents"].append(
            {"ph": "X", "name": "x", "ts": 0, "dur": -5}
        )
        with pytest.raises(TraceError, match="duration"):
            validate_chrome_trace(data)

    def test_rejects_flow_without_id(self):
        data = self._valid()
        data["traceEvents"].append({"ph": "s", "name": "x", "ts": 0})
        with pytest.raises(TraceError, match="id"):
            validate_chrome_trace(data)

    def test_rejects_non_int_pid(self):
        data = self._valid()
        data["traceEvents"].append(
            {"ph": "i", "name": "x", "ts": 0, "pid": "zero"}
        )
        with pytest.raises(TraceError, match="pid"):
            validate_chrome_trace(data)
