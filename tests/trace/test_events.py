"""Unit tests for the event recorder and validated event trace."""

from __future__ import annotations

import math

import pytest

from repro.errors import TraceError
from repro.trace.events import (
    EV_DENY,
    EV_SERVE,
    EV_STEAL_FAIL,
    EV_STEAL_OK,
    EV_STEAL_SENT,
    EV_TOKEN,
    EVENT_NAMES,
    EVENT_SCHEMA,
    EventRecorder,
    EventTrace,
)


class TestRecorder:
    def test_append_and_events(self):
        r = EventRecorder()
        r.append(0.0, EV_STEAL_SENT, 3)
        r.append(1.0, EV_STEAL_FAIL, 3)
        assert len(r) == 2
        assert r.events() == [(0.0, EV_STEAL_SENT, 3, 0), (1.0, EV_STEAL_FAIL, 3, 0)]
        assert r.dropped == 0

    def test_unbounded_by_default(self):
        r = EventRecorder()
        for k in range(1000):
            r.append(float(k), EV_TOKEN)
        assert len(r) == 1000
        assert r.dropped == 0
        assert r.capacity == 0

    def test_ring_overwrites_oldest(self):
        r = EventRecorder(capacity=3)
        for k in range(5):
            r.append(float(k), EV_TOKEN, k)
        assert len(r) == 3
        assert r.dropped == 2
        # Oldest two events (t=0, t=1) were overwritten; the unrolled
        # view is chronological.
        assert [ev[0] for ev in r.events()] == [2.0, 3.0, 4.0]

    def test_ring_exactly_full_not_dropped(self):
        r = EventRecorder(capacity=2)
        r.append(0.0, EV_TOKEN)
        r.append(1.0, EV_TOKEN)
        assert r.dropped == 0
        assert [ev[0] for ev in r.events()] == [0.0, 1.0]

    def test_negative_capacity_rejected(self):
        with pytest.raises(TraceError):
            EventRecorder(capacity=-1)


class TestEventTraceValidation:
    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            EventTrace([])

    def test_out_of_order_rejected(self):
        with pytest.raises(TraceError, match="out of order"):
            EventTrace([[(1.0, EV_TOKEN, 0, 0), (0.5, EV_TOKEN, 0, 0)]])

    def test_equal_times_allowed(self):
        t = EventTrace([[(1.0, EV_TOKEN, 0, 0), (1.0, EV_TOKEN, 0, 0)]])
        assert len(t) == 2

    def test_nan_timestamp_rejected(self):
        """NaN compares False against everything, so a plain ordering
        check would silently accept it — must be rejected explicitly."""
        with pytest.raises(TraceError, match="non-finite"):
            EventTrace([[(math.nan, EV_TOKEN, 0, 0)]])

    def test_inf_timestamp_rejected(self):
        with pytest.raises(TraceError, match="non-finite"):
            EventTrace([[(math.inf, EV_TOKEN, 0, 0)]])

    def test_unknown_etype_rejected(self):
        with pytest.raises(TraceError, match="unknown event type"):
            EventTrace([[(0.0, 999, 0, 0)]])

    def test_bad_tuple_shape_rejected(self):
        with pytest.raises(TraceError, match="4-tuple"):
            EventTrace([[(0.0, EV_TOKEN, 0)]])

    def test_empty_rank_streams_ok(self):
        t = EventTrace([[], []])
        assert t.nranks == 2
        assert len(t) == 0

    def test_from_recorders_sorts_interleaved_times(self):
        # Causal order can interleave timestamps (a victim answers a
        # mid-quantum arrival after advancing its local clock); the
        # assembler normalises each rank chronologically.
        r = EventRecorder()
        r.append(2.0, EV_SERVE, 1, 5)
        r.append(1.5, EV_DENY, 2)
        t = EventTrace.from_recorders([r])
        assert [ev[0] for ev in t.ranks[0]] == [1.5, 2.0]

    def test_from_recorders_carries_dropped(self):
        r = EventRecorder(capacity=1)
        r.append(0.0, EV_TOKEN)
        r.append(1.0, EV_TOKEN)
        t = EventTrace.from_recorders([r])
        assert t.dropped == [1]


class TestEventTraceViews:
    def _trace(self) -> EventTrace:
        return EventTrace(
            [
                [(0.0, EV_STEAL_SENT, 1, 0), (1.0, EV_STEAL_OK, 1, 7)],
                [(0.5, EV_SERVE, 0, 7)],
            ]
        )

    def test_count(self):
        t = self._trace()
        assert t.count(EV_STEAL_SENT) == 1
        assert t.count(EV_SERVE) == 1
        assert t.count(EV_SERVE, rank=0) == 0
        assert t.count(EV_SERVE, rank=1) == 1

    def test_merged_is_time_sorted_with_rank_tiebreak(self):
        t = EventTrace(
            [
                [(1.0, EV_TOKEN, 0, 0)],
                [(0.5, EV_TOKEN, 1, 0), (1.0, EV_TOKEN, 1, 0)],
            ]
        )
        merged = t.merged()
        assert [(ev[0], ev[1]) for ev in merged] == [(0.5, 1), (1.0, 0), (1.0, 1)]

    def test_canonical_bytes_round_trip_exact(self):
        t = self._trace()
        blob = t.canonical_bytes()
        assert blob == t.canonical_bytes()
        # repr of floats is shortest-round-trip: a one-ulp difference
        # must change the encoding.
        bumped = EventTrace(
            [
                [
                    (0.0, EV_STEAL_SENT, 1, 0),
                    (math.nextafter(1.0, 2.0), EV_STEAL_OK, 1, 7),
                ],
                [(0.5, EV_SERVE, 0, 7)],
            ]
        )
        assert bumped.canonical_bytes() != blob


def test_schema_covers_every_event_type():
    assert set(EVENT_SCHEMA) == set(EVENT_NAMES)
    assert len(set(EVENT_NAMES.values())) == len(EVENT_NAMES)
