"""Tests for ``python -m repro.trace`` and the bench ``--trace`` hook."""

from __future__ import annotations

import json

import pytest

from repro.trace.__main__ import main
from repro.trace.chrome import validate_chrome_trace
from repro.trace.presets import TRACE_PRESETS, available_presets, preset_config
from repro.errors import ConfigurationError


class TestPresets:
    def test_presets_force_tracing_on(self):
        cfg = preset_config("smoke")
        assert cfg.trace is True
        assert cfg.event_trace is True

    def test_overrides_forwarded(self):
        cfg = preset_config("smoke", nranks=16, seed=7)
        assert cfg.nranks == 16
        assert cfg.seed == 7

    def test_unknown_preset_raises(self):
        with pytest.raises(ConfigurationError, match="unknown trace preset"):
            preset_config("fig99")

    def test_fig02_preset_matches_paper_band(self):
        cfg = preset_config("fig02")
        assert cfg.tree.name == "T3M"
        assert cfg.nranks == 32

    def test_available_matches_table(self):
        assert available_presets() == list(TRACE_PRESETS)


class TestCli:
    def test_smoke_run_emits_valid_trace(self, tmp_path, capsys):
        out = tmp_path / "smoke.trace.json"
        rc = main(["--config", "smoke", "--out", str(out), "--check"])
        assert rc == 0
        data = json.loads(out.read_text())
        assert validate_chrome_trace(data) > 0
        captured = capsys.readouterr()
        assert "steal requests:" in captured.out
        assert "validation ok" in captured.err

    def test_capacity_override_bounds_the_ring(self, tmp_path):
        out = tmp_path / "tiny.trace.json"
        rc = main(["--config", "smoke", "--out", str(out), "--capacity", "8"])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["otherData"]["dropped"] > 0

    def test_list_exits_zero(self, capsys):
        assert main(["--list"]) == 0
        assert "fig02" in capsys.readouterr().out

    def test_unknown_preset_exits_two(self, capsys):
        assert main(["--config", "nope"]) == 2
        assert "unknown trace preset" in capsys.readouterr().err


class TestBenchHook:
    def test_emit_trace_without_preset_errors(self, capsys):
        from repro.bench.__main__ import _emit_trace

        assert _emit_trace("fig04") == 2
        assert "no trace preset" in capsys.readouterr().err

    def test_emit_trace_writes_artifact(self, tmp_path, monkeypatch):
        from repro.bench.__main__ import _emit_trace

        monkeypatch.chdir(tmp_path)
        assert _emit_trace("smoke") == 0
        out = tmp_path / "benchmarks" / "_artifacts" / "smoke.trace.json"
        assert out.exists()
        assert validate_chrome_trace(json.loads(out.read_text())) > 0
