"""Tests for tree parameter validation and the named-tree registry."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.uts.params import (
    T3L,
    T3S,
    T3WL,
    T3XXL,
    TREES,
    TreeParams,
    tree_by_name,
)


class TestValidation:
    def test_valid_binomial(self):
        p = TreeParams(name="x", tree_type="binomial", root_seed=0, q=0.3)
        assert p.m * p.q < 1.0

    def test_unknown_tree_type(self):
        with pytest.raises(ConfigurationError):
            TreeParams(name="x", tree_type="ternary", root_seed=0)

    def test_unknown_shape(self):
        with pytest.raises(ConfigurationError):
            TreeParams(name="x", tree_type="geometric", root_seed=0, shape="spiral")

    def test_supercritical_rejected(self):
        with pytest.raises(ConfigurationError):
            TreeParams(name="x", tree_type="binomial", root_seed=0, m=2, q=0.5)

    def test_q_out_of_range(self):
        with pytest.raises(ConfigurationError):
            TreeParams(name="x", tree_type="binomial", root_seed=0, q=1.5)
        with pytest.raises(ConfigurationError):
            TreeParams(name="x", tree_type="binomial", root_seed=0, q=-0.1)

    def test_bad_b0(self):
        with pytest.raises(ConfigurationError):
            TreeParams(name="x", tree_type="binomial", root_seed=0, b0=0)

    def test_bad_m(self):
        with pytest.raises(ConfigurationError):
            TreeParams(name="x", tree_type="binomial", root_seed=0, m=0, q=0.3)

    def test_bad_gen_mx(self):
        with pytest.raises(ConfigurationError):
            TreeParams(name="x", tree_type="geometric", root_seed=0, gen_mx=0)

    def test_bad_shift(self):
        with pytest.raises(ConfigurationError):
            TreeParams(name="x", tree_type="hybrid", root_seed=0, q=0.4, shift=0.0)

    def test_frozen(self):
        p = TreeParams(name="x", tree_type="binomial", root_seed=0, q=0.3)
        with pytest.raises(AttributeError):
            p.q = 0.4  # type: ignore[misc]


class TestAnalytics:
    def test_expected_subtree_size(self):
        p = TreeParams(name="x", tree_type="binomial", root_seed=0, m=2, q=0.25)
        assert p.expected_subtree_size == pytest.approx(2.0)

    def test_analytic_expected_size(self):
        p = TreeParams(
            name="x", tree_type="binomial", root_seed=0, b0=100, m=2, q=0.25
        )
        assert p.analytic_expected_size == pytest.approx(201.0)

    def test_subtree_size_binomial_only(self):
        p = TreeParams(name="x", tree_type="geometric", root_seed=0)
        with pytest.raises(ConfigurationError):
            _ = p.expected_subtree_size


class TestPaperTrees:
    """Table I of the paper, reproduced verbatim."""

    def test_t3xxl_parameters(self):
        assert T3XXL.root_seed == 316
        assert T3XXL.b0 == 2000
        assert T3XXL.m == 2
        assert T3XXL.q == 0.499995
        assert T3XXL.expected_size == 2_793_220_501

    def test_t3wl_parameters(self):
        assert T3WL.root_seed == 559
        assert T3WL.b0 == 2000
        assert T3WL.m == 2
        assert T3WL.q == 0.4999995
        assert T3WL.expected_size == 157_063_495_159

    def test_paper_tree_analytic_order_of_magnitude(self):
        # Expected size 1 + b0/(1-2q) = 1 + 2000 * 1e5 = 2e8; the
        # published realised size is 2.79e9 — a heavy-tail draw, but
        # within ~15x of the mean, sanity-checking the formula.
        assert T3XXL.analytic_expected_size == pytest.approx(2.000e8, rel=1e-3)

    def test_scaled_trees_keep_structure(self):
        for tree in (T3S, T3L):
            assert tree.tree_type == "binomial"
            assert tree.m == T3XXL.m
            # Root fan-out stays in the paper's regime (T3L widens it to
            # preserve width at the simulated rank counts, see params.py).
            assert tree.b0 >= T3XXL.b0
            assert tree.m * tree.q < 1.0


class TestRegistry:
    def test_contains_paper_and_scaled_trees(self):
        for name in ("T3XXL", "T3WL", "T3S", "T3L", "GEO_S", "HYB_S"):
            assert name in TREES

    def test_lookup_roundtrip(self):
        for name, params in TREES.items():
            assert tree_by_name(name) is params

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            tree_by_name("T9ZZZ")

    def test_names_consistent(self):
        for name, params in TREES.items():
            assert params.name == name
