"""Bit-identity of the list fast paths against the array reference.

The simulator's hot loop runs on plain-Python-list variants of the
stack and generator operations (``pop_batch_list`` /
``push_batch_list`` / ``children_list`` / ``expand_quantum``).  Every
experiment's determinism rests on those producing *exactly* what the
array paths produce — same values, same order, same stack layout.
These tests drive both paths side by side and require equality at
every step.
"""

import numpy as np
import pytest

from repro.uts.params import tree_by_name
from repro.uts.rng import SplitMix64Backend, backend_by_name
from repro.uts.stack import ChunkedStack
from repro.uts.tree import TreeGenerator


def _layout(stack: ChunkedStack) -> list[tuple[list[int], list[int]]]:
    return [(list(c.states), list(c.depths)) for c in stack._chunks]


class TestStackListVsArray:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_op_sequence_identical(self, seed):
        rng = np.random.default_rng(seed)
        a = ChunkedStack(7)
        b = ChunkedStack(7)
        counter = 0
        for _ in range(400):
            if rng.random() < 0.55 or a.is_empty:
                n = int(rng.integers(1, 30))
                states = list(range(counter, counter + n))
                depths = [int(rng.integers(0, 10)) for _ in range(n)]
                counter += n
                a.push_batch(
                    np.array(states, dtype=np.uint64),
                    np.array(depths, dtype=np.int32),
                )
                b.push_batch_list(states, depths)
            else:
                n = int(rng.integers(1, 25))
                sa, da = a.pop_batch(n)
                sb, db = b.pop_batch_list(n)
                assert sa.tolist() == sb
                assert da.tolist() == db
            assert _layout(a) == _layout(b)
            a.check_invariant()
            b.check_invariant()
        assert a.size == b.size
        assert a.total_pushed == b.total_pushed
        assert a.total_popped == b.total_popped

    def test_pop_zero_and_pop_all(self):
        s = ChunkedStack(4)
        s.push_batch_list([1, 2, 3, 4, 5], [0, 0, 0, 0, 0])
        states, depths = s.pop_batch_list(0)
        assert states == [] and depths == []
        assert s.size == 5
        states, _ = s.pop_batch_list(99)
        assert len(states) == 5
        assert s.is_empty


class TestChildrenListVsBatch:
    @pytest.mark.parametrize("tree", ["T3XS", "T3S"])
    def test_interior_nodes_identical(self, tree):
        gen = TreeGenerator(tree_by_name(tree))
        assert gen.supports_list_path
        root_state, _ = gen.root()
        # A spread of states: walk a few levels so depths vary.
        states = [root_state]
        depths = [1]
        for i in range(60):
            states.append(gen.backend.spawn(states[i], i % 7))
            depths.append(1 + (i % 5))
        cs_l, cd_l = gen.children_list(states, depths)
        cs_b, cd_b, _ = gen.children_batch(
            np.array(states, dtype=np.uint64),
            np.array(depths, dtype=np.int32),
        )
        assert cs_l == cs_b.tolist()
        assert cd_l == cd_b.tolist()

    def test_root_matches_scalar_children(self):
        gen = TreeGenerator(tree_by_name("T3XS"))
        state, depth = gen.root()
        cs_l, cd_l = gen.children_list([state], [depth])
        scalar_children, child_depth = gen.children(state, depth)
        assert cs_l == scalar_children
        assert cd_l == [child_depth] * len(scalar_children)
        assert len(cs_l) == gen.params.b0

    def test_sha1_backend_has_no_list_path(self):
        gen = TreeGenerator(tree_by_name("T3XS"), backend_by_name("sha1"))
        assert not gen.supports_list_path

    def test_full_tree_traversal_identical(self):
        gen = TreeGenerator(tree_by_name("T3XS"))
        root_state, root_depth = gen.root()

        def run(use_list):
            stack = ChunkedStack(20)
            stack.push_batch_list([root_state], [root_depth])
            visited = []
            while stack._chunks:
                if use_list:
                    s, d = stack.pop_batch_list(2)
                    cs, cd = gen.children_list(s, d)
                    if cs:
                        stack.push_batch_list(cs, cd)
                else:
                    sa, da = stack.pop_batch(2)
                    s, d = sa.tolist(), da.tolist()
                    cs, cd, _ = gen.children_batch(sa, da)
                    if len(cs):
                        stack.push_batch(cs, cd)
                visited.extend(zip(s, d))
            return visited

        assert run(use_list=True) == run(use_list=False)


class TestExpandQuantumFusion:
    @pytest.mark.parametrize("quantum", [1, 2, 5, 20, 50])
    def test_matches_unfused_sequence(self, quantum):
        gen = TreeGenerator(tree_by_name("T3XS"))
        root_state, root_depth = gen.root()

        fused = ChunkedStack(20)
        unfused = ChunkedStack(20)
        fused.push_batch_list([root_state], [root_depth])
        unfused.push_batch_list([root_state], [root_depth])

        steps = 0
        while fused._chunks and steps < 500:
            npop_f = fused.expand_quantum(quantum, gen.children_list)
            s, d = unfused.pop_batch_list(quantum)
            cs, cd = gen.children_list(s, d)
            if cs:
                unfused.push_batch_list(cs, cd)
            assert npop_f == len(s)
            assert _layout(fused) == _layout(unfused)
            assert fused.total_pushed == unfused.total_pushed
            assert fused.total_popped == unfused.total_popped
            steps += 1
        assert fused.is_empty == unfused.is_empty

    def test_empty_stack_is_noop(self):
        s = ChunkedStack(4)
        gen = TreeGenerator(tree_by_name("T3XS"))
        assert s.expand_quantum(5, gen.children_list) == 0
        assert s.total_popped == 0


class TestSha1SpawnArray:
    def test_matches_scalar_spawn(self):
        be = backend_by_name("sha1")
        rng = np.random.default_rng(0)
        states = rng.integers(0, 2**63, size=40, dtype=np.uint64)
        indices = rng.integers(0, 100, size=40, dtype=np.uint64)
        vec = be.spawn_array(states, indices)
        scalar = [
            be.spawn(int(s), int(i)) for s, i in zip(states, indices)
        ]
        assert vec.tolist() == scalar
        assert vec.dtype == np.uint64

    def test_2d_shape_preserved(self):
        be = backend_by_name("sha1")
        states = np.arange(6, dtype=np.uint64).reshape(2, 3)
        indices = np.arange(6, dtype=np.uint64).reshape(2, 3)
        out = be.spawn_array(states, indices)
        assert out.shape == (2, 3)
        flat = be.spawn_array(states.ravel(), indices.ravel())
        assert out.ravel().tolist() == flat.tolist()


def test_splitmix_increment_precomputation_exact():
    """The cached ``(i * GOLDEN) mod 2^64`` increments must reproduce
    ``spawn(state, i-1)`` exactly — the identity the scalar hot loop
    rests on: ``mix(state + i*G mod 2^64) == mix((state + i*G) mod 2^64)``."""
    be = SplitMix64Backend()
    gen = TreeGenerator(tree_by_name("T3XS"), be)
    state = be.root_state(42)
    count = gen.count_children(state, 1)
    expected = [be.spawn(state, i) for i in range(count)]
    got_s, _ = gen.children_list([state], [1])
    assert got_s == expected
