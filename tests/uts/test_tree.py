"""Tests for child generation: scalar vs vectorised, all tree types."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uts.params import GEO_M, GEO_S, HYB_S, TreeParams
from repro.uts.rng import Sha1Backend, SplitMix64Backend
from repro.uts.tree import MAX_GEO_CHILDREN, TreeGenerator


def _walk_states(gen: TreeGenerator, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Collect ``n`` reachable (state, depth) pairs by BFS from the root."""
    state, depth = gen.root()
    states = [state]
    depths = [depth]
    frontier = [(state, depth)]
    while len(states) < n and frontier:
        s, d = frontier.pop(0)
        children, cd = gen.children(s, d)
        for c in children:
            if len(states) >= n:
                break
            states.append(c)
            depths.append(cd)
            frontier.append((c, cd))
    return np.array(states, dtype=np.uint64), np.array(depths, dtype=np.int32)


BIN = TreeParams(name="bin", tree_type="binomial", root_seed=3, b0=50, m=3, q=0.3)
GEO_LIN = TreeParams(
    name="geo", tree_type="geometric", root_seed=3, b0=3, gen_mx=6, shape="linear"
)
GEO_FIX = TreeParams(
    name="geof", tree_type="geometric", root_seed=4, b0=2, gen_mx=5, shape="fixed"
)
GEO_CYC = TreeParams(
    name="geoc", tree_type="geometric", root_seed=5, b0=3, gen_mx=6, shape="cyclic"
)
GEO_EXP = TreeParams(
    name="geoe", tree_type="geometric", root_seed=6, b0=4, gen_mx=6, shape="expdec"
)
HYB = TreeParams(
    name="hyb",
    tree_type="hybrid",
    root_seed=7,
    b0=3,
    m=2,
    q=0.35,
    gen_mx=6,
    shape="linear",
    shift=0.5,
)

ALL_PARAMS = [BIN, GEO_LIN, GEO_FIX, GEO_CYC, GEO_EXP, HYB]


@pytest.mark.parametrize("params", ALL_PARAMS, ids=lambda p: p.name)
@pytest.mark.parametrize(
    "backend", [Sha1Backend(), SplitMix64Backend()], ids=lambda b: b.name
)
class TestScalarVsVectorised:
    """The two code paths must agree node-for-node."""

    def test_counts_agree(self, params, backend):
        gen = TreeGenerator(params, backend)
        states, depths = _walk_states(gen, 300)
        vec = gen.count_children_batch(states, depths)
        for k in range(len(states)):
            assert vec[k] == gen.count_children(int(states[k]), int(depths[k]))

    def test_children_agree(self, params, backend):
        gen = TreeGenerator(params, backend)
        states, depths = _walk_states(gen, 100)
        cs, cd, counts = gen.children_batch(states, depths)
        offset = 0
        for k in range(len(states)):
            expect, expect_depth = gen.children(int(states[k]), int(depths[k]))
            got = cs[offset : offset + counts[k]].tolist()
            assert got == expect
            if counts[k]:
                assert np.all(cd[offset : offset + counts[k]] == expect_depth)
            offset += int(counts[k])
        assert offset == len(cs)


class TestBinomialRules:
    def test_root_has_b0_children(self):
        gen = TreeGenerator(BIN)
        state, depth = gen.root()
        assert gen.count_children(state, depth) == BIN.b0

    def test_non_root_counts_are_zero_or_m(self):
        gen = TreeGenerator(BIN)
        states, depths = _walk_states(gen, 500)
        counts = gen.count_children_batch(states, depths)
        non_root = counts[depths > 0]
        assert set(np.unique(non_root)).issubset({0, BIN.m})

    def test_empirical_q(self):
        # Fraction of non-root nodes with children ~ q.
        gen = TreeGenerator(BIN)
        states, depths = _walk_states(gen, 2000)
        counts = gen.count_children_batch(states, depths)
        non_root = counts[depths > 0]
        frac = float((non_root > 0).mean())
        assert abs(frac - BIN.q) < 0.08

    def test_batch_root_special_case(self):
        gen = TreeGenerator(BIN)
        state, _ = gen.root()
        counts = gen.count_children_batch(
            np.array([state], dtype=np.uint64), np.array([0], dtype=np.int32)
        )
        assert counts[0] == BIN.b0


class TestGeometricRules:
    @pytest.mark.parametrize(
        "params", [GEO_LIN, GEO_FIX, GEO_CYC, GEO_EXP], ids=lambda p: p.shape
    )
    def test_leaf_at_depth_limit(self, params):
        gen = TreeGenerator(params)
        state, _ = gen.root()
        assert gen.count_children(state, params.gen_mx) == 0
        assert gen.count_children(state, params.gen_mx + 3) == 0

    def test_counts_capped(self):
        gen = TreeGenerator(GEO_FIX)
        states, depths = _walk_states(gen, 1000)
        counts = gen.count_children_batch(states, depths)
        assert counts.max() <= MAX_GEO_CHILDREN

    def test_linear_shape_decays(self):
        gen = TreeGenerator(GEO_LIN)
        bs = [gen._expected_branching(d) for d in range(GEO_LIN.gen_mx + 1)]
        assert bs[0] == pytest.approx(GEO_LIN.b0)
        assert all(b2 <= b1 for b1, b2 in zip(bs, bs[1:]))
        assert bs[-1] == 0.0

    def test_fixed_shape_constant(self):
        gen = TreeGenerator(GEO_FIX)
        for d in range(GEO_FIX.gen_mx):
            assert gen._expected_branching(d) == pytest.approx(GEO_FIX.b0)

    def test_expdec_shape_decays(self):
        gen = TreeGenerator(GEO_EXP)
        bs = [gen._expected_branching(d) for d in range(GEO_EXP.gen_mx)]
        assert all(b2 < b1 for b1, b2 in zip(bs, bs[1:]))

    def test_cyclic_shape_bounded(self):
        gen = TreeGenerator(GEO_CYC)
        for d in range(GEO_CYC.gen_mx * 5 + 2):
            b = gen._expected_branching(d)
            assert 0.0 <= b <= GEO_CYC.b0

    def test_empirical_mean_branching(self):
        # With the fixed shape, mean children per interior-depth node
        # should approximate b0.
        gen = TreeGenerator(GEO_FIX)
        states, depths = _walk_states(gen, 3000)
        mask = depths < GEO_FIX.gen_mx
        counts = gen.count_children_batch(states, depths)[mask]
        assert abs(float(counts.mean()) - GEO_FIX.b0) < 0.5


class TestHybridRules:
    def test_geometric_phase_then_binomial(self):
        gen = TreeGenerator(HYB)
        states, depths = _walk_states(gen, 2000)
        counts = gen.count_children_batch(states, depths)
        switch = HYB.shift * HYB.gen_mx
        bin_phase = counts[(depths >= switch) & (depths > 0)]
        assert set(np.unique(bin_phase)).issubset({0, HYB.m})

    def test_named_hybrid_generates(self):
        gen = TreeGenerator(HYB_S)
        state, depth = gen.root()
        children, _ = gen.children(state, depth)
        assert len(children) >= 0  # total function, no crash


class TestBatchMechanics:
    def test_empty_batch(self):
        gen = TreeGenerator(BIN)
        cs, cd, counts = gen.children_batch(
            np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int32)
        )
        assert len(cs) == 0 and len(cd) == 0 and len(counts) == 0

    def test_all_leaves_batch(self):
        gen = TreeGenerator(GEO_LIN)
        states = np.arange(10, dtype=np.uint64)
        depths = np.full(10, GEO_LIN.gen_mx, dtype=np.int32)
        cs, cd, counts = gen.children_batch(states, depths)
        assert len(cs) == 0
        assert counts.sum() == 0

    def test_child_depths_increment(self):
        gen = TreeGenerator(BIN)
        states, depths = _walk_states(gen, 50)
        cs, cd, counts = gen.children_batch(states, depths)
        expected = np.repeat(depths + 1, counts)
        assert np.array_equal(cd, expected)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_deterministic_across_instances(self, seed):
        p = TreeParams(name="h", tree_type="binomial", root_seed=seed, b0=10, q=0.4)
        g1, g2 = TreeGenerator(p), TreeGenerator(p)
        s1, d1 = g1.root()
        s2, d2 = g2.root()
        assert (s1, d1) == (s2, d2)
        assert g1.children(s1, d1) == g2.children(s2, d2)


def test_named_geo_trees_have_positive_size():
    for p in (GEO_S, GEO_M):
        gen = TreeGenerator(p)
        state, depth = gen.root()
        # The root of a geometric tree may legitimately have 0 children,
        # but for the named trees we picked seeds where it does not.
        assert gen.count_children(state, depth) > 0
