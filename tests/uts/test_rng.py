"""Unit and property tests for the splittable RNG backends."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.uts.rng import (
    UINT31_MAX,
    Sha1Backend,
    SplitMix64Backend,
    backend_by_name,
)

U64 = st.integers(min_value=0, max_value=2**64 - 1)
IDX = st.integers(min_value=0, max_value=2**32 - 1)
SEED = st.integers(min_value=-(2**31), max_value=2**31 - 1)

BACKENDS = [Sha1Backend(), SplitMix64Backend()]


@pytest.mark.parametrize("be", BACKENDS, ids=lambda b: b.name)
class TestBackendContract:
    def test_root_state_deterministic(self, be):
        assert be.root_state(316) == be.root_state(316)

    def test_root_state_depends_on_seed(self, be):
        states = {be.root_state(s) for s in range(64)}
        assert len(states) == 64

    def test_spawn_deterministic(self, be):
        s = be.root_state(1)
        assert be.spawn(s, 3) == be.spawn(s, 3)

    def test_spawn_distinct_indices(self, be):
        s = be.root_state(1)
        children = {be.spawn(s, i) for i in range(100)}
        assert len(children) == 100

    def test_spawn_distinct_parents(self, be):
        a, b = be.root_state(1), be.root_state(2)
        assert be.spawn(a, 0) != be.spawn(b, 0)

    def test_state_in_u64_range(self, be):
        s = be.root_state(7)
        for i in range(32):
            s = be.spawn(s, i)
            assert 0 <= s < 2**64

    def test_to_uint31_range(self, be):
        s = be.root_state(5)
        for i in range(200):
            s = be.spawn(s, 0)
            v = be.to_uint31(s)
            assert 0 <= v < UINT31_MAX

    def test_to_prob_range(self, be):
        s = be.root_state(5)
        for _ in range(100):
            s = be.spawn(s, 0)
            assert 0.0 <= be.to_prob(s) < 1.0

    def test_spawn_array_matches_scalar(self, be):
        states = np.array([be.root_state(s) for s in range(20)], dtype=np.uint64)
        indices = np.arange(20, dtype=np.uint64)
        vec = be.spawn_array(states, indices)
        scalar = [be.spawn(int(s), int(i)) for s, i in zip(states, indices)]
        assert vec.tolist() == scalar

    def test_to_uint31_array_matches_scalar(self, be):
        states = np.array([be.root_state(s) for s in range(50)], dtype=np.uint64)
        vec = be.to_uint31_array(states)
        scalar = [be.to_uint31(int(s)) for s in states]
        assert vec.tolist() == scalar

    def test_spawn_array_shape_mismatch(self, be):
        with pytest.raises(ConfigurationError):
            be.spawn_array(np.zeros(3, dtype=np.uint64), np.zeros(4, dtype=np.uint64))

    def test_uniformity_rough(self, be):
        # The 31-bit draws should cover [0, 2^31) roughly uniformly:
        # mean of n draws concentrates around the midpoint.
        s = be.root_state(99)
        draws = []
        for i in range(2000):
            s = be.spawn(s, i % 7)
            draws.append(be.to_uint31(s))
        mean = np.mean(draws) / UINT31_MAX
        assert 0.45 < mean < 0.55

    def test_bit_balance(self, be):
        # Every output bit of the 31-bit draw should flip ~half the time.
        s = be.root_state(123)
        acc = np.zeros(31, dtype=np.int64)
        n = 2000
        for i in range(n):
            s = be.spawn(s, 0)
            v = be.to_uint31(s)
            for b in range(31):
                acc[b] += (v >> b) & 1
        frac = acc / n
        assert np.all(frac > 0.4) and np.all(frac < 0.6)


class TestSplitMixVectorisation:
    @given(st.lists(U64, min_size=1, max_size=64), st.data())
    @settings(max_examples=50, deadline=None)
    def test_spawn_array_property(self, states, data):
        be = SplitMix64Backend()
        indices = data.draw(
            st.lists(IDX, min_size=len(states), max_size=len(states))
        )
        s = np.array(states, dtype=np.uint64)
        i = np.array(indices, dtype=np.uint64)
        vec = be.spawn_array(s, i)
        for k in range(len(states)):
            assert int(vec[k]) == be.spawn(states[k], indices[k])

    @given(U64, IDX)
    @settings(max_examples=200, deadline=None)
    def test_spawn_in_range(self, state, index):
        be = SplitMix64Backend()
        child = be.spawn(state, index)
        assert 0 <= child < 2**64

    def test_2d_arrays_supported(self):
        be = SplitMix64Backend()
        s = np.arange(12, dtype=np.uint64).reshape(3, 4)
        i = np.ones((3, 4), dtype=np.uint64)
        out = be.spawn_array(s, i)
        assert out.shape == (3, 4)


class TestSha1Backend:
    def test_known_vector_stability(self):
        # Pin the concrete values so any accidental change to the hash
        # construction (byte order, truncation) is caught.
        be = Sha1Backend()
        root = be.root_state(316)
        child = be.spawn(root, 0)
        assert root == be.root_state(316)
        assert child == be.spawn(root, 0)
        # Root and child must differ and be 64-bit.
        assert root != child
        assert root < 2**64 and child < 2**64

    def test_negative_seed_ok(self):
        be = Sha1Backend()
        assert be.root_state(-5) != be.root_state(5)

    @given(SEED)
    @settings(max_examples=100, deadline=None)
    def test_root_state_total_function(self, seed):
        be = Sha1Backend()
        s = be.root_state(seed)
        assert 0 <= s < 2**64


class TestBackendRegistry:
    def test_lookup(self):
        assert backend_by_name("sha1").name == "sha1"
        assert backend_by_name("splitmix64").name == "splitmix64"

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            backend_by_name("mt19937")

    def test_instances_are_fresh(self):
        assert backend_by_name("sha1") is not backend_by_name("sha1")


def test_backends_generate_different_streams():
    """The two backends are different RNGs (documented, not a bug)."""
    a, b = Sha1Backend(), SplitMix64Backend()
    assert a.root_state(316) != b.root_state(316)
