"""Unit and property tests for the chunked steal-stack."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StackError
from repro.uts.stack import Chunk, ChunkedStack


def _nodes(n: int, start: int = 0) -> tuple[np.ndarray, np.ndarray]:
    states = np.arange(start, start + n, dtype=np.uint64)
    depths = np.zeros(n, dtype=np.int32)
    return states, depths


class TestChunk:
    def test_push_pop_roundtrip(self):
        c = Chunk(10)
        s, d = _nodes(7)
        assert c.push(s, d) == 7
        out_s, out_d = c.pop(7)
        # LIFO within the chunk: pop returns the top (end) slice.
        assert out_s.tolist() == list(range(7))
        assert c.is_empty

    def test_push_overflow_truncates(self):
        c = Chunk(5)
        s, d = _nodes(8)
        assert c.push(s, d) == 5
        assert c.is_full
        assert c.free == 0

    def test_pop_more_than_size(self):
        c = Chunk(5)
        c.push(*_nodes(3))
        s, _ = c.pop(10)
        assert len(s) == 3

    def test_from_arrays(self):
        s, d = _nodes(4)
        c = Chunk.from_arrays(s, d, 10)
        assert c.size == 4
        assert c.capacity == 10

    def test_from_arrays_overflow(self):
        s, d = _nodes(11)
        with pytest.raises(StackError):
            Chunk.from_arrays(s, d, 10)

    def test_bad_capacity(self):
        with pytest.raises(StackError):
            Chunk(0)

    def test_pop_copies(self):
        # Popped arrays must not alias chunk storage (the chunk will be
        # reused for subsequent pushes).
        c = Chunk(10)
        c.push(*_nodes(5))
        s, _ = c.pop(5)
        c.push(*_nodes(5, start=100))
        assert s.tolist() == [0, 1, 2, 3, 4]

    def test_view_no_copy(self):
        c = Chunk(10)
        c.push(*_nodes(5))
        v, _ = c.view()
        assert len(v) == 5


class TestChunkedStackBasics:
    def test_empty(self):
        st_ = ChunkedStack(20)
        assert st_.is_empty
        assert st_.size == 0
        assert st_.stealable_chunks == 0

    def test_bad_chunk_size(self):
        with pytest.raises(StackError):
            ChunkedStack(0)

    def test_push_pop_lifo_batches(self):
        st_ = ChunkedStack(4)
        st_.push_batch(*_nodes(10))
        s, _ = st_.pop_batch(3)
        # Top of stack = most recently pushed.
        assert sorted(s.tolist()) == [7, 8, 9]
        assert st_.size == 7

    def test_pop_empty(self):
        st_ = ChunkedStack(4)
        s, d = st_.pop_batch(5)
        assert len(s) == 0 and len(d) == 0

    def test_pop_negative(self):
        with pytest.raises(StackError):
            ChunkedStack(4).pop_batch(-1)

    def test_push_empty_noop(self):
        st_ = ChunkedStack(4)
        st_.push_batch(np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int32))
        assert st_.is_empty

    def test_chunk_count(self):
        st_ = ChunkedStack(5)
        st_.push_batch(*_nodes(12))
        assert st_.num_chunks == 3  # 5 + 5 + 2
        assert st_.stealable_chunks == 2

    def test_invariant_holds_after_ops(self):
        st_ = ChunkedStack(5)
        st_.push_batch(*_nodes(23))
        st_.pop_batch(4)
        st_.check_invariant()
        st_.push_batch(*_nodes(9))
        st_.check_invariant()

    def test_accounting(self):
        st_ = ChunkedStack(5)
        st_.push_batch(*_nodes(12))
        st_.pop_batch(7)
        assert st_.total_pushed == 12
        assert st_.total_popped == 7
        assert st_.size == 5


class TestStealing:
    def test_private_chunk_never_stealable(self):
        st_ = ChunkedStack(5)
        st_.push_batch(*_nodes(5))  # exactly one full chunk
        assert st_.stealable_chunks == 0
        with pytest.raises(StackError):
            st_.steal_chunks(1)

    def test_steal_removes_bottom(self):
        st_ = ChunkedStack(5)
        st_.push_batch(*_nodes(15))  # chunks: [0-4][5-9][10-14]
        stolen = st_.steal_chunks(1)
        assert len(stolen) == 1
        assert stolen[0].view()[0].tolist() == [0, 1, 2, 3, 4]
        # Owner still pops its newest work.
        s, _ = st_.pop_batch(1)
        assert s.tolist() == [14]

    def test_steal_too_many(self):
        st_ = ChunkedStack(5)
        st_.push_batch(*_nodes(15))
        with pytest.raises(StackError):
            st_.steal_chunks(3)

    def test_steal_zero_ok(self):
        st_ = ChunkedStack(5)
        st_.push_batch(*_nodes(15))
        assert st_.steal_chunks(0) == []

    def test_steal_negative(self):
        with pytest.raises(StackError):
            ChunkedStack(5).steal_chunks(-1)

    def test_receive_chunks(self):
        victim = ChunkedStack(5)
        victim.push_batch(*_nodes(15))
        thief = ChunkedStack(5)
        stolen = victim.steal_chunks(2)
        n = thief.receive_chunks(stolen)
        assert n == 10
        assert thief.size == 10
        thief.check_invariant()

    def test_receive_empty_chunk_rejected(self):
        thief = ChunkedStack(5)
        with pytest.raises(StackError):
            thief.receive_chunks([Chunk(5)])

    def test_receive_goes_below_existing(self):
        victim = ChunkedStack(5)
        victim.push_batch(*_nodes(15))
        thief = ChunkedStack(5)
        thief.push_batch(*_nodes(3, start=100))
        stolen = victim.steal_chunks(1)
        thief.receive_chunks(stolen)
        # Thief's own (newest) work still pops first.
        s, _ = thief.pop_batch(1)
        assert s.tolist() == [102]
        thief.check_invariant()

    def test_conservation_across_steal(self):
        victim = ChunkedStack(4)
        victim.push_batch(*_nodes(20))
        thief = ChunkedStack(4)
        stolen = victim.steal_chunks(2)
        thief.receive_chunks(stolen)
        assert victim.size + thief.size == 20
        assert victim.total_stolen_away == 8


@st.composite
def op_sequences(draw):
    """Random push/pop/steal scripts for the conservation property."""
    n_ops = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["push", "pop", "steal"]))
        amount = draw(st.integers(min_value=1, max_value=30))
        ops.append((kind, amount))
    return ops


class TestProperties:
    @given(op_sequences(), st.integers(min_value=1, max_value=9))
    @settings(max_examples=100, deadline=None)
    def test_conservation_and_invariant(self, ops, chunk_size):
        """Nodes are never lost or duplicated; invariant always holds."""
        stack = ChunkedStack(chunk_size)
        other = ChunkedStack(chunk_size)
        counter = 0
        in_stack = 0
        in_other = 0
        for kind, amount in ops:
            if kind == "push":
                stack.push_batch(*_nodes(amount, start=counter))
                counter += amount
                in_stack += amount
            elif kind == "pop":
                s, _ = stack.pop_batch(amount)
                in_stack -= len(s)
            else:  # steal
                take = min(amount, stack.stealable_chunks)
                if take:
                    moved = stack.steal_chunks(take)
                    got = other.receive_chunks(moved)
                    in_stack -= got
                    in_other += got
            stack.check_invariant()
            other.check_invariant()
            assert stack.size == in_stack
            assert other.size == in_other

    @given(
        st.lists(st.integers(min_value=1, max_value=60), min_size=1, max_size=8),
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_expand_quanta_matches_repeated_expand_quantum(
        self, sizes, chunk_size, n, budget
    ):
        """The burst path is the per-quantum path, verbatim.

        ``expand_quanta`` inlines ``expand_quantum``'s body (the
        sharded engine's pure-compute fast path leans on the two
        staying in lockstep); this drives both over the same stack
        content, children function and stop time and demands the same
        node stream, timestamps, counters and final chunk layout.
        """

        def children_fn(states, depths):
            cs, cd = [], []
            for s, d in zip(states, depths):
                for k in range(s % 3):
                    cs.append((s * 1103515245 + k) % (2**63))
                    cd.append(d + 1)
            return cs, cd

        def build():
            stack = ChunkedStack(chunk_size)
            base = 0
            for count in sizes:
                stack.push_batch_list(
                    list(range(base, base + count)), [0] * count
                )
                base += count
            return stack

        per_node_time = 0.125
        t_stop = budget * per_node_time

        burst = build()
        t_b, quanta_b, nodes_b = burst.expand_quanta(
            n, children_fn, 0.0, t_stop, per_node_time
        )

        step = build()
        t_s = 0.0
        quanta_s = nodes_s = 0
        while True:
            # First quantum unconditional (an already-popped EXEC),
            # further ones only while work remains below t_stop.
            npop = step.expand_quantum(n, children_fn)
            quanta_s += 1
            nodes_s += npop
            t_s += npop * per_node_time
            if step.is_empty or t_s >= t_stop:
                break

        assert (t_b, quanta_b, nodes_b) == (t_s, quanta_s, nodes_s)
        assert burst.total_popped == step.total_popped
        assert burst.total_pushed == step.total_pushed
        assert burst.size == step.size
        assert [
            (c.size, c.capacity, c.states, c.depths) for c in burst._chunks
        ] == [
            (c.size, c.capacity, c.states, c.depths) for c in step._chunks
        ]
        burst.check_invariant()

    @given(
        st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=20),
        st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=100, deadline=None)
    def test_push_then_drain_preserves_multiset(self, sizes, chunk_size):
        stack = ChunkedStack(chunk_size)
        pushed: list[int] = []
        base = 0
        for n in sizes:
            stack.push_batch(*_nodes(n, start=base))
            pushed.extend(range(base, base + n))
            base += n
        states, _ = stack.drain()
        assert sorted(states.tolist()) == pushed
        assert stack.is_empty
