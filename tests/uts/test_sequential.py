"""Tests for the sequential ground-truth traversal."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.uts.params import GEO_S, T3XS, TreeParams
from repro.uts.rng import Sha1Backend, SplitMix64Backend
from repro.uts.sequential import sequential_count
from repro.uts.tree import TreeGenerator


def _scalar_count(params: TreeParams, backend=None) -> tuple[int, int, int]:
    """Plain recursive-style scalar traversal (independent reference)."""
    gen = TreeGenerator(params, backend)
    stack = [gen.root()]
    total = leaves = max_depth = 0
    while stack:
        state, depth = stack.pop()
        total += 1
        max_depth = max(max_depth, depth)
        children, child_depth = gen.children(state, depth)
        if not children:
            leaves += 1
        for c in children:
            stack.append((c, child_depth))
    return total, max_depth, leaves


class TestAgainstScalarReference:
    @pytest.mark.parametrize(
        "backend", [Sha1Backend(), SplitMix64Backend()], ids=lambda b: b.name
    )
    def test_binomial_micro(self, backend, micro_tree):
        res = sequential_count(micro_tree, backend=backend)
        total, max_depth, leaves = _scalar_count(micro_tree, backend)
        assert res.total_nodes == total
        assert res.max_depth == max_depth
        assert res.leaves == leaves

    def test_geometric(self):
        small_geo = TreeParams(
            name="g", tree_type="geometric", root_seed=29, b0=3, gen_mx=6
        )
        res = sequential_count(small_geo)
        total, max_depth, leaves = _scalar_count(small_geo)
        assert (res.total_nodes, res.max_depth, res.leaves) == (
            total,
            max_depth,
            leaves,
        )

    def test_hybrid(self):
        hyb = TreeParams(
            name="h",
            tree_type="hybrid",
            root_seed=11,
            b0=3,
            m=2,
            q=0.4,
            gen_mx=6,
            shift=0.5,
        )
        res = sequential_count(hyb)
        total, max_depth, leaves = _scalar_count(hyb)
        assert (res.total_nodes, res.max_depth, res.leaves) == (
            total,
            max_depth,
            leaves,
        )


class TestBatchIndependence:
    @pytest.mark.parametrize("batch", [1, 2, 7, 64, 4096])
    def test_batch_size_does_not_change_result(self, batch, tiny_tree):
        baseline = sequential_count(tiny_tree, batch=1024)
        assert sequential_count(tiny_tree, batch=batch) == baseline

    def test_bad_batch(self, tiny_tree):
        with pytest.raises(ReproError):
            sequential_count(tiny_tree, batch=0)


class TestResultInvariants:
    def test_deterministic(self, tiny_tree):
        assert sequential_count(tiny_tree) == sequential_count(tiny_tree)

    def test_leaf_interior_partition(self, tiny_tree):
        res = sequential_count(tiny_tree)
        assert res.leaves + res.interior == res.total_nodes
        assert res.leaves > 0
        assert res.interior > 0

    def test_binomial_leaf_fraction(self, tiny_tree):
        # For binomial trees with m=2, roughly 1-q of non-root nodes are
        # leaves: leaf fraction should be close to 1 - q.
        res = sequential_count(tiny_tree)
        frac = res.leaves / res.total_nodes
        assert abs(frac - (1 - tiny_tree.q)) < 0.05

    def test_geo_depth_bounded(self):
        res = sequential_count(GEO_S)
        assert res.max_depth <= GEO_S.gen_mx

    def test_node_cap_enforced(self, tiny_tree):
        with pytest.raises(ReproError):
            sequential_count(tiny_tree, node_cap=10)

    def test_t3xs_realised_size_near_expected(self):
        # Realised size should be within a factor ~4 of the analytic
        # expectation (heavy-tailed but finite variance).
        res = sequential_count(T3XS)
        expected = T3XS.analytic_expected_size
        assert expected / 4 < res.total_nodes < expected * 4
