"""Cross-module property tests: conservation and determinism under
randomly drawn configurations.

These are the suite's strongest correctness checks: whatever
combination of tree, strategies and cluster shape hypothesis draws,
the distributed run must (a) terminate, (b) count exactly the
sequential tree, (c) be reproducible.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import WorkStealingConfig
from repro.sim.cluster import Cluster
from repro.uts.params import TreeParams
from repro.uts.sequential import sequential_count

# Small trees (hundreds to a few thousand nodes) keep each drawn case
# fast while still exercising steals, denials and termination races.
trees = st.builds(
    lambda seed, b0, q: TreeParams(
        name="h", tree_type="binomial", root_seed=seed, b0=b0, m=2, q=q
    ),
    seed=st.integers(min_value=0, max_value=10_000),
    b0=st.integers(min_value=5, max_value=80),
    q=st.floats(min_value=0.1, max_value=0.45),
)

configs = st.fixed_dictionaries(
    {
        "nranks": st.integers(min_value=1, max_value=12),
        "selector": st.sampled_from(
            ["reference", "rand", "tofu", "lastvictim", "hierarchical"]
        ),
        "steal_policy": st.sampled_from(["one", "half", "frac[0.4]"]),
        "allocation": st.sampled_from(["1/N", "4RR", "4G"]),
        "chunk_size": st.integers(min_value=1, max_value=30),
        "poll_interval": st.integers(min_value=1, max_value=20),
        "seed": st.integers(min_value=0, max_value=100),
        "lifelines": st.sampled_from([0, 0, 0, 2]),
    }
)

_seq_cache: dict[tuple, int] = {}


def _sequential_nodes(tree: TreeParams) -> int:
    key = (tree.root_seed, tree.b0, tree.q)
    if key not in _seq_cache:
        _seq_cache[key] = sequential_count(tree).total_nodes
    return _seq_cache[key]


@given(trees, configs)
@settings(max_examples=60, deadline=None)
def test_conservation_under_random_configs(tree, kw):
    expected = _sequential_nodes(tree)
    cfg = WorkStealingConfig(tree=tree, **kw)
    out = Cluster(cfg).run()
    assert out.total_nodes == expected
    assert all(w.stack.is_empty for w in out.workers)


@given(trees, configs)
@settings(max_examples=15, deadline=None)
def test_determinism_under_random_configs(tree, kw):
    a = Cluster(WorkStealingConfig(tree=tree, **kw)).run()
    b = Cluster(WorkStealingConfig(tree=tree, **kw)).run()
    assert a.total_time == b.total_time
    assert a.events_processed == b.events_processed


@given(trees)
@settings(max_examples=20, deadline=None)
def test_traced_occupancy_consistent(tree):
    """Traced runs: busy time summed over ranks equals compute time
    plus steal service — no phantom activity."""
    cfg = WorkStealingConfig(tree=tree, nranks=6, selector="rand", trace=True)
    out = Cluster(cfg).run()
    from repro.core.tracing import ActivityTrace

    trace = ActivityTrace.from_recorders(out.recorders)
    total_busy = sum(
        trace.busy_time(r, out.total_time) for r in range(cfg.nranks)
    )
    compute = out.total_nodes * cfg.per_node_time
    service = sum(w.service_time for w in out.workers)
    assert total_busy == pytest.approx(compute + service, rel=1e-6, abs=1e-9)
