"""Tests for the parallel batch runner."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import WorkStealingConfig
from repro.errors import ConfigurationError
from repro.exec.pool import RunProgress, run_many
from repro.uts.params import T3XS


def _configs(n: int = 4, **kw) -> list[WorkStealingConfig]:
    return [
        WorkStealingConfig(tree=T3XS, nranks=8, seed=seed, **kw)
        for seed in range(n)
    ]


def _same_result(a, b) -> bool:
    for f in dataclasses.fields(a):
        if f.name in ("per_rank_nodes", "per_rank_search_time"):
            if not (getattr(a, f.name) == getattr(b, f.name)).all():
                return False
        elif f.name in ("trace", "_profile"):
            continue  # compared separately where relevant
        elif getattr(a, f.name) != getattr(b, f.name):
            return False
    return True


class TestRunMany:
    def test_serial_matches_parallel_bit_for_bit(self):
        configs = _configs(4)
        serial = run_many(configs, jobs=1)
        parallel = run_many(configs, jobs=2)
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert _same_result(a, b)
            assert a.to_json() == b.to_json()

    def test_accepts_config_dicts(self):
        configs = _configs(2)
        from_objs = run_many(configs)
        from_dicts = run_many([c.to_dict() for c in configs])
        for a, b in zip(from_objs, from_dicts):
            assert a.to_json() == b.to_json()

    def test_duplicates_share_one_result(self):
        cfg = _configs(1)[0]
        results = run_many([cfg, cfg.replace(), cfg])
        assert results[0] is results[1] is results[2]

    def test_results_in_input_order(self):
        configs = _configs(5)
        results = run_many(configs, jobs=3)
        for cfg, result in zip(configs, results):
            assert result.nranks == cfg.nranks
            assert result.label == cfg.label()

    def test_progress_callback(self):
        configs = _configs(3)
        ticks: list[RunProgress] = []
        run_many(configs, jobs=2, progress=ticks.append)
        assert len(ticks) == 3
        assert sorted(t.index for t in ticks) == [0, 1, 2]
        assert {t.done for t in ticks} == {1, 2, 3}
        assert all(t.total == 3 and not t.cached for t in ticks)
        assert all(t.elapsed > 0 for t in ticks)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            run_many(["not-a-config"])
        with pytest.raises(ConfigurationError):
            run_many(_configs(1), jobs=0)
        with pytest.raises(ConfigurationError):
            run_many(_configs(1), cache=3.14)

    def test_empty_batch(self):
        assert run_many([]) == []
