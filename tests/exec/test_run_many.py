"""Tests for the parallel batch runner."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import WorkStealingConfig
from repro.core.jobs import JobFailure, JobState
from repro.errors import ConfigurationError, JobTimeoutError
from repro.exec.pool import RunProgress, WorkerPool, run_many
from repro.uts.params import T3XS


def _configs(n: int = 4, **kw) -> list[WorkStealingConfig]:
    return [
        WorkStealingConfig(tree=T3XS, nranks=8, seed=seed, **kw)
        for seed in range(n)
    ]


def _same_result(a, b) -> bool:
    for f in dataclasses.fields(a):
        if f.name in ("per_rank_nodes", "per_rank_search_time"):
            if not (getattr(a, f.name) == getattr(b, f.name)).all():
                return False
        elif f.name in ("trace", "_profile"):
            continue  # compared separately where relevant
        elif getattr(a, f.name) != getattr(b, f.name):
            return False
    return True


class TestRunMany:
    def test_serial_matches_parallel_bit_for_bit(self):
        configs = _configs(4)
        serial = run_many(configs, jobs=1)
        parallel = run_many(configs, jobs=2)
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert _same_result(a, b)
            assert a.to_json() == b.to_json()

    def test_accepts_config_dicts(self):
        configs = _configs(2)
        from_objs = run_many(configs)
        from_dicts = run_many([c.to_dict() for c in configs])
        for a, b in zip(from_objs, from_dicts):
            assert a.to_json() == b.to_json()

    def test_duplicates_share_one_result(self):
        cfg = _configs(1)[0]
        results = run_many([cfg, cfg.replace(), cfg])
        assert results[0] is results[1] is results[2]

    def test_results_in_input_order(self):
        configs = _configs(5)
        results = run_many(configs, jobs=3)
        for cfg, result in zip(configs, results):
            assert result.nranks == cfg.nranks
            assert result.label == cfg.label()

    def test_progress_callback(self):
        configs = _configs(3)
        ticks: list[RunProgress] = []
        run_many(configs, jobs=2, progress=ticks.append)
        assert len(ticks) == 3
        assert sorted(t.index for t in ticks) == [0, 1, 2]
        assert {t.done for t in ticks} == {1, 2, 3}
        assert all(t.total == 3 and not t.cached for t in ticks)
        assert all(t.elapsed > 0 for t in ticks)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            run_many(["not-a-config"])
        with pytest.raises(ConfigurationError):
            run_many(_configs(1), jobs=0)
        with pytest.raises(ConfigurationError):
            run_many(_configs(1), store=3.14)

    def test_empty_batch(self):
        assert run_many([]) == []


# ----------------------------------------------------------------------
# Failure isolation, per-job timeouts and pool reuse
# ----------------------------------------------------------------------

# Worker stand-ins must be module-level so they pickle to pool workers.


def _boom_worker(payload):
    index, config_dict, max_events = payload
    if config_dict["seed"] == 1:
        raise ValueError("injected failure")
    from repro.exec.pool import _execute

    return _execute(payload)


def _sleepy_worker(payload):
    import time as _time

    index, config_dict, max_events = payload
    if config_dict["seed"] == 1:
        _time.sleep(1.5)
    from repro.exec.pool import _execute

    return _execute(payload)


class TestFailureIsolation:
    def test_worker_exception_raises_by_default(self):
        with pytest.raises(ValueError, match="injected failure"):
            run_many(_configs(3), jobs=2, _worker=_boom_worker)

    def test_return_exceptions_isolates_failures(self):
        configs = _configs(3)
        ticks: list[RunProgress] = []
        results = run_many(
            configs,
            jobs=2,
            _worker=_boom_worker,
            return_exceptions=True,
            progress=ticks.append,
        )
        assert isinstance(results[1], JobFailure)
        assert isinstance(results[1].error, ValueError)
        assert results[1].state is JobState.FAILED
        assert results[1].label == configs[1].label()
        for i in (0, 2):
            assert results[i].label == configs[i].label()
        failed = [t for t in ticks if t.state == "failed"]
        assert len(failed) == 1 and failed[0].error == "injected failure"

    def test_serial_path_isolates_failures_too(self):
        results = run_many(
            _configs(2), jobs=1, _worker=_boom_worker, return_exceptions=True
        )
        assert isinstance(results[1], JobFailure)
        assert results[0].label == _configs(2)[0].label()


class TestTimeout:
    def test_hung_job_does_not_wedge_the_sweep(self):
        configs = _configs(3)
        results = run_many(
            configs,
            jobs=3,
            _worker=_sleepy_worker,
            timeout=0.4,
            return_exceptions=True,
        )
        assert isinstance(results[1], JobFailure)
        assert isinstance(results[1].error, JobTimeoutError)
        for i in (0, 2):
            assert results[i].label == configs[i].label()

    def test_timeout_raises_without_return_exceptions(self):
        with pytest.raises(JobTimeoutError):
            run_many(
                _configs(2),
                jobs=2,
                _worker=_sleepy_worker,
                timeout=0.4,
            )

    def test_timeout_forces_pool_for_serial_jobs(self):
        # jobs=1 with a timeout still abandons the hung worker.
        results = run_many(
            _configs(2),
            jobs=1,
            _worker=_sleepy_worker,
            timeout=0.4,
            return_exceptions=True,
        )
        assert isinstance(results[1], JobFailure)

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ConfigurationError):
            run_many(_configs(1), timeout=0.0)


class TestWorkerPool:
    def test_shared_pool_is_reused_across_calls(self):
        with WorkerPool(2) as pool:
            first = run_many(_configs(2), pool=pool)
            executor = pool._executor
            assert executor is not None
            second = run_many(_configs(2), pool=pool)
            assert pool._executor is executor  # same processes, reused
        for a, b in zip(first, second):
            assert a.to_json() == b.to_json()

    def test_direct_submit_speaks_worker_protocol(self):
        cfg = _configs(1)[0]
        with WorkerPool(1) as pool:
            index, payload, elapsed, artifact = pool.submit(
                cfg.to_dict(), index=7
            ).result()
        assert index == 7
        assert artifact is None
        from repro.ws.results import RunResult

        assert RunResult.from_json(payload).label == cfg.label()

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(0)
