"""Round-trip and fingerprint tests for the serialization layer."""

from __future__ import annotations

import json

import pytest

from repro.core.config import WorkStealingConfig
from repro.errors import ConfigurationError, ReproError
from repro.exec.fingerprint import canonical_json, config_fingerprint, fingerprint_dict
from repro.uts.params import T3XS
from repro.ws.runner import run_uts


def _cfg(**kw) -> WorkStealingConfig:
    return WorkStealingConfig(tree=T3XS, nranks=8, **kw)


class TestConfigRoundTrip:
    def test_dict_round_trip_default(self):
        cfg = _cfg()
        again = WorkStealingConfig.from_dict(cfg.to_dict())
        assert again.to_dict() == cfg.to_dict()
        assert again.fingerprint() == cfg.fingerprint()

    def test_dict_round_trip_parameterised_strategies(self):
        cfg = _cfg(
            selector="skew[1.5]",
            steal_policy="frac[0.25]",
            allocation="8G@x2",
            rng_backend="sha1",
            latency_model="uniform",
            chunk_size=7,
            trace=True,
        )
        again = WorkStealingConfig.from_dict(cfg.to_dict())
        assert again.selector.name == "skew[1.5]"
        assert again.steal_policy.name == "frac[0.25]"
        assert again.allocation.name == "8G@x2"
        assert again.fingerprint() == cfg.fingerprint()

    def test_to_dict_is_json_safe(self):
        payload = json.loads(json.dumps(_cfg().to_dict()))
        assert WorkStealingConfig.from_dict(payload).fingerprint() == _cfg().fingerprint()

    def test_fingerprint_distinguishes_configs(self):
        assert _cfg().fingerprint() != _cfg(chunk_size=21).fingerprint()
        assert _cfg().fingerprint() != _cfg(seed=_cfg().seed + 1).fingerprint()

    def test_fingerprint_of_dict_and_object_agree(self):
        cfg = _cfg(selector="tofu")
        assert config_fingerprint(cfg) == config_fingerprint(cfg.to_dict())
        assert config_fingerprint(cfg) == fingerprint_dict(cfg.to_dict())

    def test_from_dict_rejects_unknown_keys(self):
        data = _cfg().to_dict()
        data["warp_factor"] = 9
        with pytest.raises(ConfigurationError):
            WorkStealingConfig.from_dict(data)

    def test_bad_input_type(self):
        with pytest.raises(ConfigurationError):
            config_fingerprint(42)  # type: ignore[arg-type]

    def test_canonical_json_is_stable(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


class TestRunResultRoundTrip:
    @pytest.fixture(scope="class")
    def result(self):
        return run_uts(_cfg(trace=True))

    def test_json_round_trip_preserves_metrics(self, result):
        again = type(result).from_json(result.to_json())
        assert again.total_nodes == result.total_nodes
        assert again.total_time == result.total_time
        assert again.steal_requests == result.steal_requests
        assert again.failed_steals == result.failed_steals
        assert (again.per_rank_nodes == result.per_rank_nodes).all()
        assert (again.per_rank_search_time == result.per_rank_search_time).all()
        assert again.label == result.label

    def test_trace_survives_round_trip(self, result):
        again = type(result).from_json(result.to_json())
        assert again.trace is not None
        assert again.trace.nranks == result.trace.nranks
        times, states = again.trace.transitions[0]
        ref_times, ref_states = result.trace.transitions[0]
        assert (times == ref_times).all()
        assert (states == ref_states).all()

    def test_sessions_survive_round_trip(self, result):
        again = type(result).from_json(result.to_json())
        assert again.sessions == result.sessions

    def test_untraced_round_trip(self):
        result = run_uts(_cfg())
        again = type(result).from_json(result.to_json())
        assert again.trace is None
        assert again.total_time == result.total_time

    def test_bad_json_raises_repro_error(self, result):
        with pytest.raises(ReproError):
            type(result).from_json("{not json")
        with pytest.raises(ReproError):
            type(result).from_dict({"no": "fields"})
