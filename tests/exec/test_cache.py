"""Tests for the on-disk result cache."""

from __future__ import annotations

import json

import pytest

from repro.core.config import WorkStealingConfig
from repro.exec.cache import ResultCache
from repro.exec.pool import run_many
from repro.uts.params import T3XS


@pytest.fixture()
def cfg() -> WorkStealingConfig:
    return WorkStealingConfig(tree=T3XS, nranks=8)


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path, cfg):
        cache = ResultCache(tmp_path)
        result = run_many([cfg])[0]
        fp = cfg.fingerprint()
        assert cache.get(fp) is None
        cache.put(fp, result, config=cfg.to_dict(), elapsed=1.25)
        hit = cache.get(fp)
        assert hit is not None
        assert hit.to_json() == result.to_json()
        assert fp in cache and len(cache) == 1

    def test_entry_layout(self, tmp_path, cfg):
        cache = ResultCache(tmp_path, version="9.9.9")
        result = run_many([cfg])[0]
        fp = cfg.fingerprint()
        cache.put(fp, result, config=cfg.to_dict(), elapsed=0.5)
        path = cache.path_for(fp)
        assert path.parent.name == "9.9.9"
        entry = json.loads(path.read_text())
        assert entry["version"] == "9.9.9"
        assert entry["fingerprint"] == fp
        assert entry["config"]["nranks"] == 8

    def test_version_bump_invalidates(self, tmp_path, cfg):
        old = ResultCache(tmp_path, version="1.0.0")
        result = run_many([cfg])[0]
        fp = cfg.fingerprint()
        old.put(fp, result)
        assert ResultCache(tmp_path, version="2.0.0").get(fp) is None
        assert old.get(fp) is not None

    def test_corrupt_entry_is_a_miss(self, tmp_path, cfg):
        cache = ResultCache(tmp_path)
        fp = cfg.fingerprint()
        cache.put(fp, run_many([cfg])[0])
        cache.path_for(fp).write_text("{corrupt")
        assert cache.get(fp) is None

    def test_clear(self, tmp_path, cfg):
        cache = ResultCache(tmp_path)
        cache.put(cfg.fingerprint(), run_many([cfg])[0])
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0


class TestRunManyCacheIntegration:
    def test_second_run_hits_cache_without_simulating(self, tmp_path, cfg, monkeypatch):
        cache = ResultCache(tmp_path)
        first = run_many([cfg], store=cache)[0]
        assert len(cache) == 1

        def _boom(payload):
            raise AssertionError("simulator invoked on a warm cache")

        monkeypatch.setattr("repro.exec.pool._execute", _boom)
        second = run_many([cfg], store=cache)[0]
        assert second.to_json() == first.to_json()

    def test_cache_hit_reports_cached_progress(self, tmp_path, cfg):
        cache = ResultCache(tmp_path)
        run_many([cfg], store=cache)
        ticks = []
        run_many([cfg], store=cache, progress=ticks.append)
        assert len(ticks) == 1
        assert ticks[0].cached and ticks[0].elapsed == 0.0

    def test_cache_warms_across_sweep(self, tmp_path):
        configs = [
            WorkStealingConfig(tree=T3XS, nranks=8, seed=s, chunk_size=c)
            for s in range(4)
            for c in (10, 20)
        ]
        assert len(configs) == 8
        cache = ResultCache(tmp_path)
        cold = run_many(configs, jobs=2, store=cache)
        assert len(cache) == 8
        ticks = []
        warm = run_many(configs, jobs=2, store=cache, progress=ticks.append)
        assert all(t.cached for t in ticks)
        for a, b in zip(cold, warm):
            assert a.to_json() == b.to_json()

    def test_cache_env_override(self, tmp_path, cfg, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        cache = ResultCache()
        assert str(cache.dir).startswith(str(tmp_path / "envcache"))
        run_many([cfg], store=True)
        assert len(ResultCache()) == 1
